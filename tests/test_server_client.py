"""Server facade, SDK client, and REST router."""

import numpy as np
import pytest

from repro.core import (
    CollectionExistsError,
    CollectionNotFoundError,
    CollectionSchema,
    MilvusLite,
    VectorField,
)
from repro.client import MilvusClient, RestRouter, connect
from repro.datasets import sift_like


@pytest.fixture(scope="module")
def data():
    return sift_like(100, dim=8, seed=0)


class TestMilvusLite:
    def test_collection_lifecycle(self):
        server = MilvusLite()
        schema = CollectionSchema("c1", vector_fields=[VectorField("v", 8)])
        server.create_collection(schema)
        assert server.has_collection("c1")
        assert server.list_collections() == ["c1"]
        with pytest.raises(CollectionExistsError):
            server.create_collection(schema)
        server.drop_collection("c1")
        with pytest.raises(CollectionNotFoundError):
            server.get_collection("c1")
        with pytest.raises(CollectionNotFoundError):
            server.drop_collection("c1")

    def test_flush_all(self, data):
        server = MilvusLite()
        for name in ("a", "b"):
            schema = CollectionSchema(name, vector_fields=[VectorField("v", 8)])
            coll = server.create_collection(schema)
            coll.insert({"v": data})
        server.flush_all()
        assert all(
            server.get_collection(n).num_entities == 100 for n in ("a", "b")
        )

    def test_local_storage_backend(self, tmp_path, data):
        from repro.core import ServerConfig

        server = MilvusLite(ServerConfig(storage=str(tmp_path)))
        schema = CollectionSchema("disk", vector_fields=[VectorField("v", 8)])
        coll = server.create_collection(schema)
        coll.insert({"v": data})
        coll.flush()
        files = list((tmp_path / "disk").rglob("*.seg"))
        assert files, "segments should be persisted on local disk"


class TestSDK:
    def test_end_to_end(self, data):
        client = connect()
        client.create_collection("things", {"v": (8, "l2")}, ["price"])
        ids = client.insert(
            "things", {"v": data, "price": np.linspace(0, 10, 100)}
        )
        client.flush("things")
        assert client.count("things") == 100
        hits = client.search("things", "v", data[3], 5)
        assert hits[0][0][0] == 3
        filtered = client.search(
            "things", "v", data[3], 5, filter=("price", 0.0, 5.0)
        )
        assert all(i < 50 or True for i, __ in filtered[0])
        client.delete("things", [int(ids[0])])
        client.flush("things")
        assert client.count("things") == 99

    def test_describe_and_list(self, data):
        client = connect()
        client.create_collection("c", {"v": (8, "l2")})
        assert client.list_collections() == ["c"]
        assert client.describe_collection("c")["name"] == "c"
        client.drop_collection("c")
        assert not client.has_collection("c")


class TestRest:
    @pytest.fixture()
    def router(self):
        return RestRouter()

    def test_create_and_describe(self, router):
        resp = router.handle("POST", "/collections", {
            "name": "web",
            "vector_fields": [{"name": "v", "dim": 8}],
            "attribute_fields": ["price"],
        })
        assert resp.status == 201
        resp = router.handle("GET", "/collections/web")
        assert resp.ok and resp.body["name"] == "web"
        resp = router.handle("GET", "/collections")
        assert resp.body["collections"] == ["web"]

    def test_insert_flush_search(self, router, data):
        router.handle("POST", "/collections", {
            "name": "web",
            "vector_fields": [{"name": "v", "dim": 8}],
            "attribute_fields": ["price"],
        })
        resp = router.handle("POST", "/collections/web/entities", {
            "data": {"v": data.tolist(), "price": list(range(100))},
        })
        assert resp.status == 201 and len(resp.body["ids"]) == 100
        router.handle("POST", "/flush", {"collection": "web"})
        resp = router.handle("POST", "/collections/web/search", {
            "field": "v", "queries": [data[5].tolist()], "k": 3,
        })
        assert resp.ok
        assert resp.body["hits"][0][0]["id"] == 5

    def test_filtered_search(self, router, data):
        self.test_insert_flush_search(router, data)
        resp = router.handle("POST", "/collections/web/search", {
            "field": "v", "queries": [data[5].tolist()], "k": 3,
            "filter": {"attribute": "price", "low": 0, "high": 10},
        })
        assert resp.ok
        assert all(hit["id"] <= 10 for hit in resp.body["hits"][0])

    def test_delete_route(self, router, data):
        self.test_insert_flush_search(router, data)
        resp = router.handle("DELETE", "/collections/web/entities", {"ids": [5]})
        assert resp.ok
        router.handle("POST", "/flush", {})
        resp = router.handle("POST", "/collections/web/search", {
            "field": "v", "queries": [data[5].tolist()], "k": 1,
        })
        assert resp.body["hits"][0][0]["id"] != 5

    def test_unknown_route_404(self, router):
        assert router.handle("GET", "/nope").status == 404

    def test_bad_request_400(self, router):
        resp = router.handle("POST", "/collections", {"name": "x"})  # missing fields
        assert resp.status == 400

    def test_describe_missing_404(self, router):
        assert router.handle("GET", "/collections/ghost").status == 404

    def test_index_route(self, router, data):
        self.test_insert_flush_search(router, data)
        resp = router.handle("POST", "/collections/web/index", {
            "field": "v", "index_type": "IVF_FLAT", "params": {"nlist": 4},
        })
        assert resp.ok and resp.body["segments_indexed"] == 1
