"""Tests for paths not covered elsewhere: engine dynamics, aggregation
validation, filter pushdown properties, batch multi-vector queries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import VearchLikeEngine
from repro.core import CollectionSchema, Collection, VectorField
from repro.index import IVFFlatIndex
from repro.metrics import get_metric
from repro.multivector import MultiVectorSearcher, WeightedSum
from repro.datasets import recipe_like, sift_like
from repro.storage import LSMConfig, TieredMergePolicy


class TestVearchDynamicData:
    def test_append_after_fit(self):
        data = sift_like(300, dim=8, seed=0)
        engine = VearchLikeEngine(nlist=8)
        engine.fit(data[:200])
        engine.add(data[200:])
        result = engine.search(data[250], 1, nprobe=8)
        assert result.ids[0, 0] == 250


class TestWeightedSumValidation:
    def test_needs_fields(self):
        with pytest.raises(ValueError):
            WeightedSum(())

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedSum(("a",), {"a": -1.0})

    def test_default_weight_one(self):
        agg = WeightedSum(("a", "b"), {"a": 2.0})
        assert agg.weights == {"a": 2.0, "b": 1.0}

    def test_combine(self):
        agg = WeightedSum(("a", "b"), {"a": 2.0, "b": 0.5})
        out = agg.combine({"a": np.array([1.0, 2.0]), "b": np.array([4.0, 0.0])})
        np.testing.assert_allclose(out, [4.0, 4.0])

    def test_exact_scores(self):
        agg = WeightedSum(("a",))
        metric = get_metric("l2")
        scores = agg.exact_scores(
            {"a": np.zeros(3, dtype=np.float32)},
            {"a": np.ones((2, 3), dtype=np.float32)},
            metric,
        )
        np.testing.assert_allclose(scores, [3.0, 3.0])


class TestRowFilterPushdownProperty:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 100))
    @settings(max_examples=15, deadline=None)
    def test_filtered_results_subset_and_exact(self, seed, n_allowed):
        """Pushdown must (a) only return admissible ids and (b) at full
        probe equal brute force over the admissible subset."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(150, 6)).astype(np.float32)
        index = IVFFlatIndex(6, nlist=4, seed=0)
        index.train(data)
        index.add(data)
        allowed = np.sort(rng.choice(150, size=min(n_allowed, 150), replace=False))
        query = rng.normal(size=6).astype(np.float32)
        result = index.search(query, 5, nprobe=4, row_filter=allowed.astype(np.int64))
        got = result.ids[0][result.ids[0] >= 0]
        assert set(got.tolist()) <= set(allowed.tolist())
        dists = ((data[allowed] - query) ** 2).sum(axis=1)
        expected = allowed[np.argsort(dists, kind="stable")[:5]]
        np.testing.assert_allclose(
            np.sort(result.scores[0][: len(got)]),
            np.sort(dists[np.argsort(dists)[: len(got)]]),
            rtol=1e-4, atol=1e-2,
        )


class TestMultiVectorBatches:
    @pytest.fixture()
    def coll(self):
        schema = CollectionSchema(
            "mv",
            vector_fields=[VectorField("a", 12), VectorField("b", 8)],
        )
        cfg = LSMConfig(
            memtable_flush_bytes=1 << 30, index_build_min_rows=1 << 30,
            merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        )
        coll = Collection(schema, lsm_config=cfg)
        entities = recipe_like(400, text_dim=12, image_dim=8, seed=0)
        coll.insert({"a": entities["text"], "b": entities["image"]})
        coll.flush()
        self.entities = entities
        return coll

    def test_batch_queries_all_methods(self, coll):
        q = {"a": self.entities["text"][:4], "b": self.entities["image"][:4]}
        for method in ("fusion", "iterative", "naive"):
            out = coll.multi_vector_search(q, 3, method=method)
            assert len(out) == 4
            for qi, row in enumerate(out):
                assert row[0][0] == qi  # self is the best aggregate

    def test_mismatched_batch_sizes_rejected(self, coll):
        q = {"a": self.entities["text"][:4], "b": self.entities["image"][:2]}
        with pytest.raises(ValueError):
            coll.multi_vector_search(q, 3)

    def test_missing_field_rejected(self, coll):
        with pytest.raises(ValueError):
            coll.multi_vector_search({"a": self.entities["text"][:1]}, 3)

    def test_unknown_method_rejected(self, coll):
        q = {"a": self.entities["text"][:1], "b": self.entities["image"][:1]}
        with pytest.raises(ValueError):
            coll.multi_vector_search(q, 3, method="quantum")

    def test_single_vector_collection_rejected(self):
        schema = CollectionSchema("sv", vector_fields=[VectorField("only", 4)])
        coll = Collection(schema)
        with pytest.raises(ValueError):
            MultiVectorSearcher(coll)

    def test_mixed_metrics_rejected(self):
        schema = CollectionSchema(
            "mm",
            vector_fields=[VectorField("a", 4, "l2"), VectorField("b", 4, "ip")],
        )
        coll = Collection(schema)
        with pytest.raises(ValueError):
            MultiVectorSearcher(coll)

    def test_fusion_cache_invalidated_by_writes(self, coll):
        q = {"a": self.entities["text"][:1], "b": self.entities["image"][:1]}
        coll.multi_vector_search(q, 3, method="fusion")
        new = recipe_like(10, text_dim=12, image_dim=8, seed=9)
        ids = coll.insert({"a": new["text"], "b": new["image"]})
        coll.flush()
        probe = {"a": new["text"][:1], "b": new["image"][:1]}
        out = coll.multi_vector_search(probe, 1, method="fusion")
        assert out[0][0][0] == int(ids[0])
