"""Bufferpool: LRU eviction, pins, hit accounting."""

import numpy as np
import pytest

from repro.storage import BufferPool, Segment
from repro.storage.attributes import AttributeColumn
from repro.datasets import sift_like


def make_segment(seg_id, n=50):
    data = sift_like(n, dim=8, seed=seg_id)
    row_ids = np.arange(seg_id * 1000, seg_id * 1000 + n)
    return Segment(
        seg_id, row_ids, {"emb": data},
        {"a": AttributeColumn(np.zeros(n), row_ids)},
        {"emb": (8, "l2")},
    )


@pytest.fixture()
def pool():
    segments = {i: make_segment(i) for i in range(6)}
    loads = []

    def loader(seg_id):
        loads.append(seg_id)
        return segments[seg_id]

    seg_bytes = segments[0].memory_bytes()
    pool = BufferPool(capacity_bytes=3 * seg_bytes + 1, loader=loader)
    return pool, loads


class TestBufferPool:
    def test_miss_then_hit(self, pool):
        pool, loads = pool
        pool.get(0)
        pool.get(0)
        assert loads == [0]
        assert pool.hits == 1 and pool.misses == 1

    def test_lru_eviction(self, pool):
        pool, loads = pool
        for seg_id in (0, 1, 2):
            pool.get(seg_id)
        pool.get(0)  # refresh 0; LRU is now 1
        pool.get(3)  # evicts 1
        assert 1 not in pool
        assert 0 in pool
        pool.get(1)
        assert loads.count(1) == 2

    def test_pinned_not_evicted(self, pool):
        pool, __ = pool
        pool.get(0, pin=True)
        for seg_id in (1, 2, 3, 4):
            pool.get(seg_id)
        assert 0 in pool
        pool.unpin(0)

    def test_unpin_without_pin_raises(self, pool):
        pool, __ = pool
        pool.get(0)
        with pytest.raises(RuntimeError):
            pool.unpin(0)

    def test_nested_pins(self, pool):
        pool, __ = pool
        pool.get(0, pin=True)
        pool.get(0, pin=True)
        pool.unpin(0)
        for seg_id in (1, 2, 3, 4):
            pool.get(seg_id)
        assert 0 in pool  # still one pin outstanding
        pool.unpin(0)

    def test_invalidate(self, pool):
        pool, __ = pool
        pool.get(0)
        pool.invalidate(0)
        assert 0 not in pool

    def test_invalidate_pinned_raises(self, pool):
        pool, __ = pool
        pool.get(0, pin=True)
        with pytest.raises(RuntimeError):
            pool.invalidate(0)
        pool.unpin(0)

    def test_capacity_respected(self, pool):
        pool, __ = pool
        for seg_id in range(6):
            pool.get(seg_id)
        assert pool.resident_bytes <= pool.capacity_bytes
        assert pool.evictions >= 3

    def test_hit_rate(self, pool):
        pool, __ = pool
        pool.get(0)
        pool.get(0)
        pool.get(0)
        assert pool.hit_rate() == pytest.approx(2 / 3)

    def test_put_installs_without_loader(self, pool):
        pool, loads = pool
        fresh = make_segment(5)
        pool.put(fresh)
        pool.get(5)
        assert 5 not in loads
