"""REST stats endpoints and cluster auto-refresh reads."""

import numpy as np
import pytest

from repro.client import RestRouter
from repro.distributed import MilvusCluster
from repro.datasets import sift_like


class TestRestStats:
    @pytest.fixture()
    def router(self):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "s", "vector_fields": [{"name": "v", "dim": 8}],
        })
        data = sift_like(50, dim=8, seed=0)
        router.handle("POST", "/collections/s/entities", {"data": {"v": data.tolist()}})
        router.handle("POST", "/flush", {})
        return router

    def test_server_stats(self, router):
        resp = router.handle("GET", "/stats")
        assert resp.ok
        assert resp.body["collections"]["s"]["num_entities"] == 50

    def test_collection_stats(self, router):
        resp = router.handle("GET", "/collections/s/stats")
        assert resp.ok
        assert resp.body["live_rows"] == 50
        assert resp.body["live_segments"] == 1
        assert "bufferpool" in resp.body

    def test_missing_collection_stats_404(self, router):
        assert router.handle("GET", "/collections/ghost/stats").status == 404


class TestClusterAutoRefresh:
    def test_read_your_writes(self):
        data = sift_like(600, dim=8, seed=1)
        cluster = MilvusCluster(2, dim=8, index_type="FLAT")
        cluster.insert(np.arange(500), data[:500])
        cluster.sync()
        # New writes, no explicit sync: invisible without auto_refresh...
        cluster.insert(np.arange(500, 600), data[500:])
        stale = cluster.search(data[550], 1)
        assert stale.result.ids[0, 0] != 550
        # ...visible with it.
        fresh = cluster.search(data[550], 1, auto_refresh=True)
        assert fresh.result.ids[0, 0] == 550
