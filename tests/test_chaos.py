"""Seeded chaos suite: scripted fault schedules vs. the recovery path.

The invariant under test, for every schedule: **no acknowledged write
is ever lost**.  A write is acknowledged iff the engine call returned
without raising; a :class:`SimulatedCrash` aborts the "process" (the
manager object is discarded) and a fresh manager recovers from the
surviving filesystem state — exactly a crash-restart cycle.  Cluster
schedules additionally assert that partial failure degrades (tagged
results) instead of raising.  Everything is deterministic under the
fixed seeds below.
"""

import threading

import numpy as np
import pytest

from repro.core.errors import NodeNotFoundError, NoLiveReadersError
from repro.datasets import exact_ground_truth, random_queries, sift_like
from repro.distributed import MilvusCluster, RespawnPolicy
from repro.storage import (
    FaultPlan,
    FaultyFileSystem,
    InMemoryObjectStore,
    LSMConfig,
    LSMManager,
    SimulatedCrash,
    TieredMergePolicy,
    WriteAheadLog,
)
from repro.utils import sanitizer as san
from repro.utils.retry import RetryPolicy

SPECS = {"emb": (8, "l2")}


def make_lsm(fs, **overrides):
    defaults = dict(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        auto_merge=False,
    )
    defaults.update(overrides)
    return LSMManager(SPECS, ("price",), LSMConfig(**defaults), fs=fs)


def batch(rng, row_ids):
    row_ids = np.asarray(row_ids, dtype=np.int64)
    return row_ids, {"emb": rng.normal(size=(len(row_ids), 8)).astype(np.float32)}, {
        "price": rng.uniform(0, 1, len(row_ids))
    }


def visible_row_ids(lsm):
    """Row ids a client can see: flushed + replayed, minus tombstones."""
    lsm.flush()  # materialize anything recovered into the memtable
    snap = lsm.snapshot()
    try:
        parts = [lsm.bufferpool.get(s).row_ids for s in snap.segment_ids]
        if not parts:
            return set()
        all_ids = np.concatenate(parts)
        return set(int(i) for i in all_ids[~np.isin(all_ids, snap.tombstones)])
    finally:
        lsm.release(snap)


class TestCrashRecoverySchedules:
    """One scripted crash point per test; recovery must preserve acks."""

    def run_schedule(self, plan, script, seed=0):
        """Run ``script(lsm, ack)`` until its scripted crash, then recover.

        ``script`` performs engine ops, adding row ids to ``ack`` only
        after the op returns (= was acknowledged).  Returns the set of
        acknowledged ids and the recovered manager (built on the bare
        inner store, as a restarted process would be).
        """
        inner = InMemoryObjectStore()
        rng = np.random.default_rng(seed)
        lsm = make_lsm(FaultyFileSystem(inner, plan))
        acked = set()
        with pytest.raises(SimulatedCrash):
            script(lsm, rng, acked)
        lsm.quiesce_after_crash()  # a real crash stops *all* threads
        recovered = make_lsm(inner)
        recovered.recover()
        return acked, recovered

    def test_torn_wal_tail(self):
        plan = FaultPlan(seed=11)
        plan.torn_write("wal/*", truncate_at=40, nth=3)

        def script(lsm, rng, acked):
            for start in (0, 10, 20, 30):
                ids, vecs, attrs = batch(rng, np.arange(start, start + 10))
                lsm.insert(ids, vecs, attrs)
                acked.update(int(i) for i in ids)

        acked, recovered = self.run_schedule(plan, script)
        assert acked == set(range(20))  # third batch crashed un-acked
        visible = visible_row_ids(recovered)
        assert visible == acked  # nothing acked lost, nothing un-acked leaked

    def test_crash_mid_flush_segment_write(self):
        plan = FaultPlan(seed=12)
        plan.crash_after("segments/*", op="write", nth=1)

        def script(lsm, rng, acked):
            ids, vecs, attrs = batch(rng, np.arange(50))
            lsm.insert(ids, vecs, attrs)
            acked.update(int(i) for i in ids)
            lsm.flush()

        acked, recovered = self.run_schedule(plan, script)
        assert visible_row_ids(recovered) == acked  # WAL replay covers the batch

    def test_crash_mid_manifest_write_is_torn(self):
        plan = FaultPlan(seed=13)
        plan.torn_write("manifest/*", truncate_at=16, nth=1)

        def script(lsm, rng, acked):
            ids, vecs, attrs = batch(rng, np.arange(40))
            lsm.insert(ids, vecs, attrs)
            acked.update(int(i) for i in ids)
            lsm.flush()

        acked, recovered = self.run_schedule(plan, script)
        assert visible_row_ids(recovered) == acked

    def test_crash_mid_checkpoint_wal_truncate(self):
        plan = FaultPlan(seed=14)
        plan.crash_after("wal/*", op="delete", nth=1)

        def script(lsm, rng, acked):
            for start in (0, 25):
                ids, vecs, attrs = batch(rng, np.arange(start, start + 25))
                lsm.insert(ids, vecs, attrs)
                acked.update(int(i) for i in ids)
            lsm.flush()

        acked, recovered = self.run_schedule(plan, script)
        # Manifest already covers the flush; leftover WAL records must
        # not be double-applied (set equality alone would miss
        # duplicate rows, so check the physical row count too).
        assert visible_row_ids(recovered) == acked
        assert recovered.num_live_rows == len(acked)

    def test_crash_mid_merge(self):
        plan = FaultPlan(seed=15)
        plan.crash_after("segments/*", op="write", nth=3)  # the merged output

        def script(lsm, rng, acked):
            for start in (0, 30):
                ids, vecs, attrs = batch(rng, np.arange(start, start + 30))
                lsm.insert(ids, vecs, attrs)
                acked.update(int(i) for i in ids)
                lsm.flush()
            lsm.maybe_merge()

        acked, recovered = self.run_schedule(plan, script)
        assert visible_row_ids(recovered) == acked
        assert recovered.fs.listdir("segments/")  # inputs survived the crash

    def test_crash_then_recover_then_crash_again(self):
        """Recovery itself is crash-safe and idempotent."""
        inner = InMemoryObjectStore()
        rng = np.random.default_rng(3)
        plan = FaultPlan(seed=16)
        plan.crash_after("segments/*", op="write", nth=1)
        lsm = make_lsm(FaultyFileSystem(inner, plan))
        ids, vecs, attrs = batch(rng, np.arange(64))
        lsm.insert(ids, vecs, attrs)
        acked = set(int(i) for i in ids)
        with pytest.raises(SimulatedCrash):
            lsm.flush()

        # Second incarnation crashes during *recovery's* checkpoint.
        plan2 = FaultPlan(seed=17)
        plan2.crash_after("wal/*", op="delete", nth=1)
        half_recovered = make_lsm(FaultyFileSystem(inner, plan2))
        with pytest.raises(SimulatedCrash):
            half_recovered.recover()
            half_recovered.flush()

        final = make_lsm(inner)
        final.recover()
        assert visible_row_ids(final) == acked
        assert final.num_live_rows == len(acked)

    def test_deletes_survive_crash(self):
        plan = FaultPlan(seed=18)
        plan.crash_after("manifest/*", op="write", nth=2)

        def script(lsm, rng, acked):
            ids, vecs, attrs = batch(rng, np.arange(30))
            lsm.insert(ids, vecs, attrs)
            acked.update(int(i) for i in ids)
            lsm.flush()  # manifest write #1
            lsm.delete(np.arange(5))
            acked.difference_update(range(5))
            lsm.flush()  # manifest write #2 lands, then crash

        acked, recovered = self.run_schedule(plan, script)
        assert visible_row_ids(recovered) == acked

    def test_flaky_store_with_retry_loses_nothing(self):
        """Transient write faults + retry: every acked batch survives."""
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=19)
        plan.fail("wal/*", op="write", nth=2, times=2)
        plan.fail("segments/*", op="write", nth=1, times=1)
        faulty = FaultyFileSystem(inner, plan)
        lsm = make_lsm(faulty)
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None, seed=7)
        rng = np.random.default_rng(5)
        acked = set()
        for start in (0, 20, 40):
            ids, vecs, attrs = batch(rng, np.arange(start, start + 20))
            policy.call(lsm.insert, ids, vecs, attrs)
            acked.update(int(i) for i in ids)
        policy.call(lsm.flush)
        recovered = make_lsm(inner)
        recovered.recover()
        assert visible_row_ids(recovered) == acked
        assert faulty.faults_fired("error") >= 3  # schedule actually ran


def orphan_segment_files(lsm):
    """Segment files on storage that no live manifest entry references."""
    on_disk = set()
    for path in lsm.fs.listdir("segments/"):
        try:
            on_disk.add(int(path.rsplit("/", 1)[-1].split(".")[0]))
        except ValueError:
            continue
    return on_disk - set(lsm.manifest.live_segment_ids())


def _bg_workload(lsm, rng, acked):
    """Deterministic mixed workload driving every background crash point.

    Filesystem op stream (the coordinates the crash specs below index
    into): segment writes #1/#2 are flushes, #3 is the first compaction
    output, #4 another flush, #5+ the second compaction round; manifest
    writes follow each commit; WAL deletes are the per-flush checkpoints.
    """
    for start in (0, 30):
        ids, vecs, attrs = batch(rng, np.arange(start, start + 30))
        lsm.insert(ids, vecs, attrs)
        acked.update(int(i) for i in ids)
        lsm.flush()
    lsm.delete(np.arange(10))
    acked.difference_update(range(10))
    lsm.flush()
    lsm.maybe_merge()  # background compaction: segment write #3
    ids, vecs, attrs = batch(rng, np.arange(60, 90))
    lsm.insert(ids, vecs, attrs)
    acked.update(int(i) for i in ids)
    lsm.flush()  # segment write #4
    lsm.maybe_merge()  # second compaction round
    lsm.flush()  # barrier: surfaces any crash the flusher recorded


#: (label, plan-arming function) — each crashes a different point in the
#: background engine's op stream.  Crossed with the seeds below this is
#: a 12 x 5 = 60-schedule matrix (acceptance floor: 50).
BG_CRASH_POINTS = [
    # crash between freeze and flush: the frozen memtable's rows are
    # acked + WAL-covered, the segment file never (fully) lands
    ("freeze-to-flush", lambda p: p.crash_before("segments/*", op="write", nth=1)),
    ("flush-after-seg-1", lambda p: p.crash_after("segments/*", op="write", nth=1)),
    ("flush-after-seg-2", lambda p: p.crash_after("segments/*", op="write", nth=2)),
    # crash during background compaction, before/after the merged
    # output persists (the orphan-GC and double-apply hazards)
    ("compact-before-out", lambda p: p.crash_before("segments/*", op="write", nth=3)),
    ("compact-after-out", lambda p: p.crash_after("segments/*", op="write", nth=3)),
    ("compact-round-2", lambda p: p.crash_after("segments/*", op="write", nth=5)),
    # manifest commit torn / interrupted mid-sequence
    ("manifest-after-1", lambda p: p.crash_after("manifest/*", op="write", nth=1)),
    ("manifest-after-4", lambda p: p.crash_after("manifest/*", op="write", nth=4)),
    ("manifest-torn-1", lambda p: p.torn_write("manifest/*", truncate_at=16, nth=1)),
    ("manifest-torn-4", lambda p: p.torn_write("manifest/*", truncate_at=16, nth=4)),
    # WAL checkpoint interrupted (double-apply hazard on replay)
    ("wal-truncate-1", lambda p: p.crash_after("wal/*", op="delete", nth=1)),
    # writer-path crash before the WAL record lands: never acked
    ("wal-append-before-2", lambda p: p.crash_before("wal/*", op="write", nth=2)),
]

BG_SEEDS = [101, 202, 303, 404, 505]


class TestBackgroundCrashSchedules:
    """Seeded crash matrix against the *background* write engine.

    Same invariant as above — no acked write lost, none applied twice —
    plus: recovery leaves no orphan segment files, whichever thread the
    crash landed on (writer path or the background flusher/compactor).
    """

    def run_bg_schedule(self, plan, seed):
        inner = InMemoryObjectStore()
        rng = np.random.default_rng(seed)
        lsm = make_lsm(FaultyFileSystem(inner, plan), background=True)
        acked = set()
        fired = False
        try:
            _bg_workload(lsm, rng, acked)
        except SimulatedCrash:
            fired = True
        # A real crash kills the flusher with the process; the simulated
        # one must stop it explicitly before "restarting".
        lsm.quiesce_after_crash()
        recovered = make_lsm(inner)
        recovered.recover()
        return acked, recovered, fired

    @pytest.mark.parametrize("seed", BG_SEEDS)
    @pytest.mark.parametrize(
        "label,arm", BG_CRASH_POINTS, ids=[l for l, __ in BG_CRASH_POINTS]
    )
    def test_bg_crash_schedule(self, label, arm, seed):
        plan = FaultPlan(seed=seed)
        rule = arm(plan)
        acked, recovered, fired = self.run_bg_schedule(plan, seed)
        assert fired, f"schedule {label!r} never reached its crash point"
        assert rule.fired >= 1
        assert orphan_segment_files(recovered) == set()
        visible = visible_row_ids(recovered)
        assert visible == acked  # nothing acked lost, nothing un-acked leaked
        assert recovered.num_live_rows == len(acked)  # nothing applied twice

    def test_crash_free_background_run_converges(self):
        """Control schedule: no faults — bg engine matches the workload."""
        inner = InMemoryObjectStore()
        rng = np.random.default_rng(7)
        lsm = make_lsm(inner, background=True)
        acked = set()
        _bg_workload(lsm, rng, acked)
        lsm.close()
        assert orphan_segment_files(lsm) == set()
        assert visible_row_ids(lsm) == acked
        assert lsm.num_live_rows == len(acked)


class TestWalRace:
    """`truncate_through` racing `replay` under the sanitized WAL lock."""

    @pytest.fixture
    def tsan(self):
        instance = san.enable()
        instance.reset()
        try:
            yield instance
        finally:
            san.disable()

    def test_truncate_racing_replay_is_serialized(self, tsan):
        fs = InMemoryObjectStore()
        wal = WriteAheadLog(fs)
        for i in range(60):
            wal.append_delete(np.array([i]))
        errors = []

        def replayer():
            try:
                for __ in range(30):
                    for record in wal.replay():
                        assert record.row_ids is not None
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def truncator():
            try:
                for lsn in range(0, 60, 2):
                    wal.truncate_through(lsn)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=replayer),
                   threading.Thread(target=truncator)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert errors == []
        report = tsan.report()
        assert report["lock_order_violations"] == []
        assert report["unguarded_mutations"] == []

    def test_append_under_sanitizer_guards_lsn(self, tsan):
        wal = WriteAheadLog(InMemoryObjectStore())
        wal.append_delete(np.array([1]))
        assert tsan.report()["unguarded_mutations"] == []


class TestClusterDegradation:
    @pytest.fixture
    def loaded(self):
        data = sift_like(400, dim=8, seed=21)
        queries = random_queries(data, 8, seed=22)
        truth = exact_ground_truth(queries, data, 5, "l2")
        cluster = MilvusCluster(3, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        return cluster, queries, truth

    def test_healthy_search_not_degraded(self, loaded):
        cluster, queries, __ = loaded
        res = cluster.search(queries, 5)
        assert res.degraded is False
        assert res.missing_shards == []

    def test_crashed_reader_degrades_instead_of_raising(self, loaded):
        cluster, queries, __ = loaded
        cluster.crash_reader("reader-1")
        res = cluster.search(queries, 5)
        assert res.degraded is True
        assert res.missing_shards == ["reader-1"]
        assert (res.result.ids >= 0).any()  # partial answer, not empty

    def test_all_readers_down_raises_clear_error(self, loaded):
        cluster, queries, __ = loaded
        for node_id in list(cluster.readers):
            cluster.crash_reader(node_id)
        with pytest.raises(NoLiveReadersError):
            cluster.search(queries, 5)

    def test_unknown_node_ids_raise_node_not_found(self, loaded):
        cluster, *__ = loaded
        with pytest.raises(NodeNotFoundError):
            cluster.crash_reader("reader-99")
        with pytest.raises(NodeNotFoundError):
            cluster.restart_reader("nope")
        # Still a KeyError for callers catching the old contract.
        assert issubclass(NodeNotFoundError, KeyError)

    def test_auto_respawn_restores_full_recall(self):
        data = sift_like(300, dim=8, seed=23)
        queries = random_queries(data, 6, seed=24)
        cluster = MilvusCluster(
            2, dim=8, index_type="FLAT",
            respawn_policy=RespawnPolicy(auto=True, max_respawns_per_node=2),
        )
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        cluster.crash_reader("reader-0")
        res = cluster.search(queries, 5)
        assert res.degraded is False  # respawned from shared storage
        assert cluster.coordinator.respawns_of("reader-0") == 1

    def test_respawn_cap_leaves_crash_looper_down(self):
        data = sift_like(200, dim=8, seed=25)
        queries = random_queries(data, 4, seed=26)
        cluster = MilvusCluster(
            2, dim=8, index_type="FLAT",
            respawn_policy=RespawnPolicy(auto=True, max_respawns_per_node=2),
        )
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        for __ in range(2):
            cluster.crash_reader("reader-0")
            cluster.search(queries, 5)  # respawns (1 then 2)
        cluster.crash_reader("reader-0")
        res = cluster.search(queries, 5)  # over the cap: stays down
        assert res.degraded is True
        assert res.missing_shards == ["reader-0"]

    def test_flaky_shared_store_writer_retries(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=27)
        fail_rule = plan.fail("shardlog/*", op="write", nth=1, times=2)
        shared = FaultyFileSystem(inner, plan)
        cluster = MilvusCluster(
            2, dim=8, index_type="FLAT", shared=shared,
            retry=RetryPolicy(max_attempts=4, sleep=lambda s: None, seed=28),
        )
        data = sift_like(100, dim=8, seed=29)
        cluster.insert(np.arange(len(data)), data)  # survives 2 faults
        cluster.sync()
        assert cluster.total_rows() == len(data)
        assert fail_rule.fired == 2

    def test_reader_dying_mid_fanout_degrades(self, loaded):
        cluster, queries, __ = loaded
        # Kill the node object directly (not via the facade) so the
        # cluster only discovers the death inside the fan-out loop.
        victim = cluster.readers["reader-2"]
        original_search = victim.search

        def dying_search(*args, **kwargs):
            victim.crash()
            return original_search(*args, **kwargs)

        victim.search = dying_search
        res = cluster.search(queries, 5)
        assert res.degraded is True
        assert res.missing_shards == ["reader-2"]
