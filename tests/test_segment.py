"""Segments: columnar layout, search, merge, serialization."""

import numpy as np
import pytest

from repro.storage import Segment
from repro.storage.attributes import AttributeColumn
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


def make_segment(seg_id, row_ids, data, prices):
    row_ids = np.asarray(row_ids, dtype=np.int64)
    return Segment(
        seg_id, row_ids, {"emb": data},
        {"price": AttributeColumn(prices, row_ids)},
        SPECS,
    )


@pytest.fixture(scope="module")
def seg():
    data = sift_like(200, dim=16, seed=0)
    prices = np.linspace(0, 100, 200)
    return make_segment(0, np.arange(200), data, prices), data, prices


class TestSegmentBasics:
    def test_row_ids_must_increase(self):
        with pytest.raises(ValueError):
            make_segment(0, [3, 2, 1], np.zeros((3, 16), np.float32), np.zeros(3))

    def test_vectors_for(self, seg):
        segment, data, __ = seg
        got = segment.vectors_for("emb", np.array([5, 10]))
        np.testing.assert_array_equal(got, data[[5, 10]])

    def test_vectors_for_missing_raises(self, seg):
        segment, *_ = seg
        with pytest.raises(KeyError):
            segment.vectors_for("emb", np.array([9999]))

    def test_positions_of(self, seg):
        segment, *_ = seg
        pos = segment.positions_of(np.array([0, 199, 500]))
        assert pos.tolist() == [0, 199, -1]

    def test_attribute_range(self, seg):
        segment, __, prices = seg
        rows = segment.attribute_range("price", 0, 50)
        assert (prices[rows] <= 50).all()


class TestSegmentSearch:
    def test_brute_force_exact(self, seg):
        segment, data, __ = seg
        result = segment.search("emb", data[7], 1)
        assert result.ids[0, 0] == 7

    def test_exclude_tombstones(self, seg):
        segment, data, __ = seg
        result = segment.search("emb", data[7], 1, exclude=np.array([7]))
        assert result.ids[0, 0] != 7

    def test_row_filter(self, seg):
        segment, data, __ = seg
        allowed = np.arange(100, 200, dtype=np.int64)
        result = segment.search("emb", data[7], 5, row_filter=allowed)
        assert (result.ids[0][result.ids[0] >= 0] >= 100).all()

    def test_indexed_search_agrees_with_brute(self, seg):
        segment, data, __ = seg
        brute = segment.search("emb", data[:5], 5)
        segment.build_index("emb", "IVF_FLAT", nlist=8)
        indexed = segment.search("emb", data[:5], 5, nprobe=8)
        np.testing.assert_array_equal(brute.ids, indexed.ids)

    def test_indexed_search_with_tombstones(self, seg):
        segment, data, __ = seg
        if not segment.has_index("emb"):
            segment.build_index("emb", "IVF_FLAT", nlist=8)
        result = segment.search("emb", data[7], 1, nprobe=8, exclude=np.array([7]))
        assert result.ids[0, 0] != 7


class TestSegmentMerge:
    def test_merge_combines_rows(self):
        data = sift_like(100, dim=16, seed=1)
        a = make_segment(0, np.arange(50), data[:50], np.arange(50.0))
        b = make_segment(1, np.arange(50, 100), data[50:], np.arange(50.0, 100.0))
        merged = Segment.merge(2, [a, b])
        assert len(merged) == 100
        np.testing.assert_array_equal(merged.row_ids, np.arange(100))
        np.testing.assert_array_equal(merged.vectors["emb"], data)

    def test_merge_drops_tombstones(self):
        data = sift_like(60, dim=16, seed=2)
        a = make_segment(0, np.arange(30), data[:30], np.zeros(30))
        b = make_segment(1, np.arange(30, 60), data[30:], np.zeros(30))
        merged = Segment.merge(2, [a, b], drop_ids=np.array([5, 35]))
        assert len(merged) == 58
        assert 5 not in merged.row_ids
        assert 35 not in merged.row_ids
        # Attribute column dropped the same rows.
        assert len(merged.attributes["price"]) == 58

    def test_merge_interleaved_ids(self):
        data = sift_like(40, dim=16, seed=3)
        a = make_segment(0, np.arange(0, 40, 2), data[:20], np.zeros(20))
        b = make_segment(1, np.arange(1, 40, 2), data[20:], np.zeros(20))
        merged = Segment.merge(2, [a, b])
        np.testing.assert_array_equal(merged.row_ids, np.arange(40))


class TestSegmentSerialization:
    def test_roundtrip(self, seg):
        segment, data, prices = seg
        blob = segment.to_bytes()
        restored = Segment.from_bytes(blob)
        assert restored.segment_id == segment.segment_id
        np.testing.assert_array_equal(restored.row_ids, segment.row_ids)
        np.testing.assert_array_equal(restored.vectors["emb"], segment.vectors["emb"])
        got = restored.attribute_range("price", 0, 50)
        expected = segment.attribute_range("price", 0, 50)
        assert set(got.tolist()) == set(expected.tolist())

    def test_roundtrip_search_identical(self, seg):
        segment, data, __ = seg
        restored = Segment.from_bytes(segment.to_bytes())
        r1 = segment._brute_force(
            __import__("repro.metrics", fromlist=["get_metric"]).get_metric("l2"),
            "emb", data[:3], 5, None, None,
        )
        r2 = restored.search("emb", data[:3], 5)
        np.testing.assert_array_equal(r1.ids, r2.ids)
