"""Dense metric kernels: values, direction, and edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    EuclideanMetric,
    InnerProductMetric,
    CosineMetric,
    l2_squared_pairwise,
    inner_product_pairwise,
    cosine_pairwise,
)


def _floats(shape):
    return hnp.arrays(
        np.float32, shape,
        elements=st.floats(-100, 100, width=32, allow_nan=False),
    )


class TestL2:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        q = rng.normal(size=(5, 8)).astype(np.float32)
        x = rng.normal(size=(7, 8)).astype(np.float32)
        expected = ((q[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(l2_squared_pairwise(q, x), expected, rtol=1e-4)

    def test_self_distance_zero(self):
        x = np.random.default_rng(1).normal(size=(4, 6)).astype(np.float32)
        d = l2_squared_pairwise(x, x)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-3)

    def test_never_negative(self):
        rng = np.random.default_rng(2)
        q = rng.normal(size=(10, 32)).astype(np.float32) * 1000
        d = l2_squared_pairwise(q, q + 1e-6)
        assert (d >= 0).all()

    def test_1d_input_promoted(self):
        d = l2_squared_pairwise(np.ones(4), np.zeros((3, 4)))
        assert d.shape == (1, 3)
        np.testing.assert_allclose(d, 4.0)

    @given(_floats((3, 5)), _floats((4, 5)))
    @settings(max_examples=25, deadline=None)
    def test_symmetry_property(self, q, x):
        np.testing.assert_allclose(
            l2_squared_pairwise(q, x), l2_squared_pairwise(x, q).T,
            rtol=1e-3, atol=1e-2,
        )


class TestInnerProduct:
    def test_matches_naive(self):
        rng = np.random.default_rng(3)
        q = rng.normal(size=(4, 6)).astype(np.float32)
        x = rng.normal(size=(5, 6)).astype(np.float32)
        np.testing.assert_allclose(inner_product_pairwise(q, x), q @ x.T, rtol=1e-5)

    def test_direction(self):
        metric = InnerProductMetric()
        assert metric.higher_is_better
        assert metric.is_better(2.0, 1.0)
        assert metric.worst_value() == -np.inf


class TestCosine:
    def test_range(self):
        rng = np.random.default_rng(4)
        q = rng.normal(size=(6, 8)).astype(np.float32)
        x = rng.normal(size=(9, 8)).astype(np.float32)
        c = cosine_pairwise(q, x)
        assert (c <= 1.0 + 1e-5).all() and (c >= -1.0 - 1e-5).all()

    def test_self_similarity_one(self):
        x = np.random.default_rng(5).normal(size=(4, 8)).astype(np.float32)
        c = cosine_pairwise(x, x)
        np.testing.assert_allclose(np.diag(c), 1.0, atol=1e-5)

    def test_zero_vector_scores_zero(self):
        q = np.zeros((1, 4), dtype=np.float32)
        x = np.ones((2, 4), dtype=np.float32)
        np.testing.assert_allclose(cosine_pairwise(q, x), 0.0)

    def test_scale_invariance(self):
        rng = np.random.default_rng(6)
        q = rng.normal(size=(3, 5)).astype(np.float32)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        np.testing.assert_allclose(
            cosine_pairwise(q, x), cosine_pairwise(10 * q, 0.5 * x), atol=1e-5
        )


class TestMetricObjects:
    def test_sort_order_l2(self):
        metric = EuclideanMetric()
        order = metric.sort_order(np.array([3.0, 1.0, 2.0]))
        assert order.tolist() == [1, 2, 0]

    def test_sort_order_ip(self):
        metric = InnerProductMetric()
        order = metric.sort_order(np.array([3.0, 1.0, 2.0]))
        assert order.tolist() == [0, 2, 1]

    def test_single(self):
        metric = EuclideanMetric()
        assert metric.single(np.zeros(3), np.ones(3)) == pytest.approx(3.0)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            l2_squared_pairwise(np.zeros((2, 2, 2)), np.zeros((2, 2)))
