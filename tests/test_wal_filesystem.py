"""WAL and filesystem backends."""

import numpy as np
import pytest

from repro.storage import (
    InMemoryObjectStore,
    LocalFileSystem,
    SimulatedHDFS,
    WriteAheadLog,
)


@pytest.fixture(params=["memory", "local", "hdfs"])
def fs(request, tmp_path):
    if request.param == "memory":
        return InMemoryObjectStore()
    if request.param == "local":
        return LocalFileSystem(str(tmp_path / "fsroot"))
    return SimulatedHDFS()


class TestFileSystems:
    def test_write_read_roundtrip(self, fs):
        fs.write("a/b/c.bin", b"hello")
        assert fs.read("a/b/c.bin") == b"hello"

    def test_overwrite(self, fs):
        fs.write("x", b"one")
        fs.write("x", b"two")
        assert fs.read("x") == b"two"

    def test_missing_raises(self, fs):
        with pytest.raises(FileNotFoundError):
            fs.read("nope")

    def test_delete_idempotent(self, fs):
        fs.write("gone", b"x")
        fs.delete("gone")
        fs.delete("gone")
        assert not fs.exists("gone")

    def test_listdir_prefix(self, fs):
        fs.write("seg/001", b"a")
        fs.write("seg/002", b"b")
        fs.write("wal/001", b"c")
        assert fs.listdir("seg/") == ["seg/001", "seg/002"]

    def test_io_counters(self, fs):
        fs.reset_counters()
        fs.write("k", b"12345")
        fs.read("k")
        assert fs.bytes_written == 5
        assert fs.bytes_read == 5


class TestLocalFileSystemSafety:
    def test_path_escape_rejected(self, tmp_path):
        fs = LocalFileSystem(str(tmp_path / "root"))
        with pytest.raises(ValueError):
            fs.write("../escape", b"x")


class TestSimulatedHDFS:
    def test_block_rounding(self):
        hdfs = SimulatedHDFS(block_size=1024)
        hdfs.write("small", b"x")
        assert hdfs.stored_bytes() == 1024
        hdfs.write("big", b"x" * 1500)
        assert hdfs.stored_bytes() == 1024 + 2048


class TestWriteAheadLog:
    def test_append_and_replay(self):
        fs = InMemoryObjectStore()
        wal = WriteAheadLog(fs)
        vectors = {"emb": np.ones((2, 4), dtype=np.float32)}
        attrs = {"price": np.array([1.0, 2.0])}
        wal.append_insert(np.array([0, 1]), vectors, attrs)
        wal.append_delete(np.array([0]))
        records = list(wal.replay())
        assert [r.kind for r in records] == ["insert", "delete"]
        np.testing.assert_array_equal(records[0].vectors["emb"], vectors["emb"])
        np.testing.assert_array_equal(records[0].attributes["price"], attrs["price"])
        np.testing.assert_array_equal(records[1].row_ids, [0])

    def test_lsn_monotone(self):
        wal = WriteAheadLog(InMemoryObjectStore())
        lsns = [wal.append_delete(np.array([i])) for i in range(5)]
        assert lsns == [0, 1, 2, 3, 4]

    def test_truncate(self):
        fs = InMemoryObjectStore()
        wal = WriteAheadLog(fs)
        for i in range(4):
            wal.append_delete(np.array([i]))
        wal.truncate_through(1)
        remaining = [r.row_ids[0] for r in wal.replay()]
        assert remaining == [2, 3]

    def test_recovers_lsn_from_existing_log(self):
        fs = InMemoryObjectStore()
        wal1 = WriteAheadLog(fs)
        wal1.append_delete(np.array([1]))
        wal1.append_delete(np.array([2]))
        wal2 = WriteAheadLog(fs)  # fresh process, same storage
        assert wal2.next_lsn == 2

    def test_replay_from_lsn(self):
        wal = WriteAheadLog(InMemoryObjectStore())
        for i in range(5):
            wal.append_delete(np.array([i]))
        tail = [r.lsn for r in wal.replay(from_lsn=3)]
        assert tail == [3, 4]
