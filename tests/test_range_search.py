"""Range (radius) search across indexes and the collection API."""

import numpy as np
import pytest

from repro.core import CollectionSchema, Collection, AttributeField, VectorField
from repro.index import BinaryFlatIndex, FlatIndex, HNSWIndex, IVFFlatIndex
from repro.metrics import jaccard_pairwise
from repro.datasets import chemical_fingerprints, sift_like
from repro.storage import LSMConfig, TieredMergePolicy


@pytest.fixture(scope="module")
def dense():
    data = sift_like(1000, dim=16, seed=0)
    dists = ((data - data[0]) ** 2).sum(axis=1)
    radius = float(np.percentile(dists, 5))
    expected = set(np.flatnonzero(dists <= radius).tolist())
    return data, radius, expected


class TestFlatRange:
    def test_matches_naive(self, dense):
        data, radius, expected = dense
        index = FlatIndex(16)
        index.add(data)
        hits = index.range_search(data[0], radius)[0]
        assert {i for i, __ in hits} == expected

    def test_sorted_best_first(self, dense):
        data, radius, __ = dense
        index = FlatIndex(16)
        index.add(data)
        scores = [s for __, s in index.range_search(data[0], radius)[0]]
        assert scores == sorted(scores)

    def test_similarity_direction(self, dense):
        data, *_ = dense
        index = FlatIndex(16, metric="ip")
        index.add(data)
        sims = data @ data[0]
        threshold = float(np.percentile(sims, 95))
        hits = index.range_search(data[0], threshold)[0]
        expected = set(np.flatnonzero(sims >= threshold).tolist())
        assert {i for i, __ in hits} == expected

    def test_empty_index(self):
        index = FlatIndex(4)
        assert index.range_search(np.zeros(4, dtype=np.float32), 1.0) == [[]]


class TestIVFRange:
    def test_full_probe_matches_exact(self, dense):
        data, radius, expected = dense
        index = IVFFlatIndex(16, nlist=8, seed=0)
        index.train(data)
        index.add(data)
        hits = index.range_search(data[0], radius, nprobe=8)[0]
        assert {i for i, __ in hits} == expected

    def test_partial_probe_subset(self, dense):
        data, radius, expected = dense
        index = IVFFlatIndex(16, nlist=8, seed=0)
        index.train(data)
        index.add(data)
        hits = index.range_search(data[0], radius, nprobe=1)[0]
        assert {i for i, __ in hits} <= expected


class TestBinaryRange:
    def test_similarity_screening(self):
        codes, families = chemical_fingerprints(300, n_bits=256, seed=0)
        index = BinaryFlatIndex(256, metric="jaccard")
        index.add(codes)
        hits = index.range_search(codes[0], 0.4)[0]
        dists = jaccard_pairwise(codes[0], codes)[0]
        expected = set(np.flatnonzero(dists <= 0.4).tolist())
        assert {i for i, __ in hits} == expected


class TestUnsupported:
    def test_hnsw_raises(self, dense):
        data, *_ = dense
        index = HNSWIndex(16, M=4, ef_construction=20, seed=0)
        index.add(data[:100])
        with pytest.raises(NotImplementedError):
            index.range_search(data[0], 1.0)


class TestCollectionRangeAndQuery:
    @pytest.fixture()
    def coll(self, dense):
        data, *_ = dense
        schema = CollectionSchema(
            "c",
            vector_fields=[VectorField("emb", 16)],
            attribute_fields=[AttributeField("price")],
        )
        cfg = LSMConfig(
            memtable_flush_bytes=1 << 30, index_build_min_rows=1 << 30,
            merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        )
        coll = Collection(schema, lsm_config=cfg)
        self.prices = np.linspace(0, 100, len(data))
        coll.insert({"emb": data, "price": self.prices})
        coll.flush()
        return coll

    def test_range_search_matches_flat(self, coll, dense):
        data, radius, expected = dense
        hits = coll.range_search("emb", data[0], radius)[0]
        assert {i for i, __ in hits} == expected

    def test_range_search_excludes_deleted(self, coll, dense):
        data, radius, expected = dense
        victim = sorted(expected)[0]
        coll.delete([victim])
        coll.flush()
        hits = coll.range_search("emb", data[0], radius)[0]
        assert victim not in {i for i, __ in hits}

    def test_range_search_with_segment_index(self, coll, dense):
        data, radius, expected = dense
        coll.create_index("emb", "IVF_FLAT", nlist=8)
        hits = coll.range_search("emb", data[0], radius, nprobe=8)[0]
        assert {i for i, __ in hits} == expected

    def test_scalar_query(self, coll):
        rows = coll.query(("price", 0.0, 10.0))
        assert len(rows) and (self.prices[rows] <= 10.0).all()

    def test_scalar_query_limit(self, coll):
        rows = coll.query(("price", 0.0, 100.0), limit=5)
        assert len(rows) == 5
