"""Shared fixtures: small, seeded datasets so the suite stays fast."""

import numpy as np
import pytest

from repro.datasets import sift_like, random_queries, exact_ground_truth


@pytest.fixture(scope="session")
def small_data():
    """500 x 16 clustered vectors."""
    return sift_like(500, dim=16, n_clusters=8, seed=0)


@pytest.fixture(scope="session")
def medium_data():
    """4000 x 24 clustered vectors (for IVF/filtering tests)."""
    return sift_like(4000, dim=24, n_clusters=16, seed=1)


@pytest.fixture(scope="session")
def small_queries(small_data):
    return random_queries(small_data, 10, seed=7)


@pytest.fixture(scope="session")
def medium_queries(medium_data):
    return random_queries(medium_data, 15, seed=8)


@pytest.fixture(scope="session")
def small_truth(small_data, small_queries):
    return exact_ground_truth(small_queries, small_data, 10, "l2")


@pytest.fixture(scope="session")
def medium_truth(medium_data, medium_queries):
    return exact_ground_truth(medium_queries, medium_data, 10, "l2")


@pytest.fixture()
def rng():
    return np.random.default_rng(42)
