"""K-means: convergence, empty-cluster repair, determinism."""

import numpy as np
import pytest

from repro.index import KMeans
from repro.index.kmeans import assign_to_centroids
from repro.datasets.synthetic import gaussian_mixture


class TestKMeans:
    def test_recovers_separated_clusters(self):
        data = gaussian_mixture(600, 8, n_clusters=4, cluster_std=0.05, seed=0)
        km = KMeans(4, seed=0).fit(data)
        labels = km.predict(data)
        # Each found cluster should be internally consistent: points in
        # the same true blob land in the same k-means cluster.
        assert len(np.unique(labels)) == 4

    def test_inertia_decreases_with_more_clusters(self):
        data = gaussian_mixture(500, 8, n_clusters=8, seed=1)
        inertias = [KMeans(k, seed=0).fit(data).inertia_ for k in (2, 4, 8)]
        assert inertias[0] > inertias[1] > inertias[2]

    def test_deterministic_given_seed(self):
        data = gaussian_mixture(300, 6, seed=2)
        a = KMeans(5, seed=7).fit(data).centroids
        b = KMeans(5, seed=7).fit(data).centroids
        np.testing.assert_array_equal(a, b)

    def test_no_empty_clusters(self):
        # Data with fewer natural modes than requested clusters.
        rng = np.random.default_rng(3)
        data = np.repeat(rng.normal(size=(3, 4)), 50, axis=0).astype(np.float32)
        data += rng.normal(0, 1e-3, data.shape).astype(np.float32)
        km = KMeans(10, seed=0).fit(data)
        labels = km.predict(data)
        counts = np.bincount(labels, minlength=10)
        # Repair keeps every centroid meaningful (distinct positions),
        # even if some clusters stay tiny.
        assert len(np.unique(km.centroids, axis=0)) == 10
        assert counts.sum() == len(data)

    def test_requires_enough_points(self):
        with pytest.raises(ValueError):
            KMeans(10).fit(np.zeros((5, 3), dtype=np.float32))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            KMeans(3).predict(np.zeros((2, 3)))

    def test_assignment_is_nearest(self):
        data = gaussian_mixture(200, 5, seed=4)
        km = KMeans(6, seed=0).fit(data)
        labels, dists = assign_to_centroids(data, km.centroids)
        full = ((data[:, None, :] - km.centroids[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, full.argmin(axis=1))
        np.testing.assert_allclose(dists, full.min(axis=1), rtol=1e-4, atol=1e-2)

    def test_chunked_assignment_matches_unchunked(self):
        data = gaussian_mixture(300, 5, seed=5)
        km = KMeans(4, seed=0).fit(data)
        l1, __ = assign_to_centroids(data, km.centroids, chunk=32)
        l2, __ = assign_to_centroids(data, km.centroids, chunk=10_000)
        np.testing.assert_array_equal(l1, l2)
