"""FLAT index: the exact-search reference."""

import numpy as np
import pytest

from repro.index import FlatIndex
from repro.datasets import exact_ground_truth, recall_at_k


class TestFlatIndex:
    def test_perfect_recall(self, small_data, small_queries, small_truth):
        index = FlatIndex(16, metric="l2")
        index.add(small_data)
        result = index.search(small_queries, 10)
        assert recall_at_k(result.ids, small_truth) == 1.0

    def test_scores_sorted_best_first(self, small_data, small_queries):
        index = FlatIndex(16)
        index.add(small_data)
        result = index.search(small_queries, 10)
        for qi in range(result.nq):
            scores = result.scores[qi]
            assert (np.diff(scores) >= -1e-9).all()

    def test_incremental_adds_equal_bulk(self, small_data, small_queries):
        bulk = FlatIndex(16)
        bulk.add(small_data)
        incremental = FlatIndex(16)
        for start in range(0, len(small_data), 97):
            incremental.add(small_data[start : start + 97])
        r1 = bulk.search(small_queries, 5)
        r2 = incremental.search(small_queries, 5)
        np.testing.assert_array_equal(r1.ids, r2.ids)

    def test_explicit_ids(self, small_data):
        index = FlatIndex(16)
        ids = np.arange(1000, 1000 + len(small_data))
        index.add(small_data, ids=ids)
        result = index.search(small_data[3], 1)
        assert result.ids[0, 0] == 1003

    def test_empty_index_returns_padding(self):
        index = FlatIndex(4)
        result = index.search(np.zeros((2, 4), dtype=np.float32), 3)
        assert (result.ids == -1).all()

    def test_k_exceeds_ntotal(self, small_data):
        index = FlatIndex(16)
        index.add(small_data[:5])
        result = index.search(small_data[0], 10)
        assert (result.ids[0, :5] >= 0).all()
        assert (result.ids[0, 5:] == -1).all()

    def test_dim_mismatch_raises(self):
        index = FlatIndex(8)
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 9), dtype=np.float32))

    def test_unknown_search_param_raises(self, small_data):
        index = FlatIndex(16)
        index.add(small_data)
        with pytest.raises(TypeError):
            index.search(small_data[0], 3, nprobe=4)

    def test_reconstruct(self, small_data):
        index = FlatIndex(16)
        index.add(small_data)
        np.testing.assert_array_equal(
            index.reconstruct(np.array([3, 7])), small_data[[3, 7]]
        )
        with pytest.raises(KeyError):
            index.reconstruct(np.array([99999]))

    def test_inner_product_direction(self, small_data):
        index = FlatIndex(16, metric="ip")
        index.add(small_data)
        result = index.search(small_data[:2], 5)
        for qi in range(2):
            assert (np.diff(result.scores[qi]) <= 1e-6).all()

    def test_stats(self, small_data):
        index = FlatIndex(16)
        index.add(small_data)
        stats = index.stats()
        assert stats["ntotal"] == len(small_data)
        assert stats["index_type"] == "FLAT"
        assert stats["memory_bytes"] > 0
