"""Observability layer: metrics, tracing, slow-query log, accounting fixes.

Covers the repro.obs primitives in isolation, the switchboard contract
(off by default, injectable for tests), the REST exposition endpoints,
the end-to-end trace chain (client -> cluster -> every reader -> index
search), and the two query-accounting regressions this layer's
instrumentation surfaced:

* a failed ``ReaderNode.search`` used to count toward
  ``queries_served``/``busy_seconds`` (accounting sat in a ``finally``);
* ``MilvusCluster.search`` derived per-node latency from cumulative
  ``busy_seconds`` deltas, which double-counts under concurrent
  searches and silently absorbed lazy index-build time.
"""

import pathlib
import re
import threading

import numpy as np
import pytest

from repro import obs
from repro.client import ClusterClient, RestRouter
from repro.datasets import random_queries, sift_like
from repro.distributed import MilvusCluster, RespawnPolicy
from repro.obs import (
    MetricsRegistry,
    SlowQueryLog,
    Stopwatch,
    Tracer,
)
from repro.storage import (
    FaultPlan,
    FaultyFileSystem,
    InMemoryObjectStore,
)


@pytest.fixture()
def obs_on():
    """A fresh, injected observability handle; always disabled after."""
    handle = obs.enable()
    yield handle
    obs.disable()


@pytest.fixture()
def cluster2():
    data = sift_like(120, dim=8, seed=50)
    queries = random_queries(data, 4, seed=51)
    cluster = MilvusCluster(2, dim=8, index_type="FLAT")
    cluster.insert(np.arange(len(data)), data)
    cluster.sync()
    return cluster, queries


# -- metrics primitives ----------------------------------------------------


class TestMetrics:
    def test_counter_inc_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total").inc()
        reg.counter("reqs_total").inc(2)
        reg.counter("reqs_total", node="a").inc(5)
        assert reg.counter("reqs_total").value == 3
        assert reg.counter("reqs_total", node="a").value == 5
        assert reg.total("reqs_total") == 8

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total").inc(-1)

    def test_gauge_up_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_histogram_quantiles_on_known_data(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for __ in range(50):
            h.observe(0.001)
        for __ in range(45):
            h.observe(0.02)
        for __ in range(5):
            h.observe(0.3)
        assert h.count == 100
        p = h.percentiles()
        assert 0.0005 <= p["p50"] <= 0.0025
        assert 0.01 <= p["p95"] <= 0.025
        assert 0.25 <= p["p99"] <= 0.5

    def test_histogram_bounded_memory(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        for i in range(10000):
            h.observe((i % 7) * 0.001)
        # Fixed buckets: storage never grows with observations.
        assert len(h._bucket_counts) == len(h.boundaries) + 1
        assert h.count == 10000

    def test_histogram_overflow_bucket_returns_max(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds")
        h.observe(42.0)  # beyond the last finite boundary
        assert h.quantile(0.99) == 42.0

    def test_prometheus_render(self):
        reg = MetricsRegistry()
        reg.counter("flushes_total").inc(3)
        reg.histogram("flush_seconds").observe(0.002)
        text = reg.render_prometheus()
        assert "# TYPE flushes_total counter" in text
        assert "flushes_total 3" in text
        assert "# TYPE flush_seconds histogram" in text
        assert 'flush_seconds_bucket{le="+Inf"} 1' in text
        assert "flush_seconds_count 1" in text

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.histogram("b_seconds").observe(0.1)
        snap = reg.snapshot()
        assert snap["a_total"] == 1
        assert snap["b_seconds"]["count"] == 1
        assert "p99" in snap["b_seconds"]


# -- tracing ---------------------------------------------------------------


class TestTracing:
    def test_parent_child_ambient_propagation(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current_span() is outer
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
        tree = tracer.trace_tree(outer.trace_id)
        assert tree["num_spans"] == 2
        assert tree["roots"][0]["name"] == "outer"
        assert tree["roots"][0]["children"][0]["name"] == "inner"

    def test_separate_roots_get_separate_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_deterministic_sequence_ids(self):
        tracer = Tracer()
        with tracer.span("x") as x:
            pass
        assert re.fullmatch(r"t\d{6}", x.trace_id)
        assert re.fullmatch(r"s\d{6}", x.span_id)

    def test_error_recorded_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom") as span:
                raise RuntimeError("nope")
        assert span.attrs["error"] == "RuntimeError"

    def test_trace_store_is_bounded(self):
        tracer = Tracer(max_traces=3, max_spans_per_trace=2)
        ids = []
        for __ in range(5):
            with tracer.span("root") as root:
                ids.append(root.trace_id)
        assert len(tracer.trace_ids()) == 3
        assert tracer.get_trace(ids[0]) is None  # LRU-evicted
        with tracer.span("deep") as deep:
            with tracer.span("c1"):
                with tracer.span("c2"):
                    with tracer.span("c3"):
                        pass
        assert len(tracer.get_trace(deep.trace_id)) == 2
        assert tracer.dropped_spans == 2


# -- slow-query log --------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_gating(self):
        log = SlowQueryLog(threshold_seconds=0.1, capacity=8)
        assert log.observe("q", 0.05) is False
        assert log.observe("q", 0.15, trace_id="t000001", k=5) is True
        assert log.observed == 2 and log.recorded == 1
        (entry,) = log.entries()
        assert entry.trace_id == "t000001"
        assert entry.detail["k"] == 5

    def test_ring_capacity(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=3)
        for i in range(10):
            log.observe(f"q{i}", 1.0)
        names = [e.name for e in log.entries()]
        assert names == ["q7", "q8", "q9"]
        assert log.recorded == 10


# -- switchboard -----------------------------------------------------------


class TestSwitchboard:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        obs.disable()
        handle = obs.get_obs()
        assert handle.registry.snapshot() == {}
        with handle.tracer.span("noop") as span:
            assert span.trace_id is None
        assert handle.slow_query_log.observe("q", 99.0) is False
        assert "disabled" in handle.registry.render_prometheus()

    def test_enable_injects_and_replaces(self):
        reg = MetricsRegistry()
        handle = obs.enable(registry=reg)
        try:
            assert obs.get_obs().registry is reg
            fresh = obs.enable()
            assert obs.get_obs() is fresh
            assert obs.get_obs().registry is not reg
        finally:
            obs.disable()

    def test_env_var_enables(self, monkeypatch):
        obs.disable()
        monkeypatch.setenv("REPRO_OBS", "1")
        try:
            handle = obs.get_obs()
            handle.registry.counter("seen_total").inc()
            assert obs.get_obs().registry.total("seen_total") == 1
        finally:
            obs.disable()

    def test_stopwatch_records_when_enabled(self, obs_on):
        with Stopwatch("sw_seconds") as sw:
            pass
        assert sw.seconds >= 0.0
        assert obs_on.registry.histogram("sw_seconds").count == 1


# -- accounting regressions ------------------------------------------------


class TestAccountingRegressions:
    def test_failed_query_not_counted_as_served(self, cluster2):
        """Satellite 1: a raising search must not bump queries_served.

        Before the fix the accounting sat in a ``finally`` block, so a
        reader whose index read blew up still "served" the batch.
        """
        cluster, queries = cluster2
        victim = cluster.readers["reader-0"]

        class ExplodingIndex:
            def search(self, *args, **kwargs):
                raise IOError("storage read failed")

        victim._index = ExplodingIndex()
        served0 = victim.queries_served
        busy0 = victim.busy_seconds
        res = cluster.search(queries, 5)
        assert res.degraded is True
        assert res.missing_shards == ["reader-0"]
        assert victim.queries_served == served0
        assert victim.busy_seconds == busy0

    def test_successful_query_still_counted(self, cluster2):
        cluster, queries = cluster2
        reader = cluster.readers["reader-1"]
        served0 = reader.queries_served
        cluster.search(queries, 5)
        assert reader.queries_served == served0 + len(queries)

    def test_per_node_latency_not_polluted_by_concurrent_busy_time(
        self, cluster2
    ):
        """Satellite 2: per-node latency is per-call, not a busy delta.

        Simulate a concurrent search charging 100 busy-seconds to a
        reader while our fan-out is in flight: the old
        ``busy_seconds``-delta scheme attributed all of it to this
        query (simulated_parallel_seconds > 100s); span-derived per-call
        timing stays at the real few-milliseconds scale.
        """
        cluster, queries = cluster2
        victim = cluster.readers["reader-0"]
        inner = victim._index

        class BusyChargingIndex:
            def search(self, *args, **kwargs):
                victim.busy_seconds += 100.0  # the "other" query's time
                return inner.search(*args, **kwargs)

        victim._index = BusyChargingIndex()
        res = cluster.search(queries, 5)
        assert res.simulated_parallel_seconds < 50.0
        assert set(res.per_node_seconds) == {"reader-0", "reader-1"}

    def test_lazy_index_build_reported_separately(self, obs_on):
        data = sift_like(80, dim=8, seed=52)
        queries = random_queries(data, 2, seed=53)
        cluster = MilvusCluster(2, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync(build_indexes=False)  # force lazy builds at query time
        res = cluster.search(queries, 5)
        assert res.index_build_seconds > 0.0
        assert obs_on.registry.total("reader_lazy_index_builds_total") == 2
        # Build time is its own metric, not per-node search latency.
        assert res.simulated_parallel_seconds < res.wall_seconds + 1.0


# -- end-to-end trace chain ------------------------------------------------


class TestTraceChain:
    def test_cluster_search_produces_full_trace_tree(self, obs_on, cluster2):
        """Acceptance: one SDK search yields client -> cluster ->
        every reader -> index search, retrievable by trace id."""
        cluster, queries = cluster2
        client = ClusterClient(cluster)
        res = client.search(queries, 5)
        assert res.trace_id is not None
        tree = obs_on.tracer.trace_tree(res.trace_id)
        assert tree is not None
        root = tree["roots"][0]
        assert root["name"] == "client.search"
        (cluster_span,) = root["children"]
        assert cluster_span["name"] == "cluster.search"

        # With REPRO_PARALLEL=1 each reader call is wrapped in an
        # "exec.task" span, so search the whole subtree rather than
        # only direct children.
        def collect(span, name):
            found = [c for c in span["children"] if c["name"] == name]
            for child in span["children"]:
                found.extend(collect(child, name))
            return found

        reader_spans = collect(cluster_span, "reader.search")
        assert {s["attrs"]["node"] for s in reader_spans} == {
            "reader-0", "reader-1",
        }
        for reader_span in reader_spans:
            names = [c["name"] for c in reader_span["children"]]
            assert "index.search" in names

    def test_single_node_chain_reaches_storage(self, obs_on):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "t", "vector_fields": [{"name": "emb", "dim": 8}],
        })
        data = sift_like(60, dim=8, seed=54)
        router.handle("POST", "/collections/t/entities", {
            "data": {"emb": data.tolist()},
        })
        router.handle("POST", "/flush", {})
        resp = router.handle("POST", "/collections/t/search", {
            "field": "emb", "queries": data[:2].tolist(), "k": 3,
        })
        assert resp.ok
        trace_id = obs_on.tracer.trace_ids()[-1]
        spans = obs_on.tracer.get_trace(trace_id)
        names = {s.name for s in spans}
        assert {"rest.request", "sdk.search", "collection.search",
                "lsm.search", "segment.search"} <= names


# -- engine metrics --------------------------------------------------------


class TestEngineMetrics:
    def test_search_metrics_exposed_via_rest(self, obs_on):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "m", "vector_fields": [{"name": "emb", "dim": 8}],
        })
        data = sift_like(60, dim=8, seed=55)
        router.handle("POST", "/collections/m/entities", {
            "data": {"emb": data.tolist()},
        })
        router.handle("POST", "/flush", {})
        router.handle("POST", "/collections/m/search", {
            "field": "emb", "queries": data[:2].tolist(), "k": 3,
        })
        resp = router.handle("GET", "/metrics")
        assert resp.ok
        text = resp.body["text"]
        for metric in (
            "lsm_insert_rows_total", "wal_appends_total", "lsm_flushes_total",
            "lsm_searches_total", "bufferpool_hits_total",
            "collection_search_seconds", "rest_requests_total",
        ):
            assert metric in text, metric

    def test_trace_endpoints(self, obs_on, cluster2):
        cluster, queries = cluster2
        res = cluster.search(queries, 3)
        router = RestRouter()
        listing = router.handle("GET", "/traces")
        assert res.trace_id in listing.body["trace_ids"]
        tree = router.handle("GET", f"/traces/{res.trace_id}")
        assert tree.ok and tree.body["trace_id"] == res.trace_id
        assert router.handle("GET", "/traces/t999999").status == 404

    def test_retry_metrics(self, obs_on):
        from repro.utils.retry import RetryExhaustedError, RetryPolicy

        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None, seed=1)
        with pytest.raises(RetryExhaustedError):
            policy.call(self._always_fails)
        assert obs_on.registry.total("retry_retries_total") == 2
        assert obs_on.registry.total("retry_exhausted_total") == 1

    @staticmethod
    def _always_fails():
        raise IOError("flaky")

    def test_cache_miss_counted_after_eviction(self, obs_on):
        from repro.storage import LSMConfig, LSMManager, TieredMergePolicy

        lsm = LSMManager(
            {"emb": (8, "l2")},
            config=LSMConfig(
                memtable_flush_bytes=1 << 30,
                index_build_min_rows=1 << 30,
                auto_merge=False,
                bufferpool_bytes=1,  # every segment overflows: instant evict
            ),
        )
        rng = np.random.default_rng(56)
        for start in (0, 40):
            lsm.insert(
                np.arange(start, start + 40),
                {"emb": rng.normal(size=(40, 8)).astype(np.float32)},
            )
            lsm.flush()
        lsm.search("emb", rng.normal(size=(1, 8)).astype(np.float32), 3)
        assert obs_on.registry.total("bufferpool_misses_total") >= 1
        assert obs_on.registry.total("bufferpool_evictions_total") >= 1


# -- chaos + observability -------------------------------------------------


class TestChaosObservability:
    def test_degraded_search_and_respawn_counters(self, obs_on):
        data = sift_like(100, dim=8, seed=57)
        queries = random_queries(data, 3, seed=58)
        cluster = MilvusCluster(
            3, dim=8, index_type="FLAT",
            respawn_policy=RespawnPolicy(auto=True, max_respawns_per_node=1),
        )
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        cluster.crash_reader("reader-1")
        cluster.search(queries, 5)  # respawned under the cap
        assert obs_on.registry.total("cluster_respawns_total") == 1
        cluster.crash_reader("reader-1")
        res = cluster.search(queries, 5)  # over the cap: degrades
        assert res.degraded
        assert obs_on.registry.total("cluster_degraded_searches_total") == 1
        assert obs_on.registry.total("cluster_missing_shards_total") == 1

    def test_slow_query_log_captures_injected_latency(self, obs_on):
        """FaultPlan latency is accounted, not slept — the slow log
        folds the injected delta into the reported latency, so chaos
        tests assert slow-path capture without slow tests."""
        obs.enable(slow_query_log=SlowQueryLog(threshold_seconds=0.5))
        handle = obs.get_obs()
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=59)
        shared = FaultyFileSystem(inner, plan)
        cluster = MilvusCluster(2, dim=8, index_type="FLAT", shared=shared)
        data = sift_like(80, dim=8, seed=60)
        queries = random_queries(data, 2, seed=61)
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        # Delay the *next* shard-log read: a late insert leaves pending
        # logs, and auto_refresh consumes them inside this one query's
        # timed window.
        plan.latency("shardlog/*", op="read", seconds=2.0, times=1)
        extra = sift_like(20, dim=8, seed=64)
        cluster.insert(np.arange(len(data), len(data) + 20), extra)
        cluster.search(queries, 5, auto_refresh=True)
        slow = handle.slow_query_log.entries()
        assert len(slow) == 1
        assert slow[0].name == "cluster.search"
        assert slow[0].seconds >= 2.0
        assert slow[0].trace_id is not None


# -- hygiene ---------------------------------------------------------------


class TestTimeHygiene:
    def test_no_wall_clock_durations_in_src(self):
        """Durations must use time.perf_counter(); time.time() steps
        with wall-clock adjustments and is banned from src/repro."""
        root = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(root.rglob("*.py")):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if "time.time()" in line and not line.lstrip().startswith("#"):
                    # Allow mentions inside docstrings that ban it.
                    if "never" in line or "banned" in line:
                        continue
                    offenders.append(f"{path.name}:{lineno}")
        assert offenders == []

    def test_threaded_search_with_obs_enabled_is_clean(self, obs_on):
        """Instruments under engine locks: no sanitizer violations."""
        from repro.utils import sanitizer as san

        tsan = san.enable()
        tsan.reset()
        try:
            data = sift_like(100, dim=8, seed=62)
            queries = random_queries(data, 3, seed=63)
            cluster = MilvusCluster(2, dim=8, index_type="FLAT")
            cluster.insert(np.arange(len(data)), data)
            cluster.sync()

            errors = []

            def worker():
                try:
                    for __ in range(5):
                        cluster.search(queries, 5)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for __ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            report = tsan.report()
            assert report["lock_order_violations"] == []
            assert report["unguarded_mutations"] == []
        finally:
            san.disable()
