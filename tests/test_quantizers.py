"""Scalar and product quantizer codecs: reconstruction guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.index import ProductQuantizer, ScalarQuantizer


def _matrices(rows, cols, lo=-50.0, hi=50.0):
    return hnp.arrays(
        np.float32, (rows, cols),
        elements=st.floats(lo, hi, width=32, allow_nan=False),
    )


class TestScalarQuantizer:
    def test_roundtrip_error_bounded(self, rng):
        data = rng.normal(size=(200, 16)).astype(np.float32)
        sq = ScalarQuantizer().train(data)
        decoded = sq.decode(sq.encode(data))
        bound = sq.max_abs_error() + 1e-5
        assert (np.abs(decoded - data) <= bound[np.newaxis, :]).all()

    def test_constant_dimension_exact(self):
        data = np.ones((10, 4), dtype=np.float32) * 7.0
        sq = ScalarQuantizer().train(data)
        np.testing.assert_allclose(sq.decode(sq.encode(data)), data)

    def test_out_of_range_clipped(self):
        data = np.linspace(0, 1, 32, dtype=np.float32).reshape(-1, 1)
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(np.array([[100.0]], dtype=np.float32))
        assert codes[0, 0] == 255
        codes = sq.encode(np.array([[-100.0]], dtype=np.float32))
        assert codes[0, 0] == 0

    def test_untrained_raises(self):
        sq = ScalarQuantizer()
        with pytest.raises(RuntimeError):
            sq.encode(np.zeros((1, 2), dtype=np.float32))
        with pytest.raises(RuntimeError):
            sq.decode(np.zeros((1, 2), dtype=np.uint8))

    @given(_matrices(30, 6))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, data):
        sq = ScalarQuantizer().train(data)
        decoded = sq.decode(sq.encode(data))
        bound = sq.max_abs_error() + 1e-3
        assert (np.abs(decoded - data) <= bound[np.newaxis, :] + 1e-3).all()


class TestProductQuantizer:
    def test_codes_shape_and_dtype(self, rng):
        data = rng.normal(size=(300, 16)).astype(np.float32)
        pq = ProductQuantizer(16, m=4, nbits=4, seed=0).train(data)
        codes = pq.encode(data)
        assert codes.shape == (300, 4)
        assert codes.dtype == np.uint8
        assert codes.max() < 16

    def test_reconstruction_beats_mean(self, rng):
        data = rng.normal(size=(400, 16)).astype(np.float32)
        pq = ProductQuantizer(16, m=4, nbits=6, seed=0).train(data)
        decoded = pq.decode(pq.encode(data))
        pq_err = ((decoded - data) ** 2).sum()
        mean_err = ((data - data.mean(axis=0)) ** 2).sum()
        assert pq_err < mean_err

    def test_more_bits_better_reconstruction(self, rng):
        data = rng.normal(size=(400, 8)).astype(np.float32)
        errors = []
        for nbits in (2, 4, 6):
            pq = ProductQuantizer(8, m=2, nbits=nbits, seed=0).train(data)
            decoded = pq.decode(pq.encode(data))
            errors.append(float(((decoded - data) ** 2).sum()))
        assert errors[0] > errors[1] > errors[2]

    def test_adc_matches_decoded_l2(self, rng):
        data = rng.normal(size=(300, 8)).astype(np.float32)
        queries = rng.normal(size=(5, 8)).astype(np.float32)
        pq = ProductQuantizer(8, m=2, nbits=5, seed=0).train(data)
        codes = pq.encode(data)
        tables = pq.build_tables(queries, "l2")
        adc = ProductQuantizer.adc_scan(tables, codes)
        decoded = pq.decode(codes)
        exact = ((queries[:, None, :] - decoded[None]) ** 2).sum(axis=2)
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_adc_matches_decoded_ip(self, rng):
        data = rng.normal(size=(300, 8)).astype(np.float32)
        queries = rng.normal(size=(4, 8)).astype(np.float32)
        pq = ProductQuantizer(8, m=4, nbits=5, seed=0).train(data)
        codes = pq.encode(data)
        adc = ProductQuantizer.adc_scan(pq.build_tables(queries, "ip"), codes)
        exact = queries @ pq.decode(codes).T
        np.testing.assert_allclose(adc, exact, rtol=1e-3, atol=1e-2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProductQuantizer(10, m=4)  # indivisible
        with pytest.raises(ValueError):
            ProductQuantizer(8, m=2, nbits=9)
        with pytest.raises(ValueError):
            ProductQuantizer(8, m=2, nbits=8).train(np.zeros((10, 8), dtype=np.float32))

    def test_untrained_raises(self):
        pq = ProductQuantizer(8, m=2)
        with pytest.raises(RuntimeError):
            pq.encode(np.zeros((1, 8), dtype=np.float32))
