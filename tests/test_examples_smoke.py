"""Smoke tests: the fast examples must run end to end.

Only the quick ones run here (the full set is exercised manually /
in EXPERIMENTS.md); each must exit cleanly and print its key lines.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamplesSmoke:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "inserted 5000 entities" in out
        assert "top-5 neighbours" in out
        assert "after deleting" in out

    def test_recipe_multivector(self):
        out = run_example("recipe_multivector.py")
        assert "fusion" in out and "(5/5 match exact)" in out

    def test_multi_factor_auth(self):
        out = run_example("multi_factor_auth.py")
        assert "ACCEPT" in out and "REJECT" in out
