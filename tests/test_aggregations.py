"""Monotone aggregations beyond weighted sum (paper Sec. 4.2: weighted
sum, average/median, and min/max are all monotone and supported)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datasets import recipe_like
from repro.multivector import IterativeMerging, RankedList, nra_determined_topk
from repro.multivector.nra import AGGREGATIONS, resolve_aggregation


@pytest.fixture(scope="module")
def entities():
    return recipe_like(800, text_dim=16, image_dim=12, correlation=0.6, seed=0)


def brute_force(entities, q, k, agg_name):
    """Exact top-k under the keyed aggregation (distances negated)."""
    keyed = np.stack([
        -((entities["text"] - q["text"]) ** 2).sum(axis=1),
        -((entities["image"] - q["image"]) ** 2).sum(axis=1),
    ])
    g = AGGREGATIONS[agg_name]
    totals = np.array([g(keyed[:, i]) for i in range(keyed.shape[1])])
    return np.argsort(-totals, kind="stable")[:k]


class TestResolve:
    def test_names(self):
        for name in ("sum", "avg", "min", "max"):
            assert callable(resolve_aggregation(name))

    def test_callable_passthrough(self):
        fn = lambda v: float(np.sum(v))
        assert resolve_aggregation(fn) is fn

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            resolve_aggregation("median-ish")


class TestNRAWithAggregations:
    @pytest.mark.parametrize("agg", ["sum", "avg", "min", "max"])
    def test_complete_lists_match_brute_force(self, agg):
        rng = np.random.default_rng(3)
        s1, s2 = rng.normal(size=10), rng.normal(size=10)
        lists = [
            RankedList.from_metric_scores(np.arange(10), s1, True),
            RankedList.from_metric_scores(np.arange(10), s2, True),
        ]
        top = nra_determined_topk(lists, 3, agg=agg)
        assert top is not None
        g = AGGREGATIONS[agg]
        totals = np.array([g(np.array([s1[i], s2[i]])) for i in range(10)])
        expected = np.argsort(-totals, kind="stable")[:3]
        got_scores = sorted(s for __, s in top)
        np.testing.assert_allclose(got_scores, sorted(totals[expected]), atol=1e-12)

    @given(st.sampled_from(["sum", "avg", "min", "max"]), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_determined_is_always_exact(self, agg, seed):
        rng = np.random.default_rng(seed)
        mu, n = 3, 15
        scores = rng.normal(size=(mu, n))
        depth = int(rng.integers(3, n + 1))
        lists = []
        for f in range(mu):
            order = np.argsort(-scores[f], kind="stable")[:depth]
            lists.append(RankedList(order, scores[f][order]))
        top = nra_determined_topk(lists, 3, agg=agg)
        if top is not None:
            g = AGGREGATIONS[agg]
            totals = np.array([g(scores[:, i]) for i in range(n)])
            expected = sorted(np.sort(totals)[-3:])
            np.testing.assert_allclose(sorted(s for __, s in top), expected, atol=1e-9)


class TestIterativeMergingAggregations:
    @pytest.mark.parametrize("agg", ["min", "max", "avg"])
    def test_matches_brute_force(self, entities, agg):
        merger = IterativeMerging.over_arrays(
            entities, metric="l2", index_type="FLAT",
            k_threshold=2048, aggregation=agg,
        )
        q = {"text": entities["text"][5], "image": entities["image"][5]}
        hits = merger.search_one(q, 5)
        expected = set(brute_force(entities, q, 5, agg).tolist())
        assert {i for i, __ in hits} == expected

    def test_collection_api_aggregation(self, entities):
        from repro.core import Collection, CollectionSchema, VectorField
        from repro.storage import LSMConfig, TieredMergePolicy

        schema = CollectionSchema(
            "agg",
            vector_fields=[VectorField("text", 16), VectorField("image", 12)],
        )
        cfg = LSMConfig(
            memtable_flush_bytes=1 << 30, index_build_min_rows=1 << 30,
            merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        )
        coll = Collection(schema, lsm_config=cfg)
        coll.insert({"text": entities["text"], "image": entities["image"]})
        coll.flush()
        q = {"text": entities["text"][3], "image": entities["image"][3]}
        hits = coll.multi_vector_search(q, 5, aggregation="min")
        expected = set(brute_force(entities, q, 5, "min").tolist())
        assert {i for i, __ in hits[0]} == expected
        # Fusion refuses non-sum aggregations explicitly.
        with pytest.raises(ValueError):
            coll.multi_vector_search(q, 5, method="fusion", aggregation="min")

    def test_min_aggregation_is_and_matching(self, entities):
        """'min' over keyed scores = rank by the *worst* factor: an
        entity close in text but far in image ranks poorly — the
        multi-factor authentication semantics."""
        merger = IterativeMerging.over_arrays(
            entities, metric="l2", index_type="FLAT",
            k_threshold=2048, aggregation="min",
        )
        q = {"text": entities["text"][9], "image": entities["image"][9]}
        hits = merger.search_one(q, 1)
        assert hits[0][0] == 9  # the entity itself is perfect on both
