"""Top-k heaps and merging — the primitives every search path rests on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import get_metric
from repro.utils import TopKHeap, merge_result_lists, merge_topk, topk_from_scores


class TestTopKHeap:
    def test_keeps_k_smallest_distances(self):
        heap = TopKHeap(3, higher_is_better=False)
        for i, score in enumerate([5.0, 1.0, 4.0, 2.0, 3.0]):
            heap.push(i, score)
        assert [i for i, __ in heap.items()] == [1, 3, 4]

    def test_keeps_k_largest_similarities(self):
        heap = TopKHeap(2, higher_is_better=True)
        heap.push_many([0, 1, 2], [0.1, 0.9, 0.5])
        assert [i for i, __ in heap.items()] == [1, 2]

    def test_worst_score_tracks_root(self):
        heap = TopKHeap(2, higher_is_better=False)
        assert heap.worst_score() == np.inf
        heap.push(0, 3.0)
        heap.push(1, 1.0)
        assert heap.worst_score() == 3.0
        heap.push(2, 2.0)
        assert heap.worst_score() == 2.0

    def test_push_returns_retained(self):
        heap = TopKHeap(1, higher_is_better=False)
        assert heap.push(0, 5.0)
        assert not heap.push(1, 9.0)
        assert heap.push(2, 1.0)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    @given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=50),
           st.integers(1, 10))
    @settings(max_examples=50, deadline=None)
    def test_matches_sorted_prefix(self, scores, k):
        heap = TopKHeap(k, higher_is_better=False)
        heap.push_many(range(len(scores)), scores)
        got = [s for __, s in heap.items()]
        expected = sorted(scores)[:k]
        assert got == pytest.approx(expected)


class TestTopkFromScores:
    def test_basic(self):
        ids, scores = topk_from_scores(np.array([3.0, 1.0, 2.0]), 2)
        assert ids.tolist() == [1, 2]
        assert scores.tolist() == [1.0, 2.0]

    def test_higher_is_better(self):
        ids, __ = topk_from_scores(np.array([3.0, 1.0, 2.0]), 2, higher_is_better=True)
        assert ids.tolist() == [0, 2]

    def test_k_larger_than_n(self):
        ids, __ = topk_from_scores(np.array([2.0, 1.0]), 10)
        assert ids.tolist() == [1, 0]

    def test_custom_ids(self):
        ids, __ = topk_from_scores(
            np.array([3.0, 1.0]), 1, ids=np.array([100, 200])
        )
        assert ids.tolist() == [200]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            topk_from_scores(np.zeros((2, 2)), 1)

    @given(st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=80),
           st.integers(1, 15))
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_argsort(self, scores, k):
        arr = np.array(scores)
        ids, top = topk_from_scores(arr, k)
        expected = np.sort(arr)[: min(k, len(arr))]
        np.testing.assert_allclose(np.sort(top), expected)


class TestMergeTopk:
    def test_merges_partials(self):
        parts = [
            (np.array([0, 1]), np.array([5.0, 1.0])),
            (np.array([2, 3]), np.array([3.0, 0.5])),
        ]
        ids, scores = merge_topk(parts, 3)
        assert ids.tolist() == [3, 1, 2]

    def test_empty_parts(self):
        ids, scores = merge_topk([], 5)
        assert len(ids) == 0

    def test_merge_result_lists(self):
        metric = get_metric("l2")
        merged = merge_result_lists(
            [[(0, 2.0), (1, 5.0)], [(2, 1.0)]], 2, metric
        )
        assert [i for i, __ in merged] == [2, 0]
