"""The extensibility story end to end: custom metrics and indexes
plugged in by a downstream user (the paper's 'standard platform for
vector data management with versatile indexes' ambition)."""

import numpy as np
import pytest

from repro.index import FlatIndex
from repro.metrics import Metric, available_metrics, get_metric, register_metric
from repro.metrics.registry import _REGISTRY


class ManhattanMetric(Metric):
    """L1 distance — a metric this library does not ship."""

    name = "test_l1"
    higher_is_better = False

    def pairwise(self, queries, data):
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        return np.abs(queries[:, None, :] - data[None, :, :]).sum(axis=2)


@pytest.fixture()
def l1_registered():
    register_metric(ManhattanMetric())
    yield
    del _REGISTRY["test_l1"]


class TestCustomMetric:
    def test_resolves_by_name(self, l1_registered):
        assert get_metric("test_l1").name == "test_l1"
        assert "test_l1" in available_metrics()

    def test_flat_index_searches_with_it(self, l1_registered, rng):
        data = rng.normal(size=(100, 5)).astype(np.float32)
        index = FlatIndex(5, metric="test_l1")
        index.add(data)
        result = index.search(data[7], 3)
        assert result.ids[0, 0] == 7
        # Scores really are L1, not L2.
        expected = np.abs(data - data[7]).sum(axis=1)
        assert result.scores[0, 0] == pytest.approx(0.0, abs=1e-5)
        assert result.scores[0, 1] == pytest.approx(np.sort(expected)[1], rel=1e-4)

    def test_duplicate_registration_rejected(self, l1_registered):
        with pytest.raises(ValueError):
            register_metric(ManhattanMetric())

    def test_overwrite_allowed_explicitly(self, l1_registered):
        register_metric(ManhattanMetric(), overwrite=True)

    def test_unnamed_metric_rejected(self):
        class Nameless(Metric):
            name = ""

            def pairwise(self, queries, data):  # pragma: no cover
                return np.zeros((1, 1))

        with pytest.raises(ValueError):
            register_metric(Nameless())

    def test_unknown_metric_lookup(self):
        with pytest.raises(KeyError):
            get_metric("definitely_not_registered")

    def test_aliases(self):
        assert get_metric("euclidean").name == "l2"
        assert get_metric("dot").name == "ip"
        assert get_metric("COS").name == "cosine"
