"""Feedback-calibrated planner + in-traversal filtered search (ISSUE 8).

Covers the tentpole (CalibratedCostModel / AdaptivePlanner / in-traversal
``row_filter``) and the three satellite bugfix regressions:

* indexes that cannot honour ``row_filter`` must raise
  :class:`UnsupportedSearchParamError`, never silently ignore it;
* ``strategy_c`` counts ``candidates_pruned`` only for the final
  widening round (each round re-fetches a superset of the last);
* ``_scanned_fraction`` is bucket-size weighted, not ``nprobe/nlist``.
"""

import numpy as np
import pytest

from repro.core import (
    AttributeField,
    Collection,
    CollectionSchema,
    UnsupportedSearchParamError,
    VectorField,
)
from repro.datasets import random_queries, sift_like
from repro.filtering import (
    AttributeFilterEngine,
    AdaptivePlanner,
    CalibratedCostModel,
    weighted_scanned_fraction,
)
from repro.index import create_index
from repro.obs.profile import measurement_stage
from repro.storage import InMemoryObjectStore
from repro.storage.lsm import LSMConfig
from repro.utils import EwmaCalibrator


# -- satellite 1: row_filter contract across index types --------------------

DENSE_TYPES = {
    "FLAT": {},
    "IVF_FLAT": {"nlist": 8},
    "IVF_SQ8": {"nlist": 8},
    "IVF_PQ": {"nlist": 8, "m": 4},
    "HNSW": {"M": 8},
    "NSG": {"knn": 16, "out_degree": 12},
    "ANNOY": {"n_trees": 8},
}


@pytest.fixture(scope="module")
def contract_data():
    data = sift_like(300, dim=16, n_clusters=6, seed=4)
    queries = random_queries(data, 4, seed=5)
    return data, queries


class TestRowFilterContract:
    @pytest.mark.parametrize("index_type", sorted(DENSE_TYPES))
    def test_dense_indexes_honour_row_filter(self, index_type, contract_data):
        data, queries = contract_data
        index = create_index(index_type, 16, metric="l2", **DENSE_TYPES[index_type])
        index.train(data)
        index.add(data)
        allowed = np.arange(0, 300, 2, dtype=np.int64)  # even ids only
        result = index.search(queries, 5, row_filter=allowed)
        hits = result.ids[result.ids >= 0]
        assert len(hits) > 0
        assert (hits % 2 == 0).all(), f"{index_type} leaked filtered-out rows"

    @pytest.mark.parametrize("index_type", sorted(DENSE_TYPES))
    def test_supports_search_param(self, index_type):
        cls = type(create_index(index_type, 16, **DENSE_TYPES[index_type]))
        assert cls.supports_search_param("row_filter")

    def test_binary_flat_rejects_loudly(self):
        rng = np.random.default_rng(0)
        index = create_index("BIN_FLAT", 64, metric="hamming")
        index.add(rng.integers(0, 256, size=(50, 8), dtype=np.uint8))
        query = rng.integers(0, 256, size=(1, 8), dtype=np.uint8)
        with pytest.raises(UnsupportedSearchParamError):
            index.search(query, 5, row_filter=np.array([1, 2, 3]))
        assert not type(index).supports_search_param("row_filter")

    def test_unsupported_error_is_a_typeerror(self):
        # Segment._search_with_index falls back to brute force on
        # TypeError; the loud rejection must keep riding that path.
        assert issubclass(UnsupportedSearchParamError, TypeError)

    def test_in_traversal_filtered_graph_recall(self, contract_data):
        data, queries = contract_data
        index = create_index("HNSW", 16, metric="l2", M=12, ef_construction=80, seed=0)
        index.add(data)
        allowed = np.flatnonzero(np.arange(300) % 10 == 0).astype(np.int64)
        result = index.search(queries, 5, ef=80, row_filter=allowed)
        # exact answer over the admissible subset
        d = ((data[allowed][None, :, :] - queries[:, None, :]) ** 2).sum(-1)
        exact = allowed[np.argsort(d, axis=1, kind="stable")[:, :5]]
        hit = sum(
            len(set(row[row >= 0].tolist()) & set(truth.tolist()))
            for row, truth in zip(result.ids, exact)
        )
        assert hit / exact.size >= 0.9  # 10% selectivity, in-traversal


# -- satellite 2: strategy_c prune counting ---------------------------------


class TestStrategyCPruneCount:
    def test_counts_only_final_round(self):
        # Distances from the query grow with row id, so round one
        # fetches rows 0..9 and the (forced) second round rows 0..19.
        n, k = 100, 5
        vectors = np.arange(n, dtype=np.float32).reshape(-1, 1)
        passing = np.zeros(n, dtype=bool)
        passing[[0, 5, 11, 13, 15, 17, 19]] = True
        passing[20:63] = True  # 50 passing rows total -> selectivity 0.5
        attrs = np.where(passing, 0.0, 1000.0)
        index = create_index("FLAT", 1, metric="l2")
        index.add(vectors)
        engine = AttributeFilterEngine(
            vectors, attrs, metric="l2", index=index, theta=1.0
        )
        query = np.zeros(1, dtype=np.float32)
        with measurement_stage("test.strategy_c") as stage:
            result = engine.strategy_c(query, -0.5, 0.5, k)
        counters = stage.total_counters()
        # round 1 fetches 10 rows (theta*k/p = 5/0.5), 2 pass -> widen;
        # round 2 fetches 20 rows, 7 pass, 13 pruned.  The old code
        # summed both rounds (8 + 13 = 21), double-billing the 8
        # carried-over rows.
        assert counters["candidates_pruned"] == 13
        assert result.ids.tolist() == [0, 5, 11, 13, 15]


# -- satellite 3: bucket-size weighted scanned fraction ----------------------


class TestWeightedScannedFraction:
    def test_balanced_buckets_match_unweighted(self):
        sizes = np.full(16, 100)
        assert weighted_scanned_fraction(4, sizes, 16) == pytest.approx(4 / 16)

    def test_skew_raises_fraction(self):
        # one hot bucket holds half the rows: probing it costs far more
        # than 1/nlist of the data.
        sizes = np.array([800] + [50] * 15 + [0] * 0)
        skewed = weighted_scanned_fraction(1, sizes, 16)
        assert skewed > 1 / 16
        expected = (sizes.astype(float) ** 2).sum() / sizes.sum() ** 2
        assert skewed == pytest.approx(expected)

    def test_clamped_to_one(self):
        assert weighted_scanned_fraction(1000, np.array([10, 10]), 2) == 1.0

    def test_missing_sizes_falls_back_to_unweighted(self):
        assert weighted_scanned_fraction(4, None, 16) == pytest.approx(4 / 16)
        assert weighted_scanned_fraction(4, None, None) == 1.0

    def test_engine_uses_real_bucket_sizes(self):
        data = sift_like(1000, dim=8, n_clusters=4, seed=9)
        rng = np.random.default_rng(3)
        engine = AttributeFilterEngine(
            data, rng.uniform(0, 1, 1000), metric="l2", nlist=8, seed=0
        )
        sizes = engine.index.bucket_sizes()
        assert engine._scanned_fraction(2) == pytest.approx(
            weighted_scanned_fraction(2, sizes, 8)
        )
        # clustered data -> uneven buckets -> differs from nprobe/nlist
        if len(np.unique(sizes)) > 1:
            assert engine._scanned_fraction(2) != pytest.approx(2 / 8)


# -- tentpole: calibration math ----------------------------------------------


class TestCalibration:
    def test_ewma_converges_to_ratio(self):
        cal = EwmaCalibrator(alpha=0.5, window=4)
        for __ in range(20):
            cal.observe("x", predicted=10.0, measured=30.0)
        assert cal.coefficient("x") == pytest.approx(3.0, rel=1e-3)
        assert cal.correct("x", 10.0) == pytest.approx(30.0, rel=1e-3)
        assert cal.is_calibrated("x")

    def test_ratio_clamped(self):
        cal = EwmaCalibrator()
        for __ in range(50):
            cal.observe("x", predicted=1.0, measured=1e9)
        assert cal.coefficient("x") <= 20.0

    def test_round_trip(self):
        cal = EwmaCalibrator(alpha=0.25)
        cal.observe("a", 1.0, 2.0)
        cal.observe("b", 4.0, 1.0)
        clone = EwmaCalibrator.from_dict(cal.to_dict())
        assert clone.to_dict() == cal.to_dict()

    def test_calibrated_model_shifts_estimates(self):
        model = CalibratedCostModel()
        raw = model.raw_estimate(10_000, 0.5, 10, 0.1)
        # report B consistently costing 5x its model
        for __ in range(10):
            model.observe(
                "B",
                raw.b,
                {"distance_evals": raw.b * 5, "rows_scanned": 0},
            )
        corrected = model.estimate(10_000, 0.5, 10, 0.1)
        assert corrected.b > raw.b * 3
        assert corrected.a == pytest.approx(raw.a)  # untouched strategy

    def test_infinite_cost_passes_through(self):
        model = CalibratedCostModel()
        costs = model.estimate(10_000, 0.0001, 50, 0.1)
        assert costs.c == float("inf")


# -- tentpole: adaptive collection behaviour ---------------------------------


def _adaptive_collection(fs=None, seed=123, nlist=8):
    schema = CollectionSchema(
        "adaptive",
        vector_fields=[VectorField("emb", 16, "l2")],
        attribute_fields=[AttributeField("price")],
    )
    coll = Collection(
        schema,
        lsm_config=LSMConfig(
            background=False, index_build_min_rows=0,
            index_type="IVF_FLAT", index_params={"nlist": nlist},
        ),
        fs=fs,
        adaptive=True,
    )
    rng = np.random.default_rng(seed)
    data = sift_like(600, dim=16, n_clusters=8, seed=seed)
    coll.insert({"emb": data, "price": rng.uniform(0, 100, 600)})
    coll.flush()
    return coll, data


class TestAdaptiveCollection:
    def test_two_seeded_runs_identical(self):
        plans = []
        for __ in range(2):
            coll, data = _adaptive_collection()
            queries = random_queries(data, 6, seed=77)
            ids = []
            for q in queries:
                r = coll.search("emb", q, 5, filter=("price", 10.0, 60.0))
                ids.append(r.ids.tolist())
            plans.append((ids, coll.planner.to_dict()))
        assert plans[0][0] == plans[1][0]
        assert plans[0][1] == plans[1][1]

    def test_serial_pooled_bit_identical_with_feedback(self):
        coll, data = _adaptive_collection(seed=31)
        queries = random_queries(data, 8, seed=13)
        # warm the calibrator first so both runs see identical state
        coll.search("emb", queries, 5, filter=("price", 20.0, 80.0))
        serial = coll.search(
            "emb", queries, 5, filter=("price", 20.0, 80.0), parallel=False
        )
        pooled = coll.search(
            "emb", queries, 5, filter=("price", 20.0, 80.0),
            parallel=True, pool_size=4,
        )
        assert np.array_equal(serial.ids, pooled.ids)
        assert np.array_equal(serial.scores, pooled.scores)

    def test_filtered_results_never_leak(self):
        coll, data = _adaptive_collection(seed=8)
        queries = random_queries(data, 5, seed=9)
        result = coll.search("emb", queries, 5, filter=("price", 25.0, 75.0))
        snap = coll._lsm.snapshot()
        try:
            admissible = set(coll._filter_rows(("price", 25.0, 75.0), snap).tolist())
        finally:
            coll._lsm.release(snap)
        hits = result.ids[result.ids >= 0]
        assert set(hits.tolist()) <= admissible

    def test_planner_state_survives_recover(self):
        fs = InMemoryObjectStore()
        coll, data = _adaptive_collection(fs=fs)
        queries = random_queries(data, 6, seed=21)
        for q in queries:
            coll.search("emb", q, 5, filter=("price", 10.0, 70.0))
        coll.flush()  # persists planner state into the manifest
        state = coll.planner.to_dict()
        assert state["model"]["calibration"]["coef"]  # calibration happened

        schema = coll.schema
        reopened = Collection(
            schema, lsm_config=LSMConfig(background=False), fs=fs, adaptive=True
        )
        reopened._lsm.recover()
        assert reopened.planner.to_dict() == state

    def test_explain_estimates_converge(self):
        coll, data = _adaptive_collection(seed=55)
        queries = random_queries(data, 4, seed=56)
        for __ in range(4):  # calibration window
            coll.search("emb", queries, 5, filter=("price", 15.0, 85.0))
        explained = coll.search(
            "emb", queries, 5, filter=("price", 15.0, 85.0), explain=True
        )
        section = explained.plan["filter"]
        assert section["adaptive"] is True
        assert section["executed"] in ("A", "B", "C")
        comparison = explained.estimated_vs_actual()
        assert comparison  # at least one calibrated counter
        for entry in comparison.values():
            assert entry["relative_error"] <= 0.2


class TestHeteroCalibration:
    def test_sq8h_static_threshold_preserved(self):
        from repro.hetero.sq8h import SQ8HExecutor

        ex = SQ8HExecutor()
        assert ex.model_plan(100, 1_000_000, 128, 1024).mode == "hybrid"
        assert ex.model_plan(2000, 1_000_000, 128, 1024).mode == "gpu"

    def test_sq8h_calibrated_mode_migrates(self):
        from repro.hetero.sq8h import SQ8HExecutor

        ex = SQ8HExecutor(calibrator=EwmaCalibrator())
        m, n, dim, nlist = 2000, 1_000_000, 128, 1024
        assert ex.model_plan(m, n, dim, nlist).mode == "gpu"
        # this machine's PCIe is secretly 100x slower than modeled
        for __ in range(10):
            plan = ex._model_gpu_plan(m, n, dim, nlist)
            ex.observe_execution(plan, plan.total_seconds * 100)
        assert ex.model_plan(m, n, dim, nlist).mode == "hybrid"

    def test_scheduler_steers_away_from_slow_device(self):
        from repro.hetero.gpu import GPUDevice
        from repro.hetero.scheduler import SearchTask, SegmentScheduler

        sched = SegmentScheduler(
            [GPUDevice(device_id=0), GPUDevice(device_id=1)],
            calibrator=EwmaCalibrator(),
        )
        for i in range(6):
            task = SearchTask(segment_id=i, nbytes=1 << 20, m=10, n=100_000, dim=128)
            asg = sched.dispatch(task)
            slow = 10.0 if asg.device_id == 0 else 1.0
            sched.observe_execution(asg, (asg.end_seconds - asg.start_seconds) * slow)
        sched.reset_clock()
        picks = [
            sched.dispatch(
                SearchTask(segment_id=100 + i, nbytes=1 << 20, m=10, n=100_000, dim=128)
            ).device_id
            for i in range(4)
        ]
        assert picks.count(1) > picks.count(0)


class TestAdaptivePlannerUnit:
    def test_nprobe_grows_as_selectivity_drops(self):
        planner = AdaptivePlanner()
        sizes = [100] * 16
        loose = planner.select_nprobe(1600, 0.5, 10, 16, sizes)
        tight = planner.select_nprobe(1600, 0.01, 10, 16, sizes)
        assert tight > loose

    def test_ef_bounds(self):
        planner = AdaptivePlanner()
        assert planner.select_ef(10, 1.0) >= 16
        # ef counts admissible beam entries: it must NOT scale with
        # 1/p (traversal widening through filtered-out nodes is
        # automatic, and ef=theta*k/p double-counts it).
        assert planner.select_ef(10, 1e-6) == planner.select_ef(10, 1.0)
        assert planner.select_ef(64, 1.0) >= 64
        assert planner.select_ef(300, 0.5) == 512  # capped
        assert planner.select_ef(1000, 0.5) == 1000  # k floor beats the cap

    def test_plan_round_trip(self):
        planner = AdaptivePlanner()
        plan = planner.plan(
            n=1000, passing_fraction=0.3, k=10,
            index_type="IVF_FLAT", nlist=8, bucket_sizes=[125] * 8,
        )
        planner.observe(plan, {"rows_scanned": 200, "distance_evals": 80}, nq=1)
        clone = AdaptivePlanner.from_dict(planner.to_dict())
        assert clone.to_dict() == planner.to_dict()
