"""Index serialization roundtrips."""

import numpy as np
import pytest

from repro.index import (
    SERIALIZABLE_TYPES,
    AnnoyIndex,
    BinaryFlatIndex,
    FlatIndex,
    HNSWIndex,
    IVFFlatIndex,
    IVFPQIndex,
    IVFSQ8Index,
    index_from_bytes,
    index_to_bytes,
)
from repro.datasets import chemical_fingerprints, sift_like


@pytest.fixture(scope="module")
def data():
    return sift_like(500, dim=16, seed=0)


def _roundtrip(index):
    return index_from_bytes(index_to_bytes(index))


class TestRoundtrips:
    def test_flat(self, data):
        index = FlatIndex(16)
        index.add(data, ids=np.arange(100, 600))
        restored = _roundtrip(index)
        r1 = index.search(data[:5], 5)
        r2 = restored.search(data[:5], 5)
        np.testing.assert_array_equal(r1.ids, r2.ids)
        np.testing.assert_allclose(r1.scores, r2.scores)

    def test_bin_flat(self):
        codes, __ = chemical_fingerprints(200, n_bits=128, seed=0)
        index = BinaryFlatIndex(128, metric="jaccard")
        index.add(codes)
        restored = _roundtrip(index)
        np.testing.assert_array_equal(
            index.search(codes[:3], 5).ids, restored.search(codes[:3], 5).ids
        )

    @pytest.mark.parametrize("cls,kwargs", [
        (IVFFlatIndex, {}),
        (IVFSQ8Index, {}),
        (IVFPQIndex, {"m": 4}),
    ])
    def test_ivf_family(self, data, cls, kwargs):
        index = cls(16, nlist=8, seed=0, **kwargs)
        index.train(data)
        index.add(data)
        restored = _roundtrip(index)
        assert restored.ntotal == index.ntotal
        assert restored.is_trained
        r1 = index.search(data[:5], 5, nprobe=8)
        r2 = restored.search(data[:5], 5, nprobe=8)
        np.testing.assert_array_equal(r1.ids, r2.ids)
        np.testing.assert_allclose(r1.scores, r2.scores, rtol=1e-5)

    def test_empty_flat(self):
        index = FlatIndex(8)
        restored = _roundtrip(index)
        assert restored.ntotal == 0

    def test_metric_preserved(self, data):
        index = FlatIndex(16, metric="ip")
        index.add(data)
        restored = _roundtrip(index)
        assert restored.metric.name == "ip"


class TestUnsupported:
    @pytest.mark.parametrize("index_factory", [
        lambda: HNSWIndex(8, M=4, seed=0),
        lambda: AnnoyIndex(8, n_trees=2, seed=0),
    ])
    def test_graph_tree_raise(self, index_factory):
        with pytest.raises(TypeError):
            index_to_bytes(index_factory())

    def test_supported_list_sane(self):
        assert "IVF_FLAT" in SERIALIZABLE_TYPES
        assert "HNSW" not in SERIALIZABLE_TYPES
