"""Parallel query execution: pool semantics, batched merge, norm cache.

The load-bearing property is *bit-identical parallel-vs-serial
results*: pooled fan-out returns partials in submission order and both
modes share one merge path, so every equivalence test here asserts
``array_equal`` on ids and scores, not ``allclose``.
"""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.client.rest import RestRouter
from repro.core.collection import Collection
from repro.core.schema import CollectionSchema, VectorField, AttributeField
from repro.datasets import sift_like, random_queries
from repro.distributed import MilvusCluster
from repro.exec import (
    ExecTimeoutError,
    QueryExecutor,
    NormCache,
    WorkerPool,
    get_pool,
    in_worker_thread,
    parallel_enabled,
    shutdown_pool,
)
from repro.index.ivf_flat import IVFFlatIndex
from repro.storage import FaultPlan, FaultyFileSystem, InMemoryObjectStore, LSMConfig
from repro.utils import TopKHeap, merge_topk, merge_topk_batch


@pytest.fixture()
def fresh_pool():
    """Isolate pool state per test."""
    shutdown_pool()
    yield
    shutdown_pool()


@pytest.fixture()
def obs_on():
    handle = obs.enable()
    yield handle
    obs.disable()


# -- worker pool ------------------------------------------------------------


class TestWorkerPool:
    def test_results_in_submission_order(self, fresh_pool):
        pool = get_pool(4)
        # Later tasks finish first; results must still come back in
        # submission order.
        def make(i):
            return lambda: (time.sleep(0.02 * (4 - i)), i)[1]

        settled = pool.map_settled([make(i) for i in range(4)])
        assert [r for r, __ in settled] == [0, 1, 2, 3]
        assert all(e is None for __, e in settled)

    def test_errors_delivered_per_slot(self, fresh_pool):
        pool = get_pool(2)

        def boom():
            raise ValueError("boom")

        settled = pool.map_settled([lambda: 1, boom, lambda: 3])
        assert settled[0] == (1, None)
        assert settled[1][0] is None
        assert isinstance(settled[1][1], ValueError)
        assert settled[2] == (3, None)

    def test_per_task_timeout(self, fresh_pool):
        pool = get_pool(2)
        release = threading.Event()

        def slow():
            release.wait(5.0)
            return "late"

        settled = pool.map_settled([slow, lambda: "fast"], timeout=0.05)
        release.set()
        assert isinstance(settled[0][1], ExecTimeoutError)
        assert settled[1] == ("fast", None)

    def test_pool_grows_never_shrinks(self, fresh_pool):
        pool = get_pool(2)
        assert pool.size == 2
        assert get_pool(4) is pool
        assert pool.size == 4
        get_pool(1)
        assert pool.size == 4

    def test_worker_flag_forces_nested_serial(self, fresh_pool):
        pool = get_pool(2)
        [(flags, __)] = pool.map_settled([
            lambda: (in_worker_thread(),
                     QueryExecutor(parallel=True, pool_size=4).parallel)
        ])
        assert flags == (True, False)  # nested fan-out stays serial
        assert in_worker_thread() is False

    def test_shutdown_and_lazy_recreate(self, fresh_pool):
        pool = get_pool(2)
        shutdown_pool()
        with pytest.raises(RuntimeError):
            pool.map_settled([lambda: 1])
        assert get_pool(2) is not pool

    def test_env_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert parallel_enabled(True) is False  # overrides per-call opt-in
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        assert parallel_enabled(None) is True
        assert parallel_enabled(False) is False  # per-call opt-out still wins
        monkeypatch.delenv("REPRO_PARALLEL")
        assert parallel_enabled(None) is False  # off by default

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(0)


class TestQueryExecutor:
    def test_serial_uncaught_error_stops_immediately(self):
        ran = []

        def boom():
            raise RuntimeError("x")

        ex = QueryExecutor(parallel=False)
        with pytest.raises(RuntimeError):
            ex.map_ordered([lambda: ran.append(1), boom, lambda: ran.append(2)])
        assert ran == [1]  # tasks after the failure never ran

    def test_pooled_uncaught_error_raises_after_settle(self, fresh_pool):
        ran = []

        def boom():
            raise RuntimeError("x")

        ex = QueryExecutor(parallel=True, pool_size=2)
        with pytest.raises(RuntimeError):
            ex.map_settled([boom, lambda: ran.append(1)])
        assert ran == [1]  # all tasks settled before the raise

    def test_catch_captures_in_both_modes(self, fresh_pool):
        def boom():
            raise IOError("store down")

        for parallel in (False, True):
            ex = QueryExecutor(parallel=parallel, pool_size=2)
            settled = ex.map_settled([lambda: "ok", boom], catch=(IOError,))
            assert settled[0] == ("ok", None)
            assert isinstance(settled[1][1], IOError)


# -- merge primitives -------------------------------------------------------


class TestMergeTopkBatch:
    def _random_partials(self, rng, nq, widths, higher=False):
        parts = []
        next_id = 0
        for w in widths:
            ids = np.arange(next_id, next_id + nq * w).reshape(nq, w)
            next_id += nq * w
            scores = rng.random((nq, w))
            # pad a few tail slots like a sparse SearchResult
            ids[:, w - 1] = -1
            scores[:, w - 1] = -np.inf if higher else np.inf
            parts.append((ids, scores))
        return parts

    @pytest.mark.parametrize("higher", [False, True])
    def test_matches_per_query_merge(self, rng, higher):
        nq, k = 6, 4
        parts = self._random_partials(rng, nq, [5, 3, 7], higher)
        bids, bscores = merge_topk_batch(parts, k, higher)
        assert bids.shape == bscores.shape == (nq, k)
        for qi in range(nq):
            pp = [(i[qi][i[qi] >= 0], s[qi][i[qi] >= 0]) for i, s in parts]
            mi, ms = merge_topk(pp, k, higher)
            assert np.array_equal(bids[qi, : len(mi)], mi)
            assert np.array_equal(bscores[qi, : len(ms)], ms)

    def test_empty_partials_needs_nq(self):
        ids, scores = merge_topk_batch([], 3, nq=2)
        assert ids.shape == (2, 3) and (ids == -1).all()
        assert scores.dtype == np.float32 and np.isinf(scores).all()
        with pytest.raises(ValueError):
            merge_topk_batch([], 3)

    def test_k_larger_than_candidates_pads(self):
        ids, scores = merge_topk_batch(
            [(np.array([[5, 7]]), np.array([[0.2, 0.1]]))], 4
        )
        assert ids.tolist() == [[7, 5, -1, -1]]
        assert scores[0, :2].tolist() == [0.1, 0.2]
        assert np.isposinf(scores[0, 2:]).all()

    def test_dtype_preserved_and_overridable(self):
        part = (np.array([[1, 2]]), np.array([[0.5, 0.25]], dtype=np.float32))
        __, scores = merge_topk_batch([part], 2)
        assert scores.dtype == np.float32
        __, scores64 = merge_topk_batch([part], 2, dtype=np.float64)
        assert scores64.dtype == np.float64

    def test_nq_mismatch_rejected(self):
        part = (np.zeros((2, 1), dtype=np.int64), np.zeros((2, 1)))
        with pytest.raises(ValueError):
            merge_topk_batch([part], 1, nq=3)


class TestMergeTopkEmptyDtype:
    def test_empty_defaults_to_float32(self):
        ids, scores = merge_topk([], 5)
        assert ids.dtype == np.int64 and scores.dtype == np.float32

    def test_empty_respects_explicit_dtype(self):
        __, scores = merge_topk([], 5, dtype=np.float64)
        assert scores.dtype == np.float64

    def test_nonempty_keeps_input_dtype(self):
        part = (np.array([1]), np.array([0.5], dtype=np.float32))
        __, scores = merge_topk([part], 1)
        assert scores.dtype == np.float32


class TestPushManyPrefilter:
    @pytest.mark.parametrize("higher", [False, True])
    def test_equivalent_to_per_element_pushes(self, rng, higher):
        scores = rng.random(500)
        ids = rng.permutation(500)
        reference = TopKHeap(10, higher_is_better=higher)
        for i, s in zip(ids, scores):
            reference.push(int(i), float(s))
        batched = TopKHeap(10, higher_is_better=higher)
        batched.push_many(ids, scores)
        assert batched.items() == reference.items()

    def test_small_batches_and_empty(self):
        heap = TopKHeap(5)
        heap.push_many([], [])
        assert len(heap) == 0
        heap.push_many([1, 2], [0.5, 0.25])  # fewer than k
        assert len(heap) == 2
        heap.push_many([3, 4, 5, 6], [0.9, 0.1, 0.8, 0.05])
        assert len(heap) == 5
        assert heap.items()[0] == (6, 0.05)


# -- parallel-vs-serial equivalence ----------------------------------------


def _build_multisegment_collection(n_segments=5, rows_per=200, dim=16):
    schema = CollectionSchema(
        "exec_equiv",
        vector_fields=[VectorField("emb", dim, "l2")],
        attribute_fields=[AttributeField("price")],
    )
    coll = Collection(schema, lsm_config=LSMConfig(auto_merge=False))
    rng = np.random.default_rng(123)
    for __ in range(n_segments):
        data = sift_like(rows_per, dim=dim, seed=int(rng.integers(1 << 30)))
        coll.insert({"emb": data, "price": rng.random(rows_per) * 100})
        coll.flush()  # one sealed segment per batch
    return coll


class TestParallelSerialEquivalence:
    @pytest.fixture(scope="class")
    def collection(self):
        return _build_multisegment_collection()

    @pytest.fixture(scope="class")
    def queries(self, collection):
        rng = np.random.default_rng(7)
        return rng.random((10, 16)).astype(np.float32) * 4

    def test_lsm_search_bit_identical(self, collection, queries, fresh_pool):
        serial = collection.search("emb", queries, 10, parallel=False)
        pooled = collection.search("emb", queries, 10, parallel=True, pool_size=4)
        assert np.array_equal(serial.ids, pooled.ids)
        assert np.array_equal(serial.scores, pooled.scores)
        assert (serial.ids >= 0).all()

    @pytest.mark.parametrize("pool_size", [1, 4])
    def test_filtered_search_bit_identical(
        self, collection, queries, pool_size, fresh_pool
    ):
        serial = collection.search(
            "emb", queries, 5, filter=("price", 20.0, 80.0), parallel=False
        )
        pooled = collection.search(
            "emb", queries, 5, filter=("price", 20.0, 80.0),
            parallel=True, pool_size=pool_size,
        )
        assert np.array_equal(serial.ids, pooled.ids)
        assert np.array_equal(serial.scores, pooled.scores)

    def test_cluster_fanout_bit_identical(self, fresh_pool):
        data = sift_like(400, dim=8, seed=31)
        queries = random_queries(data, 8, seed=32)
        cluster = MilvusCluster(4, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        serial = cluster.search(queries, 5, parallel=False)
        pooled = cluster.search(queries, 5, parallel=True, pool_size=4)
        assert np.array_equal(serial.result.ids, pooled.result.ids)
        assert np.array_equal(serial.result.scores, pooled.result.scores)
        assert pooled.degraded is False
        assert set(pooled.per_node_seconds) == set(serial.per_node_seconds)
        for res in (serial, pooled):
            assert 0 < res.simulated_parallel_seconds <= res.wall_seconds + 1e-9

    @pytest.mark.parametrize("pool_size", [1, 4])
    def test_midfanout_crash_under_faultplan(self, pool_size, fresh_pool):
        """A reader whose shard-log read dies inside the fan-out task
        degrades that shard only — identically in serial and pooled."""
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=41)
        shared = FaultyFileSystem(inner, plan)
        cluster = MilvusCluster(3, dim=8, index_type="FLAT", shared=shared)
        data = sift_like(300, dim=8, seed=42)
        queries = random_queries(data, 6, seed=43)
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        cluster.insert(np.arange(len(data), len(data) + 30),
                       sift_like(30, dim=8, seed=44))
        # reader-1's next shard-log read fails mid-fan-out.
        plan.fail("shardlog/*-reader-1.log", op="read", nth=1, times=1)
        res = cluster.search(
            queries, 5, auto_refresh=True, parallel=pool_size > 1,
            pool_size=pool_size,
        )
        assert res.degraded is True
        assert res.missing_shards == ["reader-1"]
        assert (res.result.ids >= 0).any()
        # Healthy again on the next query (fault budget spent).
        healthy = cluster.search(queries, 5, auto_refresh=True)
        assert healthy.degraded is False

    def test_crashed_reader_equivalent_degradation(self, fresh_pool):
        data = sift_like(200, dim=8, seed=51)
        queries = random_queries(data, 4, seed=52)
        cluster = MilvusCluster(3, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        cluster.crash_reader("reader-2")
        serial = cluster.search(queries, 5, parallel=False)
        pooled = cluster.search(queries, 5, parallel=True, pool_size=4)
        for res in (serial, pooled):
            assert res.degraded is True
            assert res.missing_shards == ["reader-2"]
        assert np.array_equal(serial.result.ids, pooled.result.ids)
        assert np.array_equal(serial.result.scores, pooled.result.scores)


# -- norm cache -------------------------------------------------------------


class TestNormCache:
    def test_hit_miss_counters_and_metrics_exposure(self, obs_on):
        coll = _build_multisegment_collection(n_segments=3, rows_per=100)
        queries = np.random.default_rng(9).random((4, 16)).astype(np.float32)
        coll.search("emb", queries, 5)  # cold: one miss per segment
        assert obs_on.registry.total("normcache_misses_total") == 3
        assert obs_on.registry.total("normcache_hits_total") == 0
        coll.search("emb", queries, 5)  # warm: pure hits
        assert obs_on.registry.total("normcache_misses_total") == 3
        assert obs_on.registry.total("normcache_hits_total") == 3
        page = RestRouter().handle("GET", "/metrics", {})
        assert "normcache_hits_total" in page.body["text"]
        assert "normcache_misses_total" in page.body["text"]

    def test_warm_cache_scores_bit_identical(self):
        coll = _build_multisegment_collection(n_segments=2, rows_per=150)
        queries = np.random.default_rng(11).random((5, 16)).astype(np.float32)
        cold = coll.search("emb", queries, 8)
        warm = coll.search("emb", queries, 8)
        assert np.array_equal(cold.ids, warm.ids)
        assert np.array_equal(cold.scores, warm.scores)

    def test_cache_api_and_invalidation(self):
        cache = NormCache()
        data = np.random.default_rng(3).random((20, 4)).astype(np.float32)
        first = cache.squared_norms("f", data)
        assert cache.squared_norms("f", data) is first  # cached object
        assert np.allclose(first, (data.astype(np.float32) ** 2).sum(axis=1),
                           atol=1e-5)
        assert len(cache) == 1 and cache.memory_bytes() == first.nbytes
        cache.invalidate()
        assert len(cache) == 0
        assert cache.squared_norms("f", data) is not first

    def test_ivf_add_invalidates_bucket_cache(self):
        rng = np.random.default_rng(5)
        data = rng.random((300, 8)).astype(np.float32)
        index = IVFFlatIndex(8, nlist=4)
        index.train(data)
        index.add(data[:200], ids=np.arange(200))
        queries = rng.random((3, 8)).astype(np.float32)
        index.search(queries, 5, nprobe=4)
        assert len(index.kernel_cache) > 0
        index.add(data[200:], ids=np.arange(200, 300))
        assert len(index.kernel_cache) == 0  # stale norms dropped
        res = index.search(queries, 5, nprobe=4)
        # Post-add search over all rows matches a fresh identical index.
        fresh = IVFFlatIndex(8, nlist=4)
        fresh.train(data)
        fresh.add(data, ids=np.arange(300))
        fres = fresh.search(queries, 5, nprobe=4)
        assert np.array_equal(res.ids, fres.ids)

    def test_filtered_scan_skips_cache_but_matches(self):
        """row_filter slices codes into a fresh array: scored directly,
        and the cached full-bucket path must agree on the overlap."""
        rng = np.random.default_rng(13)
        data = rng.random((400, 8)).astype(np.float32)
        index = IVFFlatIndex(8, nlist=4)
        index.train(data)
        index.add(data, ids=np.arange(400))
        queries = rng.random((2, 8)).astype(np.float32)
        full = index.search(queries, 400, nprobe=4)
        filt = index.search(
            queries, 10, nprobe=4, row_filter=np.arange(0, 400, 2)
        )
        for qi in range(2):
            kept = full.ids[qi][full.ids[qi] % 2 == 0][:10]
            assert np.array_equal(filt.ids[qi][filt.ids[qi] >= 0], kept)
