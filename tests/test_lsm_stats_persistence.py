"""LSM stats API and persisted-index loading."""

import numpy as np
import pytest

from repro.storage import InMemoryObjectStore, LSMConfig, LSMManager, TieredMergePolicy
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


def make_lsm(fs=None, **overrides):
    defaults = dict(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        auto_merge=False,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        index_params={"nlist": 8},
    )
    defaults.update(overrides)
    return LSMManager(SPECS, (), LSMConfig(**defaults), fs=fs)


class TestStats:
    def test_counts_track_activity(self):
        lsm = make_lsm()
        data = sift_like(300, dim=16, seed=0)
        stats = lsm.stats()
        assert stats["live_rows"] == 0 and stats["live_segments"] == 0
        lsm.insert(np.arange(300), {"emb": data})
        assert lsm.stats()["unflushed_rows"] == 300
        lsm.flush()
        lsm.delete(np.array([1, 2]))
        lsm.flush()
        stats = lsm.stats()
        assert stats["live_rows"] == 298
        assert stats["tombstones"] == 2
        assert stats["flush_count"] == 2
        assert stats["manifest_version"] >= 2

    def test_indexed_segments_counted(self):
        lsm = make_lsm()
        data = sift_like(200, dim=16, seed=1)
        lsm.insert(np.arange(200), {"emb": data})
        lsm.flush()
        assert lsm.stats()["indexed_segments"] == 0
        lsm.build_index("emb")
        assert lsm.stats()["indexed_segments"] == 1


class TestPersistedIndexLoad:
    def test_index_blob_written_and_loaded(self):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        data = sift_like(300, dim=16, seed=2)
        lsm.insert(np.arange(300), {"emb": data})
        lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=8)
        seg_id = lsm.manifest.live_segment_ids()[0]
        assert fs.exists(f"indexes/{seg_id:012d}__emb.idx")

        before = lsm.search("emb", data[:5], 3, nprobe=8)
        lsm.bufferpool.invalidate(seg_id)
        # Reload goes through index_from_bytes, not a k-means rebuild.
        reloaded = lsm.bufferpool.get(seg_id)
        assert reloaded.has_index("emb")
        after = lsm.search("emb", data[:5], 3, nprobe=8)
        np.testing.assert_array_equal(before.ids, after.ids)

    def test_loaded_index_is_identical_not_retrained(self):
        """The persisted blob preserves the exact centroids, so results
        match bit-for-bit (a retrain could differ)."""
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        data = sift_like(300, dim=16, seed=3)
        lsm.insert(np.arange(300), {"emb": data})
        lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=8)
        seg_id = lsm.manifest.live_segment_ids()[0]
        original = lsm.bufferpool.get(seg_id).indexes["emb"].centroids.copy()
        lsm.bufferpool.invalidate(seg_id)
        restored = lsm.bufferpool.get(seg_id).indexes["emb"].centroids
        np.testing.assert_array_equal(original, restored)

    def test_index_blob_deleted_with_segment(self):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        data = sift_like(200, dim=16, seed=4)
        for i in range(2):
            lsm.insert(np.arange(i * 100, (i + 1) * 100), {"emb": data[i * 100:(i + 1) * 100]})
            lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=4)
        old_ids = lsm.manifest.live_segment_ids()
        lsm.maybe_merge()
        for seg_id in old_ids:
            assert not fs.exists(f"indexes/{seg_id:012d}__emb.idx")

    def test_nonserializable_index_rebuilds(self):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        data = sift_like(150, dim=16, seed=5)
        lsm.insert(np.arange(150), {"emb": data})
        lsm.flush()
        lsm.build_index("emb", "HNSW", M=4, ef_construction=20)
        seg_id = lsm.manifest.live_segment_ids()[0]
        assert not fs.exists(f"indexes/{seg_id:012d}__emb.idx")
        lsm.bufferpool.invalidate(seg_id)
        reloaded = lsm.bufferpool.get(seg_id)
        assert reloaded.has_index("emb")  # rebuilt from spec
        assert reloaded.indexes["emb"].index_type == "HNSW"
