"""Property-based and stateful tests of the LSM storage engine.

The stateful machine drives random insert/delete/flush/merge sequences
against a plain-dict model and checks that visibility, row counts, and
nearest-neighbour results always agree — the storage engine's core
contract under any interleaving.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.storage import LSMConfig, LSMManager, TieredMergePolicy

DIM = 4
SPECS = {"emb": (DIM, "l2")}


def _vector_for(row_id: int) -> np.ndarray:
    """Deterministic, unique vector per row id (id encoded in coords)."""
    rng = np.random.default_rng(row_id)
    base = rng.normal(size=DIM).astype(np.float32)
    base[0] = float(row_id)  # guarantee uniqueness / exact lookup
    return base


class LSMMachine(RuleBasedStateMachine):
    """Random workload vs an in-memory model."""

    @initialize()
    def setup(self):
        self.lsm = LSMManager(
            SPECS,
            (),
            LSMConfig(
                memtable_flush_bytes=1 << 30,
                index_build_min_rows=1 << 30,
                auto_merge=False,
                merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
            ),
        )
        self.next_id = 0
        self.visible = set()    # flushed, not deleted
        self.unflushed = set()  # inserted, not yet flushed
        self.pending_deletes = set()

    @rule(count=st.integers(1, 8))
    def insert(self, count):
        ids = np.arange(self.next_id, self.next_id + count, dtype=np.int64)
        self.next_id += count
        vectors = np.stack([_vector_for(int(i)) for i in ids])
        self.lsm.insert(ids, {"emb": vectors})
        self.unflushed.update(int(i) for i in ids)

    @rule(data=st.data())
    def delete_some(self, data):
        candidates = sorted(self.visible | self.unflushed)
        if not candidates:
            return
        victims = data.draw(
            st.lists(st.sampled_from(candidates), max_size=3, unique=True)
        )
        if victims:
            self.lsm.delete(np.array(victims, dtype=np.int64))
            self.pending_deletes.update(victims)

    @rule()
    def flush(self):
        self.lsm.flush()
        self.visible |= self.unflushed
        self.unflushed = set()
        self.visible -= self.pending_deletes
        self.pending_deletes = set()

    @rule()
    def merge(self):
        self.lsm.maybe_merge()

    @invariant()
    def row_count_matches(self):
        assert self.lsm.num_live_rows == len(self.visible)

    @invariant()
    def visible_rows_findable(self):
        """Every visible row is its own exact nearest neighbour."""
        sample = sorted(self.visible)[:3]
        for row_id in sample:
            result = self.lsm.search("emb", _vector_for(row_id), 1)
            assert result.ids[0, 0] == row_id

    @invariant()
    def deleted_rows_hidden(self):
        """Flushed deletes never reappear (pick any formerly-deleted id)."""
        gone = (set(range(self.next_id)) - self.visible - self.unflushed
                - self.pending_deletes)
        for row_id in sorted(gone)[:2]:
            if not self.visible:
                continue
            result = self.lsm.search("emb", _vector_for(row_id), 1)
            assert result.ids[0, 0] != row_id


TestLSMStateful = LSMMachine.TestCase
TestLSMStateful.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)


class TestSnapshotStability:
    """Snapshots stay stable under any later mutation sequence."""

    def test_snapshot_immune_to_everything(self):
        lsm = LSMManager(
            SPECS, (),
            LSMConfig(
                memtable_flush_bytes=1 << 30,
                index_build_min_rows=1 << 30,
                merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
                auto_merge=False,
            ),
        )
        ids = np.arange(100, dtype=np.int64)
        vectors = np.stack([_vector_for(int(i)) for i in ids])
        lsm.insert(ids, {"emb": vectors})
        lsm.flush()
        snap = lsm.snapshot()
        baseline = lsm.search("emb", vectors[:10], 3, snapshot=snap)

        # Storm of mutations after the snapshot.
        lsm.delete(np.arange(0, 50, dtype=np.int64))
        lsm.flush()
        more = np.arange(100, 200, dtype=np.int64)
        lsm.insert(more, {"emb": np.stack([_vector_for(int(i)) for i in more])})
        lsm.flush()
        lsm.maybe_merge()

        after = lsm.search("emb", vectors[:10], 3, snapshot=snap)
        np.testing.assert_array_equal(baseline.ids, after.ids)
        lsm.release(snap)
