"""Quantized-scan kernel layer: equivalence vs the reference paths.

Every kernel (blocked flat-LUT PQ, decode-free SQ8, bucket-major
batched execution) must reproduce its naive reference up to float
summation order, with *exactly* the same work counters.  The reference
paths stay live behind ``REPRO_KERNELS=0``, so these tests A/B the two
implementations on the same built index.
"""

import threading

import numpy as np
import pytest

from repro import obs
from repro.filtering.cost import AdaptivePlanner
from repro.index import (
    IVFOPQIndex,
    IVFPQIndex,
    IVFSQ8Index,
    ProductQuantizer,
    available_index_types,
    create_index,
    index_from_bytes,
    index_to_bytes,
)
from repro.index import kernels
from repro.index.ivf_common import InvertedLists
from repro.obs.profile import QueryProfile

METRICS = ("l2", "ip", "cosine")

#: work counters that must match bit-for-bit between the kernel and
#: reference execution paths (cache counters legitimately differ).
WORK_COUNTERS = (
    "distance_evals",
    "rows_scanned",
    "buckets_probed",
    "candidates_pruned",
    "bytes_read",
)


def _work(counters):
    return {key: counters.get(key, 0) for key in WORK_COUNTERS}


@pytest.fixture()
def reference_path(monkeypatch):
    """Force the naive per-query reference path."""
    monkeypatch.setenv("REPRO_KERNELS", "0")


def _build(factory, data):
    index = factory(data.shape[1])
    index.train(data)
    index.add(data)
    return index


# -- blocked flat-LUT PQ kernel --------------------------------------------


class TestBlockedADC:
    @pytest.fixture(scope="class")
    def pq(self, request):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(600, 16)).astype(np.float32)
        pq = ProductQuantizer(16, m=4, nbits=6, seed=0).train(data)
        return pq, data

    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("block", [1, 2, 3, 4, 8])
    def test_matches_naive_all_blocks(self, pq, metric, block):
        pq, data = pq
        rng = np.random.default_rng(4)
        queries = rng.normal(size=(7, 16)).astype(np.float32)
        codes = pq.encode(data[:200])
        tables = pq.build_tables(queries, metric)
        naive = ProductQuantizer.adc_scan(tables, codes)
        blocked = kernels.adc_scan_blocked(
            kernels.flatten_tables(tables), codes, pq.ksub, block=block
        )
        np.testing.assert_allclose(blocked, naive, rtol=1e-5, atol=1e-4)

    def test_edge_shapes(self, pq):
        pq, data = pq
        rng = np.random.default_rng(5)
        queries = rng.normal(size=(1, 16)).astype(np.float32)  # nq=1
        tables_flat = kernels.flatten_tables(pq.build_tables(queries, "l2"))
        empty = pq.encode(data[:0])
        assert kernels.adc_scan_blocked(tables_flat, empty, pq.ksub).shape == (1, 0)
        single = pq.encode(data[:1])  # one row
        out = kernels.adc_scan_blocked(tables_flat, single, pq.ksub)
        naive = ProductQuantizer.adc_scan(pq.build_tables(queries, "l2"), single)
        np.testing.assert_allclose(out, naive, rtol=1e-5, atol=1e-4)

    def test_non_contiguous_inputs(self, pq):
        pq, data = pq
        rng = np.random.default_rng(6)
        wide = rng.normal(size=(10, 16)).astype(np.float32)
        queries = wide[::2]  # stride-2 view
        codes = pq.encode(data[:100])[::3]  # non-contiguous codes too
        tables = pq.build_tables(queries, "ip")
        blocked = kernels.adc_scan_blocked(
            kernels.flatten_tables(tables), codes, pq.ksub
        )
        np.testing.assert_allclose(
            blocked, ProductQuantizer.adc_scan(tables, codes), rtol=1e-5, atol=1e-4
        )

    def test_block_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "7")
        assert kernels.kernel_block_size() == 7
        monkeypatch.setenv("REPRO_KERNEL_BLOCK", "junk")
        assert kernels.kernel_block_size() == kernels.DEFAULT_BLOCK


# -- decode-free SQ8 kernel ------------------------------------------------


class TestDecodeFreeSQ8:
    @pytest.mark.parametrize("metric", METRICS)
    def test_matches_decoded_reference(self, metric, rng):
        from repro.index import ScalarQuantizer
        from repro.metrics import get_metric

        data = rng.normal(size=(300, 12)).astype(np.float32)
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(data)
        queries = rng.normal(size=(5, 12)).astype(np.float32)
        ctx = kernels.SQ8ScanContext(sq, queries, metric)
        got = ctx.scan(codes)
        want = get_metric(metric).pairwise(queries, sq.decode(codes))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-3)

    def test_edge_shapes_and_zero_vector(self, rng):
        from repro.index import ScalarQuantizer
        from repro.metrics import get_metric

        data = rng.normal(size=(50, 8)).astype(np.float32)
        data[0] = 0.0  # cosine zero-row must score 0, not NaN
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(data)
        queries = rng.normal(size=(1, 8)).astype(np.float32)
        for metric in METRICS:
            ctx = kernels.SQ8ScanContext(sq, queries, metric)
            assert ctx.scan(codes[:0]).shape == (1, 0)
            got = ctx.scan(codes[:1])
            want = get_metric(metric).pairwise(queries, sq.decode(codes[:1]))
            np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-3)
        ctx = kernels.SQ8ScanContext(sq, queries, "cosine")
        decoded0 = sq.decode(codes[:1])
        scores = ctx.scan(codes[:1])
        assert np.isfinite(scores).all()
        if not decoded0.any():
            assert np.isclose(scores[0, 0], 0.0)

    def test_qidx_slices_batch_terms(self, rng):
        from repro.index import ScalarQuantizer

        data = rng.normal(size=(100, 8)).astype(np.float32)
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(data)
        queries = rng.normal(size=(6, 8)).astype(np.float32)
        ctx = kernels.SQ8ScanContext(sq, queries, "l2")
        qidx = np.array([4, 1])
        np.testing.assert_allclose(ctx.scan(codes, qidx), ctx.scan(codes)[qidx])

    def test_cache_hit_returns_same_terms(self, rng):
        from repro.index import ScalarQuantizer

        data = rng.normal(size=(80, 8)).astype(np.float32)
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(data)
        queries = rng.normal(size=(3, 8)).astype(np.float32)
        ctx = kernels.SQ8ScanContext(sq, queries, "l2")
        cache = kernels.CodeCache()
        first = ctx.scan(codes, cache=cache, cache_key=7)
        assert len(cache) == 2  # cast + sqnorms
        second = ctx.scan(codes, cache=cache, cache_key=7)
        np.testing.assert_array_equal(first, second)
        cache.invalidate()
        assert len(cache) == 0 and cache.memory_bytes() == 0


# -- end-to-end: kernel path vs reference path ------------------------------


IVF_FACTORIES = [
    ("IVF_FLAT", lambda d, m: create_index("IVF_FLAT", d, metric=m, nlist=16)),
    ("IVF_SQ8", lambda d, m: IVFSQ8Index(d, metric=m, nlist=16)),
    ("IVF_PQ", lambda d, m: IVFPQIndex(d, metric=m, nlist=16, m=4, nbits=6)),
    ("IVF_OPQ", lambda d, m: IVFOPQIndex(d, metric=m, nlist=16, m=4, nbits=6,
                                         opq_iters=2)),
]


class TestKernelVsReferenceSearch:
    @pytest.mark.parametrize("metric", METRICS)
    @pytest.mark.parametrize("name,factory", IVF_FACTORIES,
                             ids=[n for n, __ in IVF_FACTORIES])
    def test_results_and_counters_match(self, name, factory, metric,
                                        medium_data, medium_queries,
                                        monkeypatch):
        index = _build(lambda d: factory(d, metric), medium_data)
        index.search(medium_queries, 5, nprobe=4)  # warm caches both ways

        monkeypatch.setenv("REPRO_KERNELS", "1")
        with QueryProfile("kernel") as prof_k:
            fast = index.search(medium_queries, 5, nprobe=4)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        with QueryProfile("reference") as prof_r:
            ref = index.search(medium_queries, 5, nprobe=4)

        np.testing.assert_allclose(
            np.sort(fast.scores, axis=1), np.sort(ref.scores, axis=1),
            rtol=5e-4, atol=1e-3,
        )
        if name in ("IVF_FLAT", "IVF_SQ8"):
            # real float distances: no score collisions, ids must agree
            np.testing.assert_array_equal(fast.ids, ref.ids)
        else:
            # PQ rows sharing codes tie exactly; require heavy overlap
            overlap = np.mean([
                len(set(fast.ids[qi]) & set(ref.ids[qi])) / fast.ids.shape[1]
                for qi in range(fast.nq)
            ])
            assert overlap >= 0.9, overlap
        assert _work(prof_k.total_counters()) == _work(prof_r.total_counters())

    def test_row_filter_counter_parity(self, medium_data, medium_queries,
                                       monkeypatch):
        index = _build(lambda d: IVFSQ8Index(d, nlist=16), medium_data)
        row_filter = np.arange(0, len(medium_data), 3, dtype=np.int64)
        index.search(medium_queries, 5, nprobe=4, row_filter=row_filter)

        monkeypatch.setenv("REPRO_KERNELS", "1")
        with QueryProfile("kernel") as prof_k:
            fast = index.search(medium_queries, 5, nprobe=4, row_filter=row_filter)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        with QueryProfile("reference") as prof_r:
            ref = index.search(medium_queries, 5, nprobe=4, row_filter=row_filter)

        np.testing.assert_array_equal(fast.ids, ref.ids)
        counters = _work(prof_k.total_counters())
        assert counters == _work(prof_r.total_counters())
        assert counters["candidates_pruned"] > 0
        valid = fast.ids[fast.ids >= 0]
        assert np.isin(valid, row_filter).all()

    def test_range_search_matches(self, medium_data, medium_queries, monkeypatch):
        index = _build(lambda d: IVFSQ8Index(d, nlist=16), medium_data)
        # midpoint radius: kernel-vs-reference epsilon must not flip a
        # row's membership, so keep the threshold away from any score
        probe = index.search(medium_queries[:1], 10, nprobe=4)
        radius = float(probe.scores[0, 5] + probe.scores[0, 6]) / 2.0
        monkeypatch.setenv("REPRO_KERNELS", "1")
        fast = index.range_search(medium_queries[:4], radius, nprobe=4)
        monkeypatch.setenv("REPRO_KERNELS", "0")
        ref = index.range_search(medium_queries[:4], radius, nprobe=4)
        for got, want in zip(fast, ref):
            assert [i for i, __ in got] == [i for i, __ in want]
            np.testing.assert_allclose(
                [s for __, s in got], [s for __, s in want], rtol=5e-4, atol=1e-3
            )

    def test_single_query_batch(self, medium_data, medium_queries):
        index = _build(lambda d: IVFPQIndex(d, nlist=16, m=4, nbits=6), medium_data)
        full = index.search(medium_queries, 5, nprobe=4)
        solo = index.search(medium_queries[2:3], 5, nprobe=4)
        # Same scores in the same order; ids may permute only within
        # exact ADC ties (duplicate codes), whose merge order depends
        # on the batch's bucket iteration order.
        np.testing.assert_array_equal(solo.scores[0], full.scores[2])
        assert set(solo.ids[0].tolist()) == set(full.ids[2].tolist())


# -- OPQ ---------------------------------------------------------------------


class TestOPQ:
    def _correlated(self, n=900, dim=16, seed=11):
        rng = np.random.default_rng(seed)
        latent = rng.normal(size=(n, dim)).astype(np.float32)
        mix = rng.normal(size=(dim, dim)).astype(np.float32)
        mix += 3.0 * np.eye(dim, dtype=np.float32)  # strong correlation
        return latent @ mix

    def test_two_runs_bit_identical(self):
        data = self._correlated()
        factory = lambda: ProductQuantizer(16, m=4, nbits=6, seed=0)
        rot_a, pq_a = kernels.train_opq_rotation(data, factory, opq_iters=3, seed=0)
        rot_b, pq_b = kernels.train_opq_rotation(data, factory, opq_iters=3, seed=0)
        np.testing.assert_array_equal(rot_a, rot_b)
        np.testing.assert_array_equal(pq_a.codebooks, pq_b.codebooks)

    def test_rotation_is_orthogonal(self):
        data = self._correlated(n=400)
        rotation, __ = kernels.train_opq_rotation(
            data, lambda: ProductQuantizer(16, m=4, nbits=4, seed=0),
            opq_iters=2, seed=0,
        )
        np.testing.assert_allclose(
            rotation @ rotation.T, np.eye(16), atol=1e-4
        )

    def test_opq_reduces_reconstruction_error(self):
        data = self._correlated()
        pq = ProductQuantizer(16, m=4, nbits=6, seed=0).train(data)
        plain_err = float(((pq.decode(pq.encode(data)) - data) ** 2).sum())
        rotation, opq = kernels.train_opq_rotation(
            data, lambda: ProductQuantizer(16, m=4, nbits=6, seed=0),
            opq_iters=4, seed=0,
        )
        rotated = data @ rotation
        opq_err = float(((opq.decode(opq.encode(rotated)) - rotated) ** 2).sum())
        assert opq_err < plain_err

    def test_registry_and_search(self, medium_data, medium_queries):
        assert "IVF_OPQ" in available_index_types()
        index = create_index("IVF_OPQ", medium_data.shape[1], nlist=16,
                             m=4, nbits=6, opq_iters=2)
        index.train(medium_data)
        index.add(medium_data)
        result = index.search(medium_queries, 10, nprobe=8)
        assert result.ids.shape == (len(medium_queries), 10)
        assert (result.ids >= 0).any(axis=1).all()

    def test_untrained_search_raises(self, medium_data):
        index = IVFOPQIndex(medium_data.shape[1], nlist=16, m=4, nbits=6)
        with pytest.raises(RuntimeError):
            index._codec_space(medium_data[:1])

    def test_serialization_roundtrip(self, medium_data, medium_queries):
        index = IVFOPQIndex(medium_data.shape[1], nlist=16, m=4, nbits=6,
                            opq_iters=2)
        index.train(medium_data)
        index.add(medium_data)
        restored = index_from_bytes(index_to_bytes(index))
        assert isinstance(restored, IVFOPQIndex)
        np.testing.assert_array_equal(restored.rotation, index.rotation)
        want = index.search(medium_queries, 5, nprobe=4)
        got = restored.search(medium_queries, 5, nprobe=4)
        np.testing.assert_array_equal(got.ids, want.ids)


# -- decode rank regression --------------------------------------------------


class TestDecodeRank:
    def test_pq_decode_rank_mirrors_input(self, rng):
        data = rng.normal(size=(300, 8)).astype(np.float32)
        pq = ProductQuantizer(8, m=2, nbits=4, seed=0).train(data)
        codes = pq.encode(data[:5])
        assert pq.decode(codes).shape == (5, 8)
        assert pq.decode(codes[0]).shape == (8,)
        np.testing.assert_array_equal(pq.decode(codes[0]), pq.decode(codes)[0])

    def test_sq_decode_rank_mirrors_input(self, rng):
        from repro.index import ScalarQuantizer

        data = rng.normal(size=(50, 6)).astype(np.float32)
        sq = ScalarQuantizer().train(data)
        codes = sq.encode(data[:4])
        assert sq.decode(codes).shape == (4, 6)
        assert sq.decode(codes[0]).shape == (6,)
        np.testing.assert_array_equal(sq.decode(codes[0]), sq.decode(codes)[0])


# -- planner row_bytes -------------------------------------------------------


class TestRowBytesPlanning:
    def test_bytes_read_predicted_for_index_strategies(self):
        planner = AdaptivePlanner()
        plan = planner.plan(
            n=10_000, passing_fraction=0.5, k=10,
            index_type="IVF_SQ8", nlist=64, row_bytes=24,
        )
        assert plan.row_bytes == 24
        for strategy in ("B", "C"):
            raw = planner._raw_counters(plan, strategy)
            assert raw["bytes_read"] == pytest.approx(
                raw["rows_scanned"] * 24
            )
        assert "bytes_read" not in planner._raw_counters(plan, "A")

    def test_no_row_bytes_no_prediction(self):
        planner = AdaptivePlanner()
        plan = planner.plan(n=10_000, passing_fraction=0.5, k=10,
                            index_type="IVF_FLAT", nlist=64)
        assert "bytes_read" not in planner._raw_counters(plan, "B")

    def test_row_code_bytes_per_index(self, medium_data):
        dim = medium_data.shape[1]
        flat = create_index("IVF_FLAT", dim, nlist=16)
        sq8 = IVFSQ8Index(dim, nlist=16)
        pq = IVFPQIndex(dim, nlist=16, m=4, nbits=6)
        assert flat.row_code_bytes() == 4 * dim
        assert sq8.row_code_bytes() == dim
        assert pq.row_code_bytes() == 4


# -- InvertedLists thread safety --------------------------------------------


class TestInvertedListsConcurrency:
    def test_concurrent_get_compaction(self):
        lists = InvertedLists(1)
        for block in range(40):
            ids = np.arange(block * 10, block * 10 + 10, dtype=np.int64)
            lists.append(0, ids, np.full((10, 4), block, dtype=np.uint8))
        errors = []

        def reader():
            try:
                for __ in range(50):
                    ids, codes = lists.get(0)
                    assert len(ids) == len(codes) == 400
                    assert lists.is_compacted_block(0, codes)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=reader) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        ids, codes = lists.get(0)
        np.testing.assert_array_equal(ids, np.arange(400))

    def test_concurrent_append_and_get(self):
        lists = InvertedLists(4)
        errors = []

        def writer():
            try:
                for i in range(60):
                    lists.append(i % 4, np.array([i], dtype=np.int64),
                                 np.full((1, 4), i % 256, dtype=np.uint8))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for __ in range(120):
                    for ln in range(4):
                        ids, codes = lists.get(ln)
                        if codes is not None:
                            assert len(ids) == len(codes)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for __ in range(4)]
        threads += [threading.Thread(target=reader) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert lists.total == 240
