"""IVF family: coarse quantizer behaviour, nprobe trade-off, pushdown."""

import numpy as np
import pytest

from repro.index import IVFFlatIndex, IVFSQ8Index, IVFPQIndex
from repro.datasets import exact_ground_truth, recall_at_k


@pytest.fixture(scope="module")
def trained_ivf(medium_data):
    index = IVFFlatIndex(24, metric="l2", nlist=32, seed=0)
    index.train(medium_data)
    index.add(medium_data)
    return index


class TestIVFFlat:
    def test_add_before_train_raises(self, medium_data):
        index = IVFFlatIndex(24, nlist=16)
        with pytest.raises(RuntimeError):
            index.add(medium_data)

    def test_train_needs_nlist_vectors(self):
        index = IVFFlatIndex(8, nlist=64)
        with pytest.raises(ValueError):
            index.train(np.zeros((10, 8), dtype=np.float32))

    def test_full_probe_is_exact(self, trained_ivf, medium_data, medium_queries, medium_truth):
        result = trained_ivf.search(medium_queries, 10, nprobe=32)
        assert recall_at_k(result.ids, medium_truth) == 1.0

    def test_recall_monotone_in_nprobe(self, trained_ivf, medium_queries, medium_truth):
        recalls = []
        for nprobe in (1, 4, 16, 32):
            result = trained_ivf.search(medium_queries, 10, nprobe=nprobe)
            recalls.append(recall_at_k(result.ids, medium_truth))
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:]))
        assert recalls[-1] == 1.0

    def test_all_rows_land_in_buckets(self, trained_ivf, medium_data):
        assert trained_ivf.bucket_sizes().sum() == len(medium_data)

    def test_row_filter_pushdown(self, trained_ivf, medium_queries):
        allowed = np.arange(0, 2000, dtype=np.int64)
        result = trained_ivf.search(medium_queries, 10, nprobe=32, row_filter=allowed)
        valid = result.ids[result.ids >= 0]
        assert (valid < 2000).all()

    def test_row_filter_empty(self, trained_ivf, medium_queries):
        result = trained_ivf.search(
            medium_queries, 5, nprobe=8, row_filter=np.empty(0, dtype=np.int64)
        )
        assert (result.ids == -1).all()

    def test_select_buckets_sorted_by_distance(self, trained_ivf, medium_queries):
        buckets = trained_ivf.select_buckets(medium_queries, 5)
        from repro.metrics.dense import l2_squared_pairwise

        coarse = l2_squared_pairwise(medium_queries, trained_ivf.centroids)
        for qi in range(len(medium_queries)):
            dists = coarse[qi][buckets[qi]]
            assert (np.diff(dists) >= -1e-5).all()

    def test_stats_include_buckets(self, trained_ivf):
        stats = trained_ivf.stats()
        assert stats["nlist"] == 32
        assert stats["bucket_max"] >= stats["bucket_min"]


class TestIVFSQ8:
    def test_recall_close_to_flat(self, medium_data, medium_queries, medium_truth):
        index = IVFSQ8Index(24, nlist=32, seed=0)
        index.train(medium_data)
        index.add(medium_data)
        result = index.search(medium_queries, 10, nprobe=32)
        # Paper footnote 6: SQ8 loses only ~1% recall.
        assert recall_at_k(result.ids, medium_truth) >= 0.95

    def test_memory_is_fraction_of_flat(self, medium_data):
        flat = IVFFlatIndex(24, nlist=32, seed=0)
        flat.train(medium_data)
        flat.add(medium_data)
        sq8 = IVFSQ8Index(24, nlist=32, seed=0)
        sq8.train(medium_data)
        sq8.add(medium_data)
        # Paper: SQ8 takes 1/4 the vector space of IVF_FLAT.
        assert sq8.memory_bytes() < 0.55 * flat.memory_bytes()


class TestIVFPQ:
    def test_searches_with_decent_recall(self, medium_data, medium_queries, medium_truth):
        index = IVFPQIndex(24, nlist=32, m=4, seed=0)
        index.train(medium_data)
        index.add(medium_data)
        result = index.search(medium_queries, 10, nprobe=32)
        assert recall_at_k(result.ids, medium_truth) >= 0.3

    def test_memory_much_smaller(self, medium_data):
        pq = IVFPQIndex(24, nlist=32, m=4, seed=0)
        pq.train(medium_data)
        pq.add(medium_data)
        raw = medium_data.nbytes
        assert pq.memory_bytes() < raw / 2

    def test_rejects_indivisible_m(self):
        with pytest.raises(ValueError):
            IVFPQIndex(10, m=3)

    def test_rejects_unsupported_metric(self):
        with pytest.raises(ValueError):
            IVFPQIndex(8, metric="hamming", m=2)
