"""MemTable sealing and the tiered merge policy."""

import numpy as np
import pytest

from repro.storage import MemTable, TieredMergePolicy
from repro.datasets import sift_like

SPECS = {"emb": (8, "l2")}


class TestMemTable:
    def test_insert_and_seal(self):
        mt = MemTable(SPECS, ("price",))
        data = sift_like(20, dim=8, seed=0)
        mt.insert(np.arange(20), {"emb": data}, {"price": np.arange(20.0)})
        assert len(mt) == 20
        mt.seal()
        with pytest.raises(RuntimeError):
            mt.insert(np.array([99]), {"emb": data[:1]}, {"price": np.array([1.0])})

    def test_to_segment_sorts_by_row_id(self):
        mt = MemTable(SPECS, ())
        data = sift_like(10, dim=8, seed=1)
        mt.insert(np.array([5, 3, 9]), {"emb": data[:3]}, {})
        mt.insert(np.array([1, 7]), {"emb": data[3:5]}, {})
        segment = mt.to_segment(0)
        assert segment.row_ids.tolist() == [1, 3, 5, 7, 9]
        # Vector alignment preserved through the sort.
        np.testing.assert_array_equal(segment.vectors_for("emb", np.array([3])), data[1:2])

    def test_schema_validation(self):
        mt = MemTable(SPECS, ("price",))
        data = np.zeros((2, 8), dtype=np.float32)
        with pytest.raises(ValueError):
            mt.insert(np.arange(2), {"wrong": data}, {"price": np.zeros(2)})
        with pytest.raises(ValueError):
            mt.insert(np.arange(2), {"emb": data}, {})
        with pytest.raises(ValueError):
            mt.insert(np.arange(2), {"emb": np.zeros((2, 9), np.float32)}, {"price": np.zeros(2)})
        with pytest.raises(ValueError):
            mt.insert(np.arange(2), {"emb": data}, {"price": np.zeros(3)})

    def test_bytes_accounting_grows(self):
        mt = MemTable(SPECS, ())
        before = mt.approx_bytes
        mt.insert(np.arange(5), {"emb": np.zeros((5, 8), np.float32)}, {})
        assert mt.approx_bytes > before

    def test_empty_memtable_segment(self):
        mt = MemTable(SPECS, ("price",))
        segment = mt.to_segment(0)
        assert len(segment) == 0


class TestTieredMergePolicy:
    def test_no_merge_below_factor(self):
        policy = TieredMergePolicy(merge_factor=4, min_segment_bytes=100)
        tasks = policy.plan([(0, 50), (1, 60), (2, 70)])
        assert tasks == []

    def test_merges_full_tier(self):
        policy = TieredMergePolicy(merge_factor=3, min_segment_bytes=100)
        tasks = policy.plan([(0, 50), (1, 60), (2, 70), (3, 80)])
        assert len(tasks) == 1
        assert len(tasks[0]) == 3
        assert tasks[0].segment_ids == (0, 1, 2)  # oldest first

    def test_tiers_separate_sizes(self):
        policy = TieredMergePolicy(merge_factor=2, tier_factor=4, min_segment_bytes=100)
        # two tiny + two large: one merge per tier
        tasks = policy.plan([(0, 50), (1, 50), (2, 5000), (3, 5000)])
        merged_groups = {t.segment_ids for t in tasks}
        assert (0, 1) in merged_groups
        assert (2, 3) in merged_groups

    def test_max_size_exempt(self):
        policy = TieredMergePolicy(
            merge_factor=2, min_segment_bytes=100, max_segment_bytes=1000
        )
        tasks = policy.plan([(0, 2000), (1, 2000)])
        assert tasks == []

    def test_combined_overflow_skipped(self):
        policy = TieredMergePolicy(
            merge_factor=2, tier_factor=100, min_segment_bytes=1, max_segment_bytes=1000
        )
        tasks = policy.plan([(0, 700), (1, 700)])
        assert tasks == []

    def test_tier_of_monotone(self):
        policy = TieredMergePolicy(min_segment_bytes=100, tier_factor=4)
        tiers = [policy.tier_of(s) for s in (10, 100, 400, 1600, 6400)]
        assert tiers == sorted(tiers)

    def test_validation(self):
        with pytest.raises(ValueError):
            TieredMergePolicy(merge_factor=1)
        with pytest.raises(ValueError):
            TieredMergePolicy(tier_factor=0.5)
