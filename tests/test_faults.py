"""Fault-injection DSL (`repro.storage.faults`) and retry (`repro.utils.retry`)."""

import numpy as np
import pytest

from repro.storage import (
    FaultPlan,
    FaultyFileSystem,
    InMemoryObjectStore,
    SimulatedCrash,
    WalCorruptionError,
    WalRecord,
    WriteAheadLog,
)
from repro.utils.retry import RetryExhaustedError, RetryPolicy


def no_sleep(_seconds):
    return None


class TestFaultPlanDsl:
    def test_passthrough_without_rules(self):
        fs = FaultyFileSystem(InMemoryObjectStore(), FaultPlan())
        fs.write("a/b", b"payload")
        assert fs.read("a/b") == b"payload"
        assert fs.exists("a/b")
        assert fs.listdir("a/") == ["a/b"]
        fs.delete("a/b")
        assert not fs.exists("a/b")
        assert fs.faults_fired() == 0

    def test_torn_write_truncates_and_crashes(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=1)
        rule = plan.torn_write("wal/*", truncate_at=3)
        fs = FaultyFileSystem(inner, plan)
        with pytest.raises(SimulatedCrash):
            fs.write("wal/rec", b"0123456789")
        assert inner.read("wal/rec") == b"012"  # partial payload landed
        assert rule.fired == 1

    def test_torn_write_without_crash_is_short_write(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=1)
        plan.torn_write("*", truncate_at=1, crash=False)
        fs = FaultyFileSystem(inner, plan)
        fs.write("x", b"abc")  # no raise
        assert inner.read("x") == b"a"

    def test_transient_error_fires_on_nth_through_times(self):
        plan = FaultPlan(seed=0)
        rule = plan.fail("log/*", op="write", nth=2, times=2)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        fs.write("log/a", b"1")  # op 1: clean
        with pytest.raises(IOError):
            fs.write("log/a", b"2")  # op 2: fault
        with pytest.raises(IOError):
            fs.write("log/a", b"3")  # op 3: fault
        fs.write("log/a", b"4")  # op 4: clean again
        assert rule.fired == 2
        assert fs.read("log/a") == b"4"

    def test_error_fires_before_op_executes(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=0)
        plan.fail("k", op="write")
        fs = FaultyFileSystem(inner, plan)
        with pytest.raises(IOError):
            fs.write("k", b"lost")
        assert not inner.exists("k")  # nothing landed

    def test_corrupt_read_flips_bits_deterministically(self):
        payload = bytes(64)
        corrupted = []
        for _attempt in range(2):
            inner = InMemoryObjectStore()
            inner.write("seg", payload)
            plan = FaultPlan(seed=42)
            plan.corrupt_read("seg", flip_bits=3)
            fs = FaultyFileSystem(inner, plan)
            corrupted.append(fs.read("seg"))
        assert corrupted[0] != payload
        assert corrupted[0] == corrupted[1]  # same seed, same damage
        assert inner.read("seg") == payload  # backend untouched

    def test_crash_after_op_lands(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=0)
        plan.crash_after("manifest/*", op="write")
        fs = FaultyFileSystem(inner, plan)
        with pytest.raises(SimulatedCrash):
            fs.write("manifest/1", b"state")
        assert inner.read("manifest/1") == b"state"  # landed before crash

    def test_latency_is_accounted_not_slept(self):
        plan = FaultPlan(seed=0)
        plan.latency("slow/*", op="read", seconds=0.5)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        fs.write("slow/x", b"d")
        fs.read("slow/x")
        fs.read("slow/x")
        assert fs.injected_latency_seconds == pytest.approx(1.0)

    def test_glob_and_op_scoping(self):
        plan = FaultPlan(seed=0)
        plan.fail("wal/*", op="delete", times=None)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        fs.write("wal/1", b"x")  # write unaffected
        fs.write("seg/1", b"y")
        fs.delete("seg/1")  # other prefix unaffected
        with pytest.raises(IOError):
            fs.delete("wal/1")

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail("*", op="chmod")

    def test_counters_delegate_to_inner(self):
        inner = InMemoryObjectStore()
        fs = FaultyFileSystem(inner, FaultPlan())
        fs.write("k", b"12345")
        fs.read("k")
        assert fs.bytes_written == 5
        assert fs.bytes_read == 5
        fs.reset_counters()
        assert inner.bytes_written == 0


class TestWalChecksums:
    def record(self, lsn=0):
        return WalRecord(
            lsn, "insert", np.array([1, 2]),
            {"emb": np.ones((2, 4), dtype=np.float32)}, {},
        )

    def test_roundtrip(self):
        rec = self.record(lsn=5)
        back = WalRecord.from_bytes(rec.to_bytes())
        assert back.lsn == 5 and back.kind == "insert"
        np.testing.assert_array_equal(back.row_ids, [1, 2])

    def test_categoricals_default_is_fresh_dict(self):
        a, b = self.record(), self.record()
        a.categoricals["color"] = np.array([1])
        assert b.categoricals == {}  # no shared mutable default

    def test_truncated_blob_detected(self):
        blob = self.record().to_bytes()
        with pytest.raises(WalCorruptionError):
            WalRecord.from_bytes(blob[: len(blob) // 2])

    def test_bitflip_detected(self):
        blob = bytearray(self.record().to_bytes())
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(WalCorruptionError):
            WalRecord.from_bytes(bytes(blob))

    def test_legacy_unframed_record_still_decodes(self):
        rec = self.record(lsn=3)
        framed = rec.to_bytes()
        legacy_payload = framed[12:]  # strip WREC|crc|len frame
        back = WalRecord.from_bytes(legacy_payload)
        assert back.lsn == 3

    def test_mid_log_corruption_raises_not_truncates(self):
        fs = InMemoryObjectStore()
        wal = WriteAheadLog(fs)
        for i in range(3):
            wal.append_delete(np.array([i]))
        # Damage record 0 while records 1, 2 stay intact.
        path = "wal/000000000000.rec"
        blob = bytearray(fs.read(path))
        blob[-1] ^= 0xFF
        fs.write(path, bytes(blob))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(fs).replay()


class TestRetryPolicy:
    def test_succeeds_through_transient_faults(self):
        plan = FaultPlan(seed=0)
        plan.fail("k", op="write", times=2)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        policy = RetryPolicy(max_attempts=4, sleep=no_sleep, seed=1)
        policy.call(fs.write, "k", b"v")
        assert fs.read("k") == b"v"
        assert policy.retries == 2

    def test_exhaustion_wraps_last_error(self):
        plan = FaultPlan(seed=0)
        plan.fail("k", op="write", times=None)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(fs.write, "k", b"v")
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, IOError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def explode():
            calls.append(1)
            raise KeyError("not transient")

        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        with pytest.raises(KeyError):
            policy.call(explode)
        assert len(calls) == 1

    def test_backoff_schedule_is_seeded_and_bounded(self):
        a = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.2, seed=9)
        b = RetryPolicy(max_attempts=6, base_delay=0.1, multiplier=2.0,
                        max_delay=0.5, jitter=0.2, seed=9)
        da, db = a.preview_delays(), b.preview_delays()
        assert da == db  # deterministic under a fixed seed
        assert all(d <= 0.5 * 1.2 + 1e-12 for d in da)
        assert da[0] < da[-1]  # exponential growth survives jitter

    def test_deadline_caps_planned_sleep(self):
        plan = FaultPlan(seed=0)
        plan.fail("k", op="write", times=None)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        slept = []
        policy = RetryPolicy(
            max_attempts=50, base_delay=1.0, multiplier=1.0, jitter=0.0,
            deadline=2.5, sleep=slept.append,
        )
        with pytest.raises(RetryExhaustedError):
            policy.call(fs.write, "k", b"v")
        assert len(slept) == 2  # third planned sleep would exceed 2.5s

    def test_wrap_decorator(self):
        plan = FaultPlan(seed=0)
        plan.fail("k", op="write", times=1)
        fs = FaultyFileSystem(InMemoryObjectStore(), plan)
        policy = RetryPolicy(max_attempts=2, sleep=no_sleep)
        write = policy.wrap(fs.write)
        write("k", b"v")
        assert fs.read("k") == b"v"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestClientRetryWiring:
    """RetryPolicy rides the SDK and REST layers end to end."""

    def make_router_with_flaky_storage(self, plan, retry):
        from repro.client.rest import RestRouter

        router = RestRouter(retry=retry)
        router.handle("POST", "/collections", {
            "name": "c", "vector_fields": [{"name": "emb", "dim": 4}],
        })
        col = router.client.server.get_collection("c")
        faulty = FaultyFileSystem(col.lsm.fs, plan)
        col.lsm.fs = faulty
        col.lsm.wal.fs = faulty
        return router

    def test_rest_insert_succeeds_through_transient_faults(self):
        plan = FaultPlan(seed=0)
        plan.fail("wal/*", op="write", nth=1, times=2)
        policy = RetryPolicy(max_attempts=4, sleep=no_sleep, seed=3)
        router = self.make_router_with_flaky_storage(plan, policy)
        resp = router.handle("POST", "/collections/c/entities", {
            "data": {"emb": [[0.0, 0.0, 0.0, 1.0], [1.0, 0.0, 0.0, 0.0]]},
        })
        assert resp.status == 201
        assert len(resp.body["ids"]) == 2
        assert policy.retries == 2

    def test_rest_maps_exhausted_retries_to_503(self):
        plan = FaultPlan(seed=0)
        plan.fail("wal/*", op="write", times=None)
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)
        router = self.make_router_with_flaky_storage(plan, policy)
        resp = router.handle("POST", "/collections/c/entities", {
            "data": {"emb": [[0.0, 0.0, 0.0, 1.0]]},
        })
        assert resp.status == 503
        assert resp.body["retryable"] is True
        assert resp.body["attempts"] == 3

    def test_sdk_retry_does_not_double_apply_inserts(self):
        from repro.client.sdk import connect

        client = connect(retry=RetryPolicy(max_attempts=4, sleep=no_sleep))
        client.create_collection("c", {"emb": (4, "l2")})
        col = client.server.get_collection("c")
        plan = FaultPlan(seed=0)
        plan.fail("wal/*", op="write", nth=1, times=2)
        faulty = FaultyFileSystem(col.lsm.fs, plan)
        col.lsm.fs = faulty
        col.lsm.wal.fs = faulty
        client.insert("c", {"emb": np.ones((3, 4), dtype=np.float32)})
        client.flush("c")
        assert client.count("c") == 3  # retried attempts never double-apply
