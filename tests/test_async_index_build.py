"""Asynchronous index building (paper Sec. 5.1)."""

import numpy as np
import pytest

from repro.storage import LSMConfig, LSMManager, TieredMergePolicy
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


def make_lsm(async_build):
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=100,
        index_params={"nlist": 8},
        auto_merge=False,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        async_index_build=async_build,
    )
    return LSMManager(SPECS, (), cfg)


class TestAsyncIndexBuild:
    def test_index_eventually_built(self):
        lsm = make_lsm(async_build=True)
        data = sift_like(300, dim=16, seed=0)
        lsm.insert(np.arange(300), {"emb": data})
        lsm.flush()
        lsm.wait_for_index_builds()
        segment = lsm.live_segments()[0]
        assert segment.has_index("emb")

    def test_search_correct_before_index_ready(self):
        """Searches fall back to brute force while the build is queued;
        results are identical either way."""
        lsm = make_lsm(async_build=True)
        data = sift_like(300, dim=16, seed=1)
        lsm.insert(np.arange(300), {"emb": data})
        lsm.flush()
        # No wait: the index may or may not exist yet.
        result = lsm.search("emb", data[7], 1)
        assert result.ids[0, 0] == 7
        lsm.wait_for_index_builds()
        result = lsm.search("emb", data[7], 1, nprobe=8)
        assert result.ids[0, 0] == 7

    def test_sync_mode_builds_inline(self):
        lsm = make_lsm(async_build=False)
        data = sift_like(300, dim=16, seed=2)
        lsm.insert(np.arange(300), {"emb": data})
        lsm.flush()
        assert lsm.live_segments()[0].has_index("emb")
        lsm.wait_for_index_builds()  # no-op, must not hang

    def test_merged_away_segment_skipped(self):
        """A queued build for a segment that merging removed is a no-op."""
        lsm = make_lsm(async_build=True)
        data = sift_like(400, dim=16, seed=3)
        for i in range(2):
            lsm.insert(np.arange(i * 200, (i + 1) * 200), {"emb": data[i * 200:(i + 1) * 200]})
            lsm.flush()
        lsm.maybe_merge()  # original segments die before builds run
        lsm.wait_for_index_builds()
        result = lsm.search("emb", data[5], 1, nprobe=8)
        assert result.ids[0, 0] == 5
