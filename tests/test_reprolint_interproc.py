"""Tests for reprolint v2: call graph, lock propagation, and the four
interprocedural rules (lock-order, blocking-under-lock,
thread-reachability, escape), plus the baseline / SARIF / stats
machinery.

Each rule gets a seeded known-bad fixture it must fire on and a fixed
variant it must stay quiet on; the call-graph edge cases from the PR
checklist (decorated methods, partial/lambda handed to a pool,
``super()`` dispatch, lock-acquiring properties) are covered
explicitly.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.reprolint.config import LintConfig
from tools.reprolint.engine import ASTCache, Violation, build_project_model
from tools.reprolint.interproc import build_model, run_interproc
from tools.reprolint.report import (
    Baseline, fingerprint, load_baseline, render_sarif, split_by_baseline,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: shared fixture preamble: a sanitizer stub + the structural classes
#: the engine recognizes (FileSystem subclass methods block, WorkerPool
#: spawn methods run callables concurrently).
PRELUDE = """\
import threading


def maybe_sanitize(lock, role):
    return lock


class FileSystem:
    def write(self, path, data):
        pass

    def read(self, path):
        return b""

    def delete(self, path):
        pass


class WorkerPool:
    def map_ordered(self, fns):
        return [fn() for fn in fns]

    def submit(self, fn):
        fn()
"""


def analyze(tmp_path, files, hierarchy=None, allow_blocking=(), **overrides):
    """Write fixture modules, build the model, run the four rules."""
    for name, source in files.items():
        # fixture bodies are indented for readability; PRELUDE is not,
        # so dedent only the suffix
        if source.startswith(PRELUDE):
            source = PRELUDE + textwrap.dedent(source[len(PRELUDE):])
        else:
            source = textwrap.dedent(source)
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    config = LintConfig(
        project_roots=[str(tmp_path)],
        src_root=str(tmp_path),
        contracts=False,
        baseline_path=None,
        lock_hierarchy=[list(level) for level in (hierarchy or [])],
        allow_blocking=list(allow_blocking),
        **overrides,
    )
    project = build_project_model(config)
    return project, run_interproc(project, config)


def rules_fired(violations):
    return {v.rule for v in violations}


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------


class TestLockOrder:
    HIERARCHY = [["outer"], ["inner"]]

    def test_inversion_through_call_chain_fires(self, tmp_path):
        project, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._outer = maybe_sanitize(threading.Lock(), "outer")
                    self._inner = maybe_sanitize(threading.Lock(), "inner")

                def bad(self):
                    with self._inner:
                        self.helper()

                def helper(self):
                    with self._outer:
                        pass
            """,
        }, hierarchy=self.HIERARCHY)
        hits = [v for v in violations if v.rule == "lock-order"]
        assert hits, violations
        assert "outer" in hits[0].message and "inner" in hits[0].message
        # the witness chain names the propagating call edge
        assert "Engine.helper" in hits[0].message

    def test_correct_nesting_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._outer = maybe_sanitize(threading.Lock(), "outer")
                    self._inner = maybe_sanitize(threading.Lock(), "inner")

                def good(self):
                    with self._outer:
                        self.helper()

                def helper(self):
                    with self._inner:
                        pass
            """,
        }, hierarchy=self.HIERARCHY)
        assert "lock-order" not in rules_fired(violations)

    def test_same_level_siblings_must_not_nest(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._a = maybe_sanitize(threading.Lock(), "sib_a")
                    self._b = maybe_sanitize(threading.Lock(), "sib_b")

                def bad(self):
                    with self._a:
                        with self._b:
                            pass
            """,
        }, hierarchy=[["sib_a", "sib_b"]])
        hits = [v for v in violations if v.rule == "lock-order"]
        assert hits and "same-level sibling" in hits[0].message

    def test_undeclared_role_that_nests_is_reported(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._outer = maybe_sanitize(threading.Lock(), "outer")
                    self._mystery = maybe_sanitize(threading.Lock(), "mystery")

                def run(self):
                    with self._outer:
                        with self._mystery:
                            pass
            """,
        }, hierarchy=self.HIERARCHY)
        hits = [v for v in violations if v.rule == "lock-order"]
        assert any("mystery" in v.message and "not declared" in v.message
                   for v in hits)

    def test_rlock_reacquire_is_allowed(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.RLock(), "outer")

                def outer_op(self):
                    with self._lock:
                        self.inner_op()

                def inner_op(self):
                    with self._lock:
                        pass
            """,
        }, hierarchy=self.HIERARCHY)
        assert "lock-order" not in rules_fired(violations)

    def test_plain_lock_reacquire_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "outer")

                def outer_op(self):
                    with self._lock:
                        self.inner_op()

                def inner_op(self):
                    with self._lock:
                        pass
            """,
        }, hierarchy=self.HIERARCHY)
        hits = [v for v in violations if v.rule == "lock-order"]
        assert hits and "non-reentrant" in hits[0].message


# ---------------------------------------------------------------------------
# blocking-under-lock
# ---------------------------------------------------------------------------


class TestBlockingUnderLock:
    def test_fs_write_deep_under_lock_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.fs = Store()

                def flush(self):
                    with self._lock:
                        self.persist()

                def persist(self):
                    self.fs.write("seg", b"data")
            """,
        })
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert hits, violations
        assert "filesystem I/O" in hits[0].message
        assert "engine" in hits[0].message

    def test_write_hoisted_out_of_lock_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.fs = Store()

                def flush(self):
                    with self._lock:
                        payload = b"data"
                    self.fs.write("seg", payload)
            """,
        })
        assert "blocking-under-lock" not in rules_fired(violations)

    def test_time_sleep_under_lock_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            import time


            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")

                def retry(self):
                    with self._lock:
                        time.sleep(0.1)
            """,
        })
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert hits and "time.sleep" in hits[0].message

    def test_allow_blocking_role_is_exempt(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class Wal:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "wal")
                    self.fs = Store()

                def append(self):
                    with self._lock:
                        self.fs.write("rec", b"entry")
            """,
        }, allow_blocking=["wal"])
        assert "blocking-under-lock" not in rules_fired(violations)

    def test_pool_submit_under_lock_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.pool = WorkerPool()

                def fan_out(self):
                    with self._lock:
                        self.pool.submit(self.work)

                def work(self):
                    pass
            """,
        })
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert hits and "pool submit/wait" in hits[0].message


# ---------------------------------------------------------------------------
# thread-reachability
# ---------------------------------------------------------------------------


class TestThreadReachability:
    def test_unguarded_mutation_in_thread_target_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_sealed": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._sealed = []
                    self.progress = 0
                    self._thread = threading.Thread(target=self._loop, daemon=True)

                def _loop(self):
                    while True:
                        self.progress += 1
            """,
        })
        hits = [v for v in violations if v.rule == "thread-reachability"]
        assert hits, violations
        assert "'progress'" in hits[0].message

    def test_guarded_mutation_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"progress": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.progress = 0
                    self._thread = threading.Thread(target=self._loop, daemon=True)

                def _loop(self):
                    while True:
                        with self._lock:
                            self.progress += 1
            """,
        })
        assert "thread-reachability" not in rules_fired(violations)

    def test_mutation_not_reachable_from_any_root_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_sealed": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._sealed = []
                    self.progress = 0

                def bump(self):
                    self.progress += 1
            """,
        })
        assert "thread-reachability" not in rules_fired(violations)

    def test_pool_task_lambda_counts_as_root(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_sealed": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._sealed = []
                    self.scanned = 0
                    self.pool = WorkerPool()

                def scan(self):
                    self.pool.map_ordered([lambda: self._scan_one()])

                def _scan_one(self):
                    self.scanned += 1
            """,
        })
        hits = [v for v in violations if v.rule == "thread-reachability"]
        assert hits and "'scanned'" in hits[0].message


# ---------------------------------------------------------------------------
# escape
# ---------------------------------------------------------------------------


class TestEscape:
    def test_returning_lock_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")

                def lock(self):
                    return self._lock
            """,
        })
        hits = [v for v in violations if v.rule == "escape"]
        assert hits and "leaks lock" in hits[0].message

    def test_returning_guarded_container_fires(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._items = []

                def items(self):
                    with self._lock:
                        return self._items
            """,
        })
        hits = [v for v in violations if v.rule == "escape"]
        assert hits and "_items" in hits[0].message

    def test_returning_copy_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_items": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._items = []

                def items(self):
                    with self._lock:
                        return list(self._items)
            """,
        })
        assert "escape" not in rules_fired(violations)

    def test_returning_immutable_snapshot_field_is_quiet(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                _GUARDED_BY = {"_segments": "_lock"}

                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self._segments = ()

                def commit(self, seg):
                    with self._lock:
                        self._segments = tuple(list(self._segments) + [seg])

                def segments(self):
                    with self._lock:
                        return self._segments
            """,
        })
        assert "escape" not in rules_fired(violations)


# ---------------------------------------------------------------------------
# call-graph edge cases (PR checklist)
# ---------------------------------------------------------------------------


class TestCallGraphEdgeCases:
    def test_decorated_method_still_resolves(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            def traced(fn):
                return fn


            class Store(FileSystem):
                pass


            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.fs = Store()

                def flush(self):
                    with self._lock:
                        self.persist()

                @traced
                def persist(self):
                    self.fs.write("seg", b"data")
            """,
        })
        assert "blocking-under-lock" in rules_fired(violations)

    def test_partial_handed_to_pool_is_a_root(self, tmp_path):
        project, _ = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            import functools


            class Engine:
                def __init__(self):
                    self.pool = WorkerPool()

                def scan(self):
                    self.pool.map_ordered([functools.partial(self._scan_one, 3)])

                def _scan_one(self, n):
                    return n
            """,
        })
        assert any(root.endswith("Engine._scan_one") for root in project.roots)

    def test_lambda_handed_to_pool_reaches_callee(self, tmp_path):
        project, _ = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self.pool = WorkerPool()

                def scan(self):
                    self.pool.map_ordered([lambda: self._scan_one()])

                def _scan_one(self):
                    return 1
            """,
        })
        lambdas = [qn for qn in project.roots if "<lambda>" in qn]
        assert lambdas
        lam = project.functions[lambdas[0]]
        assert any(
            t.endswith("Engine._scan_one") for c in lam.calls for t in c.targets
        )

    def test_super_dispatch_propagates_held_locks(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class BaseIndex:
                def save(self, fs):
                    fs.write("idx", b"data")


            class GraphIndex(BaseIndex):
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.fs = Store()

                def save(self, fs):
                    super().save(fs)

                def checkpoint(self):
                    with self._lock:
                        self.save(self.fs)
            """,
        })
        # lock held in checkpoint -> GraphIndex.save -> super() ->
        # BaseIndex.save -> fs.write (annotated param typing carries fs)
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert not hits  # fs param untyped in BaseIndex: documented limit
        # now the typed variant must fire
        _, violations = analyze(tmp_path / "typed", {
            "mod2.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class BaseIndex:
                def save(self, fs: "Store"):
                    fs.write("idx", b"data")


            class GraphIndex(BaseIndex):
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.fs = Store()

                def save(self, fs: "Store"):
                    super().save(fs)

                def checkpoint(self):
                    with self._lock:
                        self.save(self.fs)
            """,
        })
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert hits, violations
        assert any("BaseIndex.save" in (v.symbol or "") for v in hits)

    def test_virtual_dispatch_covers_subclass_overrides(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Store(FileSystem):
                pass


            class BaseIndex:
                def save(self):
                    pass


            class DiskIndex(BaseIndex):
                def __init__(self):
                    self.fs = Store()

                def save(self):
                    self.fs.write("idx", b"data")


            class Engine:
                def __init__(self):
                    self._lock = maybe_sanitize(threading.Lock(), "engine")
                    self.index: BaseIndex = BaseIndex()

                def checkpoint(self):
                    with self._lock:
                        self.index.save()
            """,
        })
        # static type is BaseIndex, but DiskIndex.save is a may-target
        hits = [v for v in violations if v.rule == "blocking-under-lock"]
        assert hits, violations

    def test_property_that_acquires_lock_creates_edge(self, tmp_path):
        _, violations = analyze(tmp_path, {
            "mod.py": PRELUDE + """
            class Engine:
                def __init__(self):
                    self._outer = maybe_sanitize(threading.Lock(), "outer")
                    self._inner = maybe_sanitize(threading.Lock(), "inner")
                    self._version = 0

                @property
                def version(self):
                    with self._outer:
                        return self._version

                def report(self):
                    with self._inner:
                        return self.version
            """,
        }, hierarchy=[["outer"], ["inner"]])
        hits = [v for v in violations if v.rule == "lock-order"]
        assert hits, violations
        assert "acquires 'outer' while holding 'inner'" in hits[0].message


# ---------------------------------------------------------------------------
# baseline / fingerprints
# ---------------------------------------------------------------------------


class TestBaseline:
    def _violation(self, line=10):
        return Violation(
            path="src/repro/storage/lsm.py", line=line, col=4,
            rule="blocking-under-lock",
            message=f"blocking call fs.write at :{line} while holding ['lsm']",
            symbol="repro.storage.lsm.LSMManager._persist_segment",
        )

    def test_fingerprint_survives_line_drift(self):
        assert fingerprint(self._violation(10)) == fingerprint(self._violation(99))

    def test_fingerprint_distinguishes_rules_and_symbols(self):
        a = self._violation()
        b = Violation(a.path, a.line, a.col, "escape", a.message, a.symbol)
        c = Violation(a.path, a.line, a.col, a.rule, a.message, "other.symbol")
        assert len({fingerprint(a), fingerprint(b), fingerprint(c)}) == 3

    def test_split_and_write_round_trip(self, tmp_path):
        known = self._violation()
        fresh = Violation("a.py", 1, 0, "escape", "leak", "m.C.f")
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), [known])
        baseline = load_baseline(str(baseline_file))
        new, old, stale = split_by_baseline([known, fresh], baseline)
        assert new == [fresh]
        assert old == [known]
        assert stale == []

    def test_stale_entries_reported(self, tmp_path):
        baseline_file = tmp_path / "baseline.json"
        write_baseline(str(baseline_file), [self._violation()])
        baseline = load_baseline(str(baseline_file))
        new, old, stale = split_by_baseline([], baseline)
        assert new == [] and old == []
        assert len(stale) == 1

    def test_missing_baseline_is_empty(self):
        assert load_baseline("does/not/exist.json").entries == {}
        assert load_baseline(None).entries == {}


# ---------------------------------------------------------------------------
# SARIF
# ---------------------------------------------------------------------------


class TestSarif:
    def test_sarif_shape(self):
        v = Violation("src/a.py", 3, 1, "lock-order", "bad nesting", "m.C.f")
        doc = json.loads(render_sarif([v], [], {"lock-order": "why"}))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        assert run["tool"]["driver"]["rules"][0]["id"] == "lock-order"
        result = run["results"][0]
        assert result["ruleId"] == "lock-order"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/a.py"
        assert loc["region"]["startLine"] == 3
        assert "suppressions" not in result

    def test_baselined_findings_marked_suppressed(self):
        v = Violation("src/a.py", 3, 1, "escape", "leak", "m.C.f")
        doc = json.loads(render_sarif([], [v]))
        result = doc["runs"][0]["results"][0]
        assert result["suppressions"][0]["kind"] == "external"


# ---------------------------------------------------------------------------
# CLI integration (stats, explain, shipped-tree gate)
# ---------------------------------------------------------------------------


class TestCliV2:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
        )

    def test_stats_coverage_meets_floor(self):
        proc = self._run("--stats", "--no-cache")
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
        assert stats["coverage"] >= 0.95
        assert stats["functions_indexed"] >= stats["functions_found"] * 0.95
        assert "lsm" in stats["lock_roles"]
        assert stats["concurrency_roots"]

    def test_explain_prints_rationale_for_every_rule(self):
        proc = self._run("--list-rules")
        rules = [r for r in proc.stdout.split() if r != "contract"]
        assert "lock-order" in rules and "blocking-under-lock" in rules
        for rule in rules:
            proc = self._run("--explain", rule)
            assert proc.returncode == 0, (rule, proc.stderr)
            assert f"[{rule}]" in proc.stdout
            assert len(proc.stdout.splitlines()) >= 3, rule

    def test_explain_unknown_rule_is_usage_error(self):
        proc = self._run("--explain", "no-such-rule")
        assert proc.returncode == 2

    def test_interproc_rules_listed(self):
        proc = self._run("--list-rules")
        listed = set(proc.stdout.split())
        assert {"lock-order", "blocking-under-lock", "thread-reachability",
                "escape"} <= listed

    def test_sarif_output_parses(self):
        proc = self._run("src/repro/utils", "--output=sarif", "--no-cache")
        doc = json.loads(proc.stdout)
        assert doc["version"] == "2.1.0"

    def test_baseline_gate_blocks_new_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def f(acc=[]):\n"
            "    return acc\n"
        )
        # finding not in the committed baseline -> exit 1
        proc = self._run("--no-contracts", "--no-interproc", str(bad))
        assert proc.returncode == 1
        assert "mutable-default" in proc.stdout
        # write a local baseline accepting it -> exit 0
        local = tmp_path / "baseline.json"
        proc = self._run(
            "--no-contracts", "--no-interproc", "--write-baseline",
            "--baseline", str(local), str(bad),
        )
        assert proc.returncode == 0
        proc = self._run(
            "--no-contracts", "--no-interproc", "--baseline", str(local), str(bad)
        )
        assert proc.returncode == 0, proc.stdout


# ---------------------------------------------------------------------------
# AST cache
# ---------------------------------------------------------------------------


class TestAstCache:
    def test_memory_cache_hits_on_second_parse(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        cache = ASTCache()
        cache.load(str(target))
        assert cache.misses == 1
        _, _, tree, _ = cache.load(str(target))
        assert cache.hits == 1 and tree is not None

    def test_disk_cache_survives_new_instance(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f():\n    return 1\n")
        disk = str(tmp_path / "cache")
        first = ASTCache(disk)
        first.load(str(target))
        assert first.misses == 1
        second = ASTCache(disk)
        _, _, tree, _ = second.load(str(target))
        assert second.hits == 1 and tree is not None

    def test_content_change_invalidates(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("x = 1\n")
        cache = ASTCache()
        cache.load(str(target))
        target.write_text("x = 2\n")
        cache.load(str(target))
        assert cache.misses == 2

    def test_syntax_error_reported_not_cached(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(:\n")
        cache = ASTCache()
        relpath, _, tree, error = cache.load(str(target))
        assert tree is None and error is not None and "syntax" in error
