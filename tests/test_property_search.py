"""Cross-cutting property tests on the search machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.hetero import CacheAwareSearcher
from repro.index import FlatIndex, IVFFlatIndex
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.storage.wal import WalRecord
from repro.index.ivf_pq import ProductQuantizer
from repro.utils import merge_topk, topk_from_scores


def _vectors(rows, cols):
    return hnp.arrays(
        np.float32, (rows, cols),
        elements=st.floats(-50, 50, width=32, allow_nan=False),
    )


class TestIVFMatchesFlat:
    @given(st.integers(0, 2**31 - 1), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_full_probe_equals_exact(self, seed, k):
        """IVF with nprobe=nlist must return exactly FLAT's results."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(120, 8)).astype(np.float32)
        queries = rng.normal(size=(3, 8)).astype(np.float32)
        flat = FlatIndex(8)
        flat.add(data)
        ivf = IVFFlatIndex(8, nlist=4, seed=0)
        ivf.train(data)
        ivf.add(data)
        r_flat = flat.search(queries, k)
        r_ivf = ivf.search(queries, k, nprobe=4)
        # Scores must agree exactly (ids may swap only on exact ties).
        np.testing.assert_allclose(r_flat.scores, r_ivf.scores, rtol=1e-4, atol=1e-2)


class TestMergeTopkEquivalence:
    @given(
        st.lists(
            st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=0, max_size=20),
            min_size=1, max_size=5,
        ),
        st.integers(1, 8),
    )
    @settings(max_examples=50, deadline=None)
    def test_partitioned_merge_equals_global(self, partitions, k):
        """merge_topk over partitions == topk over the concatenation."""
        offset = 0
        parts = []
        all_scores = []
        for scores in partitions:
            arr = np.array(scores)
            ids = np.arange(offset, offset + len(arr), dtype=np.int64)
            top_ids, top_scores = topk_from_scores(arr, k, ids=ids)
            parts.append((top_ids, top_scores))
            all_scores.extend(scores)
            offset += len(arr)
        merged_ids, merged_scores = merge_topk(parts, k)
        expected = np.sort(np.array(all_scores))[: min(k, len(all_scores))]
        np.testing.assert_allclose(np.sort(merged_scores), expected)


class TestBlockSizeInvariance:
    @given(st.integers(1, 64), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_any_block_size_same_scores(self, block_size, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(200, 6)).astype(np.float32)
        queries = rng.normal(size=(17, 6)).astype(np.float32)
        searcher = CacheAwareSearcher(data, "l2")
        __, ref_scores = searcher.search_original(queries, 5)
        __, got_scores = searcher.search_cache_aware(
            queries, 5, threads=3, block_size=block_size
        )
        np.testing.assert_allclose(ref_scores, got_scores, rtol=1e-4, atol=1e-2)


class TestWalRoundtripProperty:
    @given(_vectors(4, 3), st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                                    min_size=4, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_record_roundtrip(self, vectors, attrs):
        record = WalRecord(
            7, "insert", np.arange(4, dtype=np.int64),
            {"emb": vectors}, {"price": np.array(attrs)},
            {"color": np.arange(4, dtype=np.int64)},
        )
        restored = WalRecord.from_bytes(record.to_bytes())
        assert restored.lsn == 7 and restored.kind == "insert"
        np.testing.assert_array_equal(restored.vectors["emb"], vectors)
        np.testing.assert_allclose(restored.attributes["price"], attrs)
        np.testing.assert_array_equal(
            restored.categoricals["color"], np.arange(4)
        )


class TestPQIdempotence:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_encode_decode_encode_fixed_point(self, seed):
        """Re-encoding a decoded vector returns the same codes."""
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(300, 8)).astype(np.float32)
        pq = ProductQuantizer(8, m=2, nbits=4, seed=0).train(data)
        codes = pq.encode(data[:20])
        again = pq.encode(pq.decode(codes))
        np.testing.assert_array_equal(codes, again)


class TestSearchResultInvariants:
    @given(st.integers(1, 5), st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_padding_never_interleaves(self, nq, k):
        """Valid ids are a prefix of each row; padding is a suffix."""
        metric = get_metric("l2")
        rows = [[(i, float(i)) for i in range(min(k, q + 1))] for q in range(nq)]
        result = SearchResult.from_rows(rows, k, metric)
        for qi in range(nq):
            ids = result.ids[qi]
            seen_pad = False
            for value in ids:
                if value == -1:
                    seen_pad = True
                else:
                    assert not seen_pad, "valid id after padding"

    def test_row_skips_padding(self):
        metric = get_metric("l2")
        result = SearchResult.from_rows([[(3, 1.0)]], 4, metric)
        assert result.row(0) == [(3, 1.0)]
