"""GPU search engine over LSM segments + the FPGA IVF_PQ model."""

import numpy as np
import pytest

from repro.hetero import FPGAPQExecutor, FPGASpec, GPUDevice, GPUSearchEngine
from repro.index import IVFPQIndex
from repro.storage import LSMConfig, LSMManager, TieredMergePolicy
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


@pytest.fixture()
def lsm_with_segments():
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        auto_merge=False,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
    )
    lsm = LSMManager(SPECS, (), cfg)
    data = sift_like(900, dim=16, seed=0)
    for i in range(3):
        sl = slice(i * 300, (i + 1) * 300)
        lsm.insert(np.arange(sl.start, sl.stop), {"emb": data[sl]})
        lsm.flush()
    return lsm, data


class TestGPUSearchEngine:
    def test_results_match_plain_search(self, lsm_with_segments):
        lsm, data = lsm_with_segments
        engine = GPUSearchEngine(lsm, [GPUDevice(device_id=0), GPUDevice(device_id=1)])
        outcome = engine.search("emb", data[:5], 3)
        plain = lsm.search("emb", data[:5], 3)
        np.testing.assert_array_equal(outcome.result.ids, plain.ids)

    def test_one_task_per_segment(self, lsm_with_segments):
        lsm, data = lsm_with_segments
        engine = GPUSearchEngine(lsm, [GPUDevice(device_id=0)])
        outcome = engine.search("emb", data[:2], 3)
        assert len(outcome.assignments) == 3  # three segments

    def test_makespan_shrinks_with_more_devices(self, lsm_with_segments):
        lsm, data = lsm_with_segments
        one = GPUSearchEngine(lsm, [GPUDevice(device_id=0)])
        m1 = one.search("emb", data[:2], 3).makespan_seconds
        three = GPUSearchEngine(
            lsm, [GPUDevice(device_id=i) for i in range(3)]
        )
        m3 = three.search("emb", data[:2], 3).makespan_seconds
        assert m3 < m1

    def test_elastic_device_addition(self, lsm_with_segments):
        lsm, data = lsm_with_segments
        engine = GPUSearchEngine(lsm, [GPUDevice(device_id=0)])
        engine.search("emb", data[:2], 3)
        engine.add_device(GPUDevice(device_id=1))
        outcome = engine.search("emb", data[:2], 3)
        assert {a.device_id for a in outcome.assignments} == {0, 1}

    def test_respects_tombstones(self, lsm_with_segments):
        lsm, data = lsm_with_segments
        lsm.delete(np.array([5]))
        lsm.flush()
        engine = GPUSearchEngine(lsm, [GPUDevice(device_id=0)])
        outcome = engine.search("emb", data[5], 1)
        assert outcome.result.ids[0, 0] != 5

    def test_needs_devices(self, lsm_with_segments):
        lsm, __ = lsm_with_segments
        with pytest.raises(ValueError):
            GPUSearchEngine(lsm, [])


class TestFPGAPQ:
    def test_real_results_pass_through(self):
        data = sift_like(600, dim=16, seed=1)
        index = IVFPQIndex(16, nlist=8, m=4, seed=0)
        index.train(data)
        index.add(data)
        executor = FPGAPQExecutor(index=index)
        result = executor.search(data[:3], 5, nprobe=8)
        plain = index.search(data[:3], 5, nprobe=8)
        np.testing.assert_array_equal(result.ids, plain.ids)

    def test_fpga_wins_at_scale(self):
        """The paper's 'initial results are encouraging' claim: the
        offload should show a clear modeled speedup at billion scale."""
        executor = FPGAPQExecutor()
        speedup = executor.model_speedup(m=100, n=10**9)
        assert speedup > 2

    def test_tiny_workloads_not_worth_offloading(self):
        executor = FPGAPQExecutor()
        # A few thousand codes: setup + table upload dominates.
        assert executor.model_speedup(m=1, n=2000) < 1

    def test_speedup_grows_with_batch(self):
        executor = FPGAPQExecutor()
        s_small = executor.model_speedup(m=1, n=10**8)
        s_big = executor.model_speedup(m=500, n=10**8)
        assert s_big >= s_small

    def test_dram_capacity_check(self):
        executor = FPGAPQExecutor(spec=FPGASpec(dram_bytes=1000))
        assert executor.fits(n=100, msub=8)
        assert not executor.fits(n=1000, msub=8)

    def test_first_batch_pays_code_upload(self):
        executor = FPGAPQExecutor()
        cold = executor.model_fpga_seconds(10, 10**8, 8, 64, 16384, first_batch=True)
        warm = executor.model_fpga_seconds(10, 10**8, 8, 64, 16384, first_batch=False)
        assert cold > warm

    def test_search_without_index_raises(self):
        with pytest.raises(RuntimeError):
            FPGAPQExecutor().search(np.zeros((1, 4), dtype=np.float32), 1)
