"""Query EXPLAIN/ANALYZE: profile trees, exact work counters, REST.

Covers the :mod:`repro.obs.profile` primitives, the planner dump from
:mod:`repro.obs.explain`, and the PR's determinism contract: work
counters are exact integers, identical across two seeded runs and
between serial and pooled execution (IVF_FLAT, HNSW, and a filtered
cluster fan-out).  Comparisons always *warm up first* — the very first
query on a fresh engine populates the norm caches, so its
``normcache_misses`` differ from every later run by design.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.bench import MEASUREMENT_KEYS, emit_bench_json
from repro.client import RestRouter
from repro.core import (
    AttributeField,
    Collection,
    CollectionSchema,
    VectorField,
)
from repro.datasets import random_queries, sift_like
from repro.distributed import MilvusCluster
from repro.index import (
    AnnoyIndex,
    FlatIndex,
    HNSWIndex,
    IVFFlatIndex,
    IVFPQIndex,
    IVFSQ8Index,
    NSGIndex,
)
from repro.obs import SlowQueryLog
from repro.obs.explain import ExplainedResult
from repro.obs.profile import (
    NULL_STAGE,
    Profiler,
    QueryProfile,
    current_node,
    profile_count,
    profile_stage,
)
from repro.storage import LSMConfig, TieredMergePolicy

from tools import bench_compare


@pytest.fixture()
def obs_on():
    handle = obs.enable()
    yield handle
    obs.disable()


def build_collection(data, prices, index_type="IVF_FLAT", n_segments=2,
                     name="prof", **index_params):
    """Collection with ``n_segments`` sealed segments and built indexes."""
    schema = CollectionSchema(
        name,
        vector_fields=[VectorField("emb", data.shape[1])],
        attribute_fields=[AttributeField("price")],
    )
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=64, min_segment_bytes=1),
        # keep fully-tombstoned segments around: the explain tests below
        # assert the planner *skips* them rather than compaction purging them
        tombstone_purge_ratio=0.0,
    )
    coll = Collection(schema, lsm_config=cfg)
    for chunk, price_chunk in zip(
        np.array_split(data, n_segments), np.array_split(prices, n_segments)
    ):
        coll.insert({"emb": chunk, "price": price_chunk})
        coll.flush()
    coll.create_index("emb", index_type, **index_params)
    return coll


@pytest.fixture(scope="module")
def prof_data():
    data = sift_like(400, dim=16, n_clusters=8, seed=21)
    prices = np.linspace(0.0, 100.0, len(data))
    queries = random_queries(data, 4, seed=22)
    return data, prices, queries


# -- profile primitives ----------------------------------------------------


class TestProfilePrimitives:
    def test_stage_tree_counters_and_to_dict(self):
        with QueryProfile("q", nq=2) as prof:
            with profile_stage("outer", seg=1) as outer:
                profile_count("rows_scanned", 10)
                with outer.stage("inner"):
                    profile_count("rows_scanned", 5)
                    profile_count("heap_pushes")
        assert prof.root.attrs["nq"] == 2
        assert prof.total_counters() == {"rows_scanned": 15, "heap_pushes": 1}
        tree = prof.to_dict()
        assert set(tree) == {"trace_id", "root", "total_counters"}
        (outer_d,) = tree["root"]["children"]
        assert outer_d["name"] == "outer"
        assert outer_d["counters"] == {"rows_scanned": 10}
        assert outer_d["children"][0]["counters"] == {
            "rows_scanned": 5, "heap_pushes": 1,
        }
        assert prof.seconds >= 0.0

    def test_helpers_are_noops_without_active_profile(self):
        assert current_node() is None
        profile_count("rows_scanned", 3)          # must not raise
        assert profile_stage("orphan") is NULL_STAGE  # reprolint: disable=span-context
        assert NULL_STAGE.stage("child") is NULL_STAGE
        with NULL_STAGE as s:
            s.count("x", 1)
            s.set_attr("k", "v")

    def test_exception_marks_stage(self):
        prof = QueryProfile("q")
        with pytest.raises(RuntimeError):
            with prof:
                with profile_stage("boom"):
                    raise RuntimeError("nope")
        assert prof.root.children[0].attrs["error"] == "RuntimeError"

    def test_profiler_store_is_lru(self):
        store = Profiler(max_profiles=2)
        for i in range(3):
            store.record(f"t{i}", QueryProfile("q"))
        assert store.profile_ids() == ["t1", "t2"]
        assert store.get("t0") is None
        assert store.get("t2") is not None
        auto = store.record(None, QueryProfile("q"))
        assert auto.startswith("p") and store.get(auto) is not None
        store.clear()
        assert store.profile_ids() == []


# -- EXPLAIN plan content --------------------------------------------------


class TestExplain:
    def test_plan_and_counters(self, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        res = coll.search("emb", queries, 5, explain=True)
        assert isinstance(res, ExplainedResult)
        plan = res.plan
        assert plan["collection"] == "prof"
        assert plan["field"] == "emb"
        assert plan["k"] == 5 and plan["nq"] == len(queries)
        assert len(plan["segments"]) == 2
        for entry in plan["segments"]:
            assert entry["plan"] == "index:IVF_FLAT"
            assert entry["selected"] is True
            assert entry["index"]["nlist"] == 8
        counters = res.profile.total_counters()
        assert counters["distance_evals"] > 0
        assert counters["rows_scanned"] > 0
        assert counters["buckets_probed"] > 0
        # plain dict round-trips to JSON (REST serves it verbatim)
        json.dumps(res.to_dict())

    def test_filter_section_reports_cost_model(self, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        res = coll.search(
            "emb", queries[:1], 5, filter=("price", 10.0, 50.0), explain=True
        )
        section = res.plan["filter"]
        assert 0.0 < section["selectivity"] < 1.0
        assert section["recommended"] in ("A", "B", "C")
        assert set(section["cost_model"]) == {"A", "B", "C"}
        if section.get("adaptive"):  # REPRO_ADAPTIVE=1 run
            assert section["executed"] in ("A", "B", "C")
            assert "knobs" in section
        else:
            assert section["executed"] == "B"
            assert res.profile.total_counters()["candidates_pruned"] > 0

    def test_empty_segments_are_skipped_with_reason(self, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        ids = coll.insert({"emb": data[:10], "price": prices[:10]})
        coll.flush()
        coll.delete(ids)
        coll.flush()                     # deletes are visible after flush
        res = coll.search("emb", queries[:1], 3, explain=True)
        skipped = [e for e in res.plan["segments"] if not e["selected"]]
        assert skipped and skipped[0]["reason"] == "all rows tombstoned"


# -- determinism contract --------------------------------------------------


def _explain_counters(coll, queries, k=5, **kw):
    return coll.search("emb", queries, k, explain=True, **kw).profile.total_counters()


class TestDeterminism:
    def test_identical_across_two_seeded_builds(self, prof_data):
        data, prices, queries = prof_data
        runs = []
        for __ in range(2):
            coll = build_collection(data, prices, nlist=8, seed=0)
            _explain_counters(coll, queries)        # warm the norm caches
            runs.append(_explain_counters(coll, queries))
        assert runs[0] == runs[1]
        assert all(isinstance(v, int) for v in runs[0].values())

    def test_serial_matches_pooled_ivf_flat(self, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        _explain_counters(coll, queries, parallel=False)
        _explain_counters(coll, queries, parallel=True, pool_size=4)
        serial = _explain_counters(coll, queries, parallel=False)
        pooled = _explain_counters(coll, queries, parallel=True, pool_size=4)
        assert serial == pooled

    def test_serial_matches_pooled_hnsw(self, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(
            data, prices, index_type="HNSW", M=8, ef_construction=32, seed=0
        )
        _explain_counters(coll, queries, parallel=False)
        _explain_counters(coll, queries, parallel=True, pool_size=4)
        serial = _explain_counters(coll, queries, parallel=False)
        pooled = _explain_counters(coll, queries, parallel=True, pool_size=4)
        assert serial == pooled
        assert serial["heap_pushes"] > 0

    def test_serial_matches_pooled_filtered_cluster(self):
        data = sift_like(300, dim=16, n_clusters=8, seed=23)
        queries = random_queries(data, 3, seed=24)
        cluster = MilvusCluster(
            3, dim=16, index_type="IVF_FLAT",
            index_params={"nlist": 8, "seed": 0},
        )
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        row_filter = np.arange(0, len(data), 2, dtype=np.int64)

        def run(**kw):
            res = cluster.search(
                queries, 5, explain=True, row_filter=row_filter, **kw
            )
            return res.result.ids, res.profile.total_counters()

        run(parallel=False)
        run(parallel=True, pool_size=4)
        ids_s, serial = run(parallel=False)
        ids_p, pooled = run(parallel=True, pool_size=4)
        assert serial == pooled
        assert serial["candidates_pruned"] > 0     # the filter did prune
        np.testing.assert_array_equal(ids_s, ids_p)

    def test_cluster_profile_has_one_stage_per_shard(self):
        data = sift_like(120, dim=8, seed=25)
        cluster = MilvusCluster(2, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        res = cluster.search(random_queries(data, 2, seed=26), 3, explain=True)
        names = [c.name for c in res.profile.root.children]
        assert names == ["shard.search", "shard.search"]
        nodes = sorted(c.attrs["node"] for c in res.profile.root.children)
        assert nodes == ["reader-0", "reader-1"]


# -- disabled-path contract ------------------------------------------------


@pytest.fixture()
def obs_off(monkeypatch):
    """Force observability off even when the suite runs REPRO_OBS=1."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    obs.disable()
    yield


class TestDisabledPath:
    def test_search_returns_plain_result_and_records_nothing(
        self, obs_off, prof_data
    ):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        result = coll.search("emb", queries, 5)
        assert not isinstance(result, ExplainedResult)
        assert obs.get_obs().profiler.profile_ids() == []
        assert current_node() is None

    def test_explain_works_with_obs_off(self, obs_off, prof_data):
        """EXPLAIN ANALYZE is not gated on REPRO_OBS — only the
        profiler *store* is."""
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        res = coll.search("emb", queries[:1], 3, explain=True)
        assert res.profile.total_counters()["distance_evals"] > 0
        assert obs.get_obs().profiler.profile_ids() == []


# -- profiler store, REST, slowlog -----------------------------------------


def _rest_collection(router, name="t", dim=8, n=60, seed=30):
    data = sift_like(n, dim=dim, seed=seed)
    router.handle("POST", "/collections", {
        "name": name, "vector_fields": [{"name": "emb", "dim": dim}],
    })
    router.handle("POST", f"/collections/{name}/entities", {
        "data": {"emb": data.tolist()},
    })
    router.handle("POST", "/flush", {})
    return data


class TestStoreAndRest:
    def test_every_search_is_profiled_when_enabled(self, obs_on, prof_data):
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        coll.search("emb", queries, 5)
        ids = obs_on.profiler.profile_ids()
        assert len(ids) == 1
        profile = obs_on.profiler.get(ids[-1])
        assert profile.root.name == "collection.search"
        assert profile.total_counters()["distance_evals"] > 0

    def test_nested_search_joins_ambient_profile(self, obs_on, prof_data):
        """A search issued while a profile is active becomes a stage of
        it instead of spawning (and recording) its own profile."""
        data, prices, queries = prof_data
        coll = build_collection(data, prices, nlist=8, seed=0)
        with QueryProfile("outer") as prof:
            coll.search("emb", queries[:1], 3)
        assert obs_on.profiler.profile_ids() == []
        assert prof.root.children[0].name == "collection.search"

    def test_rest_profile_endpoints(self, obs_on):
        router = RestRouter()
        data = _rest_collection(router)
        router.handle("POST", "/collections/t/search", {
            "field": "emb", "queries": data[:2].tolist(), "k": 3,
        })
        listing = router.handle("GET", "/profiles")
        assert listing.ok and len(listing.body["profile_ids"]) == 1
        trace_id = listing.body["profile_ids"][-1]
        tree = router.handle("GET", f"/profiles/{trace_id}")
        assert tree.ok
        assert tree.body["total_counters"]["distance_evals"] > 0
        assert router.handle("GET", "/profiles/t999999").status == 404

    def test_rest_explain_endpoint(self):
        router = RestRouter()
        data = _rest_collection(router)
        resp = router.handle("POST", "/explain", {
            "collection": "t", "field": "emb",
            "queries": data[:2].tolist(), "k": 3,
        })
        assert resp.ok
        assert resp.body["plan"]["field"] == "emb"
        assert resp.body["profile"]["total_counters"]["distance_evals"] > 0
        assert len(resp.body["hits"]) == 2
        assert router.handle("POST", "/explain", {
            "collection": "missing", "field": "emb", "queries": [[0.0] * 8],
        }).status == 404

    def test_slowlog_embeds_profile(self, prof_data):
        data, prices, queries = prof_data
        handle = obs.enable(
            slow_query_log=SlowQueryLog(threshold_seconds=0.0)
        )
        try:
            coll = build_collection(data, prices, nlist=8, seed=0)
            coll.search("emb", queries, 5)
            entries = [
                e for e in handle.slow_query_log.entries()
                if e.name == "collection.search"
            ]
            assert entries and entries[-1].profile is not None
            assert entries[-1].profile["total_counters"]["distance_evals"] > 0
        finally:
            obs.disable()


# -- per-index counter smoke -----------------------------------------------


INDEXES = [
    ("FLAT", lambda dim: FlatIndex(dim)),
    ("IVF_FLAT", lambda dim: IVFFlatIndex(dim, nlist=8, seed=0)),
    ("IVF_SQ8", lambda dim: IVFSQ8Index(dim, nlist=8, seed=0)),
    ("IVF_PQ", lambda dim: IVFPQIndex(dim, nlist=8, m=4, seed=0)),
    ("HNSW", lambda dim: HNSWIndex(dim, M=8, ef_construction=32, seed=0)),
    ("NSG", lambda dim: NSGIndex(dim, knn=8, out_degree=8, search_l=16, seed=0)),
    ("ANNOY", lambda dim: AnnoyIndex(dim, n_trees=4, leaf_size=16, seed=0)),
]


class TestPerIndexCounters:
    @pytest.mark.parametrize("name,factory", INDEXES, ids=[n for n, __ in INDEXES])
    def test_counters_flow_and_repeat_exactly(self, name, factory,
                                              small_data, small_queries):
        index = factory(small_data.shape[1])
        if not index._trained:
            index.train(small_data)
        index.add(small_data)
        index.search(small_queries, 5)             # warm: lazy builds, caches
        runs = []
        for __ in range(2):
            with QueryProfile("q") as prof:
                index.search(small_queries, 5)
            runs.append(prof.total_counters())
        assert runs[0] == runs[1], name
        assert runs[0]["distance_evals"] > 0
        if name.startswith(("HNSW", "NSG", "ANNOY")):
            assert runs[0]["heap_pushes"] > 0
        if name.startswith("IVF"):
            assert runs[0]["buckets_probed"] > 0


# -- bench emitter + regression gate ---------------------------------------


class TestBenchTrajectory:
    def test_emit_bench_json_schema(self, tmp_path):
        out = tmp_path / "BENCH_demo.json"
        payload = emit_bench_json(
            "demo", workload={"n": 10},
            series=[{"mode": "serial", "qps": np.float64(12.5),
                     "counters": {"rows_scanned": np.int64(10)}}],
            out_path=str(out),
        )
        on_disk = json.loads(out.read_text())
        assert on_disk["schema_version"] == 1
        assert on_disk["name"] == "demo"
        assert on_disk["series"][0]["qps"] == 12.5      # numpy scalars coerced
        assert on_disk["series"][0]["counters"]["rows_scanned"] == 10
        assert payload["workload"] == {"n": 10}
        assert "qps" in MEASUREMENT_KEYS and "mode" not in MEASUREMENT_KEYS

    @staticmethod
    def _report(tmp_path, filename, qps, counters=None):
        payload = {
            "schema_version": 1,
            "benchmarks": {
                "demo": {
                    "name": "demo",
                    "series": [{
                        "mode": "serial", "qps": qps,
                        "counters": counters or {"rows_scanned": 100},
                    }],
                },
            },
        }
        path = tmp_path / filename
        path.write_text(json.dumps(payload))
        return str(path)

    def test_compare_fails_on_25pct_slowdown(self, tmp_path, capsys):
        old = self._report(tmp_path, "old.json", qps=100.0)
        new = self._report(tmp_path, "new.json", qps=75.0)
        assert bench_compare.main([old, new, "--threshold", "0.20"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_passes_within_threshold_and_self(self, tmp_path):
        old = self._report(tmp_path, "old.json", qps=100.0)
        new = self._report(tmp_path, "new.json", qps=90.0)
        assert bench_compare.main([old, new, "--threshold", "0.20"]) == 0
        assert bench_compare.main([old, old]) == 0

    def test_counter_drift_warns_but_passes(self, tmp_path, capsys):
        old = self._report(tmp_path, "old.json", qps=100.0,
                           counters={"rows_scanned": 100})
        new = self._report(tmp_path, "new.json", qps=100.0,
                           counters={"rows_scanned": 250})
        assert bench_compare.main([old, new]) == 0
        assert "WARN" in capsys.readouterr().out
