"""Distributed system: hashing, coordinator HA, nodes, cluster."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    ConsistentHashRing,
    Coordinator,
    MilvusCluster,
    ReaderNode,
    WriterNode,
)
from repro.storage import InMemoryObjectStore
from repro.datasets import exact_ground_truth, recall_at_k, sift_like, random_queries


class TestConsistentHashing:
    def test_deterministic_routing(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.route(42) == ring.route(42)

    def test_reasonable_balance(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"], vnodes=128)
        counts = ring.load_distribution(range(4000))
        assert min(counts.values()) > 0.5 * (4000 / 4)
        assert max(counts.values()) < 2.0 * (4000 / 4)

    def test_node_removal_only_remaps_its_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {k: ring.route(k) for k in range(1000)}
        ring.remove_node("c")
        after = {k: ring.route(k) for k in range(1000)}
        moved = [k for k in before if before[k] != after[k]]
        # Only keys that belonged to the removed node move.
        assert all(before[k] == "c" for k in moved)
        assert all(after[k] != "c" for k in after)

    def test_node_addition_steals_from_everyone(self):
        ring = ConsistentHashRing(["a", "b"])
        before = {k: ring.route(k) for k in range(2000)}
        ring.add_node("c")
        after = {k: ring.route(k) for k in range(2000)}
        moved = [k for k in before if before[k] != after[k]]
        assert all(after[k] == "c" for k in moved)
        assert 0 < len(moved) < 2000

    def test_empty_ring_raises(self):
        with pytest.raises(RuntimeError):
            ConsistentHashRing().route(1)

    def test_duplicate_node_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ValueError):
            ring.add_node("a")

    @given(st.integers(0, 10**9))
    @settings(max_examples=50, deadline=None)
    def test_routing_total(self, key):
        ring = ConsistentHashRing(["x", "y", "z"])
        assert ring.route(key) in ("x", "y", "z")


class TestCoordinator:
    def test_leader_failover(self):
        coord = Coordinator()
        leader = coord.leader
        coord.kill_replica(leader)
        assert coord.leader != leader
        assert coord.has_quorum()

    def test_quorum_loss_refuses_writes(self):
        coord = Coordinator()
        coord.kill_replica("coord-1")
        coord.kill_replica("coord-2")
        assert not coord.has_quorum()
        with pytest.raises(RuntimeError):
            coord.register_reader("r0")

    def test_replica_restart_restores_quorum(self):
        coord = Coordinator()
        coord.kill_replica("coord-1")
        coord.kill_replica("coord-2")
        coord.restart_replica("coord-1")
        assert coord.has_quorum()
        coord.register_reader("r0")
        assert coord.route(5) == "r0"

    def test_metadata_survives_failover(self):
        coord = Coordinator()
        coord.set_metadata("shards", 4)
        coord.kill_replica(coord.leader)
        assert coord.get_metadata("shards") == 4


class TestNodes:
    def test_writer_logs_and_reader_consumes(self):
        shared = InMemoryObjectStore()
        writer = WriterNode(shared)
        reader = ReaderNode("r0", shared, dim=8)
        data = sift_like(50, dim=8, seed=0)
        writer.append_shard_log("r0", np.arange(50), data)
        assert reader.refresh() == 50
        assert reader.num_rows == 50
        result = reader.search(data[3], 1)
        assert result.ids[0, 0] == 3

    def test_reader_ignores_other_shards(self):
        shared = InMemoryObjectStore()
        writer = WriterNode(shared)
        reader = ReaderNode("r0", shared, dim=8)
        writer.append_shard_log("r1", np.arange(10), sift_like(10, dim=8))
        assert reader.refresh() == 0

    def test_refresh_idempotent(self):
        shared = InMemoryObjectStore()
        writer = WriterNode(shared)
        reader = ReaderNode("r0", shared, dim=8)
        writer.append_shard_log("r0", np.arange(10), sift_like(10, dim=8))
        reader.refresh()
        assert reader.refresh() == 0

    def test_crashed_reader_raises(self):
        reader = ReaderNode("r0", InMemoryObjectStore(), dim=8)
        reader.crash()
        with pytest.raises(RuntimeError):
            reader.search(np.zeros((1, 8), dtype=np.float32), 1)

    def test_respawn_rebuilds_from_shared_storage(self):
        """Statelessness: a restarted reader recovers everything."""
        shared = InMemoryObjectStore()
        writer = WriterNode(shared)
        reader = ReaderNode("r0", shared, dim=8)
        data = sift_like(60, dim=8, seed=1)
        writer.append_shard_log("r0", np.arange(60), data)
        reader.refresh()
        reader.crash()
        fresh = ReaderNode.respawn(reader)
        assert fresh.num_rows == 60
        assert fresh.search(data[5], 1).ids[0, 0] == 5

    def test_writer_seq_recovers(self):
        shared = InMemoryObjectStore()
        w1 = WriterNode(shared)
        w1.append_shard_log("r0", np.arange(5), sift_like(5, dim=8))
        w2 = WriterNode(shared)  # restarted writer
        path = w2.append_shard_log("r0", np.arange(5, 10), sift_like(5, dim=8, seed=2))
        assert "000000000001" in path


class TestCluster:
    @pytest.fixture(scope="class")
    def loaded(self):
        data = sift_like(3000, dim=16, seed=0)
        queries = random_queries(data, 10, seed=3)
        truth = exact_ground_truth(queries, data, 10)
        cluster = MilvusCluster(3, dim=16, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()
        return cluster, data, queries, truth

    def test_recall_across_shards(self, loaded):
        cluster, __, queries, truth = loaded
        res = cluster.search(queries, 10)
        assert recall_at_k(res.result.ids, truth) == 1.0

    def test_rows_sharded_not_replicated(self, loaded):
        cluster, data, *_ = loaded
        assert cluster.total_rows() == len(data)
        sizes = cluster.shard_sizes()
        assert all(0 < s < len(data) for s in sizes.values())

    def test_restart_restores_shard(self, loaded):
        cluster, data, queries, truth = loaded
        cluster.crash_reader("reader-1")
        degraded = cluster.search(queries, 10)
        assert recall_at_k(degraded.result.ids, truth) < 1.0  # shard offline
        cluster.restart_reader("reader-1")
        restored = cluster.search(queries, 10)
        assert recall_at_k(restored.result.ids, truth) == 1.0

    def test_simulated_parallel_time_reported(self, loaded):
        cluster, __, queries, ___ = loaded
        res = cluster.search(queries, 5)
        assert 0 < res.simulated_parallel_seconds <= res.wall_seconds + 1e-9

    def test_scaling_reduces_parallel_time(self):
        """Fig. 10b's mechanism: more readers -> smaller shards -> faster."""
        data = sift_like(6000, dim=16, seed=4)
        queries = random_queries(data, 20, seed=5)
        times = {}
        for n in (1, 4):
            cluster = MilvusCluster(n, dim=16, index_type="FLAT")
            cluster.insert(np.arange(len(data)), data)
            cluster.sync()
            cluster.search(queries, 10)  # warm-up
            # Best-of-3: single sub-millisecond measurements are jittery
            # enough on shared machines to flip the comparison.
            times[n] = min(
                cluster.search(queries, 10).simulated_parallel_seconds
                for __ in range(3)
            )
        assert times[4] < times[1]
