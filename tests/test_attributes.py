"""Attribute columns: sorted pairs, skip pointers, range queries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.attributes import AttributeColumn, merge_columns


@pytest.fixture()
def column(rng):
    values = rng.uniform(0, 100, 500)
    return AttributeColumn(values, np.arange(500), page_rows=64), values


class TestAttributeColumn:
    def test_sorted_by_key(self, column):
        col, __ = column
        assert (np.diff(col.keys) >= 0).all()

    def test_range_query_matches_naive(self, column):
        col, values = column
        got = set(col.range_query(20, 60).tolist())
        expected = set(np.flatnonzero((values >= 20) & (values <= 60)).tolist())
        assert got == expected

    def test_point_query(self):
        col = AttributeColumn(np.array([5.0, 3.0, 5.0]), np.array([10, 11, 12]))
        assert set(col.point_query(5.0).tolist()) == {10, 12}
        assert len(col.point_query(99.0)) == 0

    def test_empty_range(self, column):
        col, __ = column
        assert len(col.range_query(60, 20)) == 0

    def test_count_matches_range(self, column):
        col, __ = column
        assert col.count_in_range(10, 30) == len(col.range_query(10, 30))

    def test_selectivity(self, column):
        col, __ = column
        assert col.selectivity(col.min_value, col.max_value) == 1.0
        assert col.selectivity(1000, 2000) == 0.0

    def test_skip_pointers_cover_all_pages(self, column):
        col, __ = column
        pages = col.pages_overlapping(col.min_value, col.max_value)
        n_pages = int(np.ceil(len(col) / col.page_rows))
        assert len(pages) == n_pages

    def test_skip_pointers_prune(self, column):
        col, __ = column
        narrow = col.pages_overlapping(50.0, 50.5)
        assert len(narrow) <= 2

    def test_skip_pointers_sound(self, column):
        """Every row in a queried range lives in an overlapping page."""
        col, __ = column
        low, high = 33.0, 44.0
        pages = set(col.pages_overlapping(low, high).tolist())
        lo = np.searchsorted(col.keys, low, "left")
        hi = np.searchsorted(col.keys, high, "right")
        for pos in range(lo, hi):
            assert pos // col.page_rows in pages

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            AttributeColumn(np.zeros(3), np.zeros(4, dtype=np.int64))

    def test_empty_column(self):
        col = AttributeColumn(np.empty(0), np.empty(0, dtype=np.int64))
        assert len(col.range_query(0, 1)) == 0
        assert col.selectivity(0, 1) == 0.0

    @given(
        st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100),
        st.floats(-1e3, 1e3, allow_nan=False),
        st.floats(-1e3, 1e3, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_range_query_property(self, values, a, b):
        low, high = min(a, b), max(a, b)
        arr = np.array(values)
        col = AttributeColumn(arr, np.arange(len(arr)), page_rows=8)
        got = sorted(col.range_query(low, high).tolist())
        expected = sorted(np.flatnonzero((arr >= low) & (arr <= high)).tolist())
        assert got == expected


class TestMergeColumns:
    def test_merge_preserves_all_rows(self, rng):
        a = AttributeColumn(rng.uniform(0, 10, 50), np.arange(50))
        b = AttributeColumn(rng.uniform(0, 10, 30), np.arange(100, 130))
        merged = merge_columns([a, b])
        assert len(merged) == 80
        assert (np.diff(merged.keys) >= 0).all()

    def test_merge_empty_inputs(self):
        empty = AttributeColumn(np.empty(0), np.empty(0, dtype=np.int64))
        merged = merge_columns([empty, empty])
        assert len(merged) == 0
