"""Validation helpers, report formatting, dataset splitting."""

import numpy as np
import pytest

from repro.bench.report import format_table, _fmt
from repro.datasets.synthetic import train_test_split, uniform_attributes
from repro.utils import ensure_matrix, ensure_positive, ensure_vector_dim


class TestValidation:
    def test_ensure_positive(self):
        assert ensure_positive(3, "x") == 3
        assert ensure_positive(3.9, "x") == 3  # int coercion
        with pytest.raises(ValueError):
            ensure_positive(0, "x")
        with pytest.raises(ValueError):
            ensure_positive(-1, "x")

    def test_ensure_matrix_promotes_1d(self):
        out = ensure_matrix(np.zeros(4), "v")
        assert out.shape == (1, 4)
        assert out.dtype == np.float32

    def test_ensure_matrix_rejects_3d_and_empty_cols(self):
        with pytest.raises(ValueError):
            ensure_matrix(np.zeros((2, 2, 2)), "v")
        with pytest.raises(ValueError):
            ensure_matrix(np.zeros((2, 0)), "v")

    def test_ensure_vector_dim(self):
        arr = np.zeros((3, 8), dtype=np.float32)
        assert ensure_vector_dim(arr, 8, "v") is arr
        with pytest.raises(ValueError):
            ensure_vector_dim(arr, 4, "v")


class TestReportFormatting:
    def test_fmt_floats(self):
        assert _fmt(0.0) == "0"
        assert _fmt(1234.5) == "1.23e+03"
        assert _fmt(0.25) == "0.25"
        assert _fmt(0.0001) == "0.0001"
        assert _fmt("text") == "text"

    def test_table_alignment(self):
        text = format_table(["col", "x"], [["a", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_included(self):
        assert format_table(["a"], [[1]], title="My Title").startswith("My Title")


class TestDatasetHelpers:
    def test_train_test_split_partitions(self):
        data = np.arange(100).reshape(50, 2).astype(np.float32)
        train, test = train_test_split(data, train_fraction=0.6, seed=0)
        assert len(train) == 30 and len(test) == 20
        combined = np.concatenate([train, test])
        assert {tuple(r) for r in combined} == {tuple(r) for r in data}

    def test_split_deterministic(self):
        data = np.random.default_rng(0).normal(size=(40, 3)).astype(np.float32)
        a1, __ = train_test_split(data, seed=5)
        a2, __ = train_test_split(data, seed=5)
        np.testing.assert_array_equal(a1, a2)

    def test_uniform_attributes_range(self):
        attrs = uniform_attributes(1000, 10, 20, seed=0)
        assert attrs.min() >= 10 and attrs.max() <= 20
        with pytest.raises(ValueError):
            uniform_attributes(0)
