"""Index persistence across bufferpool eviction.

Indexes are not serialized with segments; the LSM records which
segments were indexed (and how) and rebuilds on reload so search
behaviour is unchanged after eviction.
"""

import numpy as np
import pytest

from repro.storage import LSMConfig, LSMManager, TieredMergePolicy
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


def make_lsm(bufferpool_bytes):
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        auto_merge=False,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        bufferpool_bytes=bufferpool_bytes,
        index_params={"nlist": 8},
    )
    return LSMManager(SPECS, (), cfg)


class TestIndexRebuildOnReload:
    def test_index_restored_after_eviction(self):
        lsm = make_lsm(bufferpool_bytes=1 << 30)
        data = sift_like(400, dim=16, seed=0)
        lsm.insert(np.arange(400), {"emb": data})
        lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=8)
        seg_id = lsm.manifest.live_segment_ids()[0]
        assert lsm.bufferpool.get(seg_id).has_index("emb")

        # Force eviction and reload through the loader path.
        lsm.bufferpool.invalidate(seg_id)
        reloaded = lsm.bufferpool.get(seg_id)
        assert reloaded.has_index("emb")
        assert reloaded.indexes["emb"].index_type == "IVF_FLAT"

    def test_search_quality_unchanged_after_reload(self):
        lsm = make_lsm(bufferpool_bytes=1 << 30)
        data = sift_like(400, dim=16, seed=1)
        lsm.insert(np.arange(400), {"emb": data})
        lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=8)
        before = lsm.search("emb", data[:5], 3, nprobe=8)
        seg_id = lsm.manifest.live_segment_ids()[0]
        lsm.bufferpool.invalidate(seg_id)
        after = lsm.search("emb", data[:5], 3, nprobe=8)
        np.testing.assert_array_equal(before.ids, after.ids)

    def test_unindexed_segments_stay_unindexed(self):
        lsm = make_lsm(bufferpool_bytes=1 << 30)
        data = sift_like(100, dim=16, seed=2)
        lsm.insert(np.arange(100), {"emb": data})
        lsm.flush()
        seg_id = lsm.manifest.live_segment_ids()[0]
        lsm.bufferpool.invalidate(seg_id)
        assert not lsm.bufferpool.get(seg_id).has_index("emb")

    def test_spec_dropped_with_dead_segment(self):
        lsm = make_lsm(bufferpool_bytes=1 << 30)
        data = sift_like(200, dim=16, seed=3)
        for i in range(2):
            lsm.insert(np.arange(i * 100, (i + 1) * 100), {"emb": data[i * 100:(i + 1) * 100]})
            lsm.flush()
        lsm.build_index("emb", "IVF_FLAT", nlist=4)
        assert len(lsm._index_specs) == 2
        lsm.maybe_merge()  # old segments die (no snapshots pinned)
        live = set(lsm.manifest.live_segment_ids())
        assert set(lsm._index_specs) <= live | set()

    def test_tiny_bufferpool_thrash_correctness(self):
        """With a bufferpool smaller than the data, every search evicts
        and reloads segments — results must stay identical."""
        big = make_lsm(bufferpool_bytes=1 << 30)
        data = sift_like(600, dim=16, seed=4)
        for i in range(3):
            big.insert(np.arange(i * 200, (i + 1) * 200), {"emb": data[i * 200:(i + 1) * 200]})
            big.flush()
        reference = big.search("emb", data[:5], 3)

        seg_bytes = big.bufferpool.get(big.manifest.live_segment_ids()[0]).memory_bytes()
        small = make_lsm(bufferpool_bytes=int(1.5 * seg_bytes))
        for i in range(3):
            small.insert(np.arange(i * 200, (i + 1) * 200), {"emb": data[i * 200:(i + 1) * 200]})
            small.flush()
        result = small.search("emb", data[:5], 3)
        np.testing.assert_array_equal(reference.ids, result.ids)
        assert small.bufferpool.evictions > 0
