"""Metrics hardening: hostile label values and concurrent scrapes.

Two failure classes the exposition endpoint must survive:

* label *values* are user-influenced (collection names, shard ids) —
  backslashes, quotes, and newlines must be escaped per the Prometheus
  text format, never able to break out of the quoting or inject lines;
* ``GET /metrics`` races concurrent writers — every scrape must be
  well-formed and counters must read monotonically across scrapes.
"""

import re
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.client import RestRouter
from repro.datasets import random_queries, sift_like
from repro.obs import MetricsRegistry

SAMPLE_LINE = re.compile(
    r'^[a-z][a-z0-9_]*(_bucket|_sum|_count)?'
    r'(\{([a-z0-9_]+="(\\.|[^"\\\n])*",?)+\})? -?[0-9].*$'
)


@pytest.fixture()
def obs_on():
    handle = obs.enable()
    yield handle
    obs.disable()


def _parse_exposition(text):
    """-> {metric-sample-name-with-labels: float} for non-comment lines."""
    out = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        key, value = line.rsplit(" ", 1)
        out[key] = float(value)
    return out


class TestHostileLabels:
    @pytest.mark.parametrize("hostile", [
        'back\\slash', 'quo"te', 'new\nline',
        'all\\"of\nthem\\', '} injected_total 999',
    ])
    def test_hostile_value_cannot_break_exposition(self, hostile):
        reg = MetricsRegistry()
        reg.counter("reqs_total", collection=hostile).inc(3)
        text = reg.render_prometheus()
        lines = [l for l in text.splitlines() if l and not l.startswith("#")]
        # exactly one sample, still matching the exposition grammar
        assert len(lines) == 1
        assert SAMPLE_LINE.match(lines[0]), lines[0]
        # no raw newline/quote escaped the label value
        assert "\n" not in lines[0]
        assert lines[0].endswith(" 3")

    def test_escaping_round_trips_the_value(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", coll='a\\b"c\nd').inc()
        text = reg.render_prometheus()
        assert 'coll="a\\\\b\\"c\\nd"' in text

    def test_distinct_hostile_values_stay_distinct(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", c='a"b').inc(1)
        reg.counter("reqs_total", c='a\\"b').inc(2)
        samples = _parse_exposition(reg.render_prometheus())
        assert sorted(samples.values()) == [1.0, 2.0]


class TestHelpLines:
    def test_every_family_announces_help_then_type(self):
        reg = MetricsRegistry()
        reg.counter("wal_appends_total").inc()
        reg.gauge("wal_lag_bytes").set(5)
        reg.histogram("wal_append_seconds").observe(0.001)
        lines = reg.render_prometheus().splitlines()
        for family in ("wal_appends_total", "wal_lag_bytes", "wal_append_seconds"):
            help_idx = lines.index(
                f"# HELP {family} {obs.describe_metric(family)}"
            )
            assert lines[help_idx + 1].startswith(f"# TYPE {family} ")

    def test_help_emitted_once_per_family_across_label_sets(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", status="200").inc()
        reg.counter("reqs_total", status="404").inc()
        text = reg.render_prometheus()
        assert text.count("# HELP reqs_total") == 1

    def test_described_families_use_the_registry_text(self):
        from repro.obs import METRIC_DESCRIPTIONS

        reg = MetricsRegistry()
        reg.counter("retry_exhausted_total").inc()
        text = reg.render_prometheus()
        expected = METRIC_DESCRIPTIONS["retry_exhausted_total"]
        assert f"# HELP retry_exhausted_total {expected}" in text

    def test_unknown_family_gets_fallback_help(self):
        reg = MetricsRegistry()
        reg.counter("adhoc_things_total").inc()
        assert "# HELP adhoc_things_total Metric adhoc_things_total." in (
            reg.render_prometheus()
        )

    @pytest.mark.parametrize("hostile", [
        "line one\nline two", "trailing\\", "back\\slash\nand newline",
    ])
    def test_hostile_help_text_cannot_inject_lines(self, hostile, monkeypatch):
        from repro.obs import metrics as metrics_mod

        monkeypatch.setitem(
            metrics_mod.METRIC_DESCRIPTIONS, "hostile_total", hostile
        )
        reg = MetricsRegistry()
        reg.counter("hostile_total").inc(7)
        lines = reg.render_prometheus().splitlines()
        help_lines = [l for l in lines if l.startswith("# HELP hostile_total")]
        # the description stayed on one HELP line, escaped
        assert len(help_lines) == 1
        assert "\n" not in help_lines[0]
        assert help_lines[0] == (
            "# HELP hostile_total "
            + hostile.replace("\\", "\\\\").replace("\n", "\\n")
        )
        # and every non-comment line still parses as a sample
        for line in lines:
            if line and not line.startswith("#"):
                assert SAMPLE_LINE.match(line), line

    def test_help_text_does_not_escape_quotes(self, monkeypatch):
        """HELP text is unquoted: per the spec only backslash and
        newline are escaped, unlike label values."""
        from repro.obs import metrics as metrics_mod

        monkeypatch.setitem(
            metrics_mod.METRIC_DESCRIPTIONS, "quoted_total", 'has "quotes"'
        )
        reg = MetricsRegistry()
        reg.counter("quoted_total").inc()
        assert '# HELP quoted_total has "quotes"' in reg.render_prometheus()


class TestConcurrentScrapes:
    def test_counters_monotone_under_writer_threads(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer(worker):
            while not stop.is_set():
                reg.counter("ops_total", worker=str(worker)).inc()
                reg.histogram("op_seconds", worker=str(worker)).observe(0.001)

        threads = [
            threading.Thread(target=hammer, args=(i,), daemon=True)
            for i in range(4)
        ]
        for t in threads:
            t.start()
        try:
            last = {}
            for __ in range(50):
                samples = _parse_exposition(reg.render_prometheus())
                for key, value in samples.items():
                    if key.startswith(("ops_total", "op_seconds_count",
                                       "op_seconds_bucket")):
                        assert value >= last.get(key, 0.0), key
                        last[key] = value
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert any(k.startswith("ops_total") for k in last)

    def test_rest_metrics_well_formed_under_parallel_query_load(
        self, obs_on, monkeypatch
    ):
        """Scrape GET /metrics while pooled cluster searches run —
        the REPRO_PARALLEL=1 scenario from CI."""
        monkeypatch.setenv("REPRO_PARALLEL", "1")
        from repro.distributed import MilvusCluster

        data = sift_like(200, dim=8, seed=60)
        queries = random_queries(data, 4, seed=61)
        cluster = MilvusCluster(2, dim=8, index_type="FLAT")
        cluster.insert(np.arange(len(data)), data)
        cluster.sync()

        router = RestRouter()
        stop = threading.Event()
        errors = []

        def query_load():
            try:
                while not stop.is_set():
                    cluster.search(queries, 3, parallel=True, pool_size=2)
            except Exception as exc:  # surfaced in the main thread
                errors.append(exc)

        writer = threading.Thread(target=query_load, daemon=True)
        writer.start()
        try:
            last_total = 0.0
            # scrape until a few searches have landed (bounded retries)
            for __ in range(200):
                resp = router.handle("GET", "/metrics")
                assert resp.ok
                text = resp.body["text"]
                for line in text.splitlines():
                    if line and not line.startswith("#"):
                        assert SAMPLE_LINE.match(line), line
                samples = _parse_exposition(text)
                total = sum(
                    v for k, v in samples.items()
                    if k.startswith("cluster_searches_total")
                )
                assert total >= last_total
                last_total = total
                if last_total >= 3:
                    break
                time.sleep(0.005)
        finally:
            stop.set()
            writer.join()
        assert not errors, errors
        assert last_total > 0
