"""Multi-vector query processing: NRA, fusion, iterative merging."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.multivector import (
    IterativeMerging,
    MultiVectorSearcher,
    RankedList,
    VectorFusion,
    nra_best_effort_topk,
    nra_determined_topk,
    streaming_nra,
)
from repro.datasets import recipe_like


def brute_force_agg(field_data, queries, weights, metric="l2"):
    """Exact aggregated top-k reference."""
    total = None
    for f, mat in field_data.items():
        q = queries[f]
        if metric == "l2":
            scores = ((mat - q) ** 2).sum(axis=1)
        else:
            scores = mat @ q
        scores = weights.get(f, 1.0) * scores
        total = scores if total is None else total + scores
    order = np.argsort(total, kind="stable")
    if metric == "ip":
        order = order[::-1]
    return order, total


@pytest.fixture(scope="module")
def entities():
    return recipe_like(1500, text_dim=24, image_dim=16, seed=0)


class TestRankedList:
    def test_from_metric_scores_distances(self):
        ranked = RankedList.from_metric_scores(
            np.array([10, 11, 12]), np.array([3.0, 1.0, 2.0]), higher_is_better=False
        )
        assert ranked.ids.tolist() == [11, 12, 10]
        assert (np.diff(ranked.scores) <= 1e-12).all()

    def test_weight_applied(self):
        ranked = RankedList.from_metric_scores(
            np.array([0]), np.array([2.0]), higher_is_better=True, weight=3.0
        )
        assert np.isclose(ranked.scores[0], 6.0)

    def test_rejects_increasing_scores(self):
        with pytest.raises(ValueError):
            RankedList(np.array([0, 1]), np.array([1.0, 2.0]))

    def test_empty_worst_is_inf(self):
        ranked = RankedList(np.empty(0, dtype=np.int64), np.empty(0))
        assert ranked.worst_emitted == np.inf


class TestNRADetermined:
    def test_complete_lists_determined(self):
        # Two fields, 4 entities, full lists -> always determined.
        rng = np.random.default_rng(0)
        s1 = rng.normal(size=4)
        s2 = rng.normal(size=4)
        lists = [
            RankedList.from_metric_scores(np.arange(4), s1, True),
            RankedList.from_metric_scores(np.arange(4), s2, True),
        ]
        top = nra_determined_topk(lists, 2)
        assert top is not None
        expected = np.argsort(-(s1 + s2), kind="stable")[:2]
        assert [i for i, __ in top] == expected.tolist()

    def test_shallow_lists_not_determined(self):
        # Entity 2 appears in only one list; its upper bound threatens.
        lists = [
            RankedList(np.array([0, 2]), np.array([10.0, 9.0])),
            RankedList(np.array([0, 1]), np.array([10.0, 9.0])),
        ]
        assert nra_determined_topk(lists, 2) is None

    def test_determined_when_gap_large(self):
        lists = [
            RankedList(np.array([0, 1]), np.array([10.0, 0.1])),
            RankedList(np.array([0, 1]), np.array([10.0, 0.1])),
        ]
        top = nra_determined_topk(lists, 1)
        assert top is not None and top[0][0] == 0

    @given(st.integers(1, 5), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_determined_result_is_exact(self, k, seed):
        """Whenever NRA claims determination, it matches brute force."""
        rng = np.random.default_rng(seed)
        n, mu = 12, 3
        scores = rng.normal(size=(mu, n))
        depth = int(rng.integers(k, n + 1))
        lists = []
        for f in range(mu):
            order = np.argsort(-scores[f], kind="stable")[:depth]
            lists.append(RankedList(order, scores[f][order]))
        top = nra_determined_topk(lists, k)
        if top is not None:
            expected = np.argsort(-scores.sum(axis=0), kind="stable")[:k]
            got_scores = sorted(s for __, s in top)
            exp_scores = sorted(scores.sum(axis=0)[expected].tolist())
            np.testing.assert_allclose(got_scores, exp_scores, atol=1e-9)


class TestStreamingNRA:
    def test_terminates_and_correct_on_full_lists(self):
        rng = np.random.default_rng(1)
        n = 20
        s1, s2 = rng.normal(size=n), rng.normal(size=n)
        lists = [
            RankedList.from_metric_scores(np.arange(n), s1, True),
            RankedList.from_metric_scores(np.arange(n), s2, True),
        ]
        top, depth = streaming_nra(lists, 3)
        expected = np.argsort(-(s1 + s2), kind="stable")[:3]
        assert [i for i, __ in top] == expected.tolist()
        assert depth <= n

    def test_early_stop_when_possible(self):
        # A dominant entity lets NRA stop before exhausting the lists.
        ids = np.arange(50)
        scores = np.concatenate([[100.0], np.linspace(1, 0.1, 49)])
        lists = [RankedList(ids, scores), RankedList(ids, scores)]
        __, depth = streaming_nra(lists, 1)
        assert depth < 50


class TestVectorFusion:
    def test_l2_matches_brute_force(self, entities):
        weights = {"text": 1.0, "image": 2.0}
        fusion = VectorFusion(entities, metric="l2", weights=weights)
        q = {"text": entities["text"][5], "image": entities["image"][5]}
        hits = fusion.search(q, 10)[0]
        order, total = brute_force_agg(entities, q, weights, "l2")
        assert [i for i, __ in hits] == order[:10].tolist()
        np.testing.assert_allclose(
            [s for __, s in hits], total[order[:10]], rtol=1e-3, atol=1e-2
        )

    def test_ip_matches_brute_force(self, entities):
        weights = {"text": 0.5, "image": 1.5}
        fusion = VectorFusion(entities, metric="ip", weights=weights)
        q = {"text": entities["text"][9], "image": entities["image"][9]}
        hits = fusion.search(q, 10)[0]
        order, __ = brute_force_agg(entities, q, weights, "ip")
        assert [i for i, __ in hits] == order[:10].tolist()

    def test_rejects_cosine(self, entities):
        with pytest.raises(ValueError):
            VectorFusion(entities, metric="cosine")

    def test_mismatched_entity_counts(self, entities):
        bad = {"text": entities["text"], "image": entities["image"][:10]}
        with pytest.raises(ValueError):
            VectorFusion(bad, metric="ip")


class TestIterativeMerging:
    def test_matches_brute_force_l2(self, entities):
        weights = {"text": 1.0, "image": 1.0}
        merger = IterativeMerging.over_arrays(
            entities, metric="l2", weights=weights,
            index_type="FLAT", k_threshold=4096,
        )
        q = {"text": entities["text"][3], "image": entities["image"][3]}
        hits = merger.search_one(q, 5)
        order, __ = brute_force_agg(entities, q, weights, "l2")
        assert set(i for i, __ in hits) == set(order[:5].tolist())

    def test_rounds_counted(self, entities):
        merger = IterativeMerging.over_arrays(
            entities, metric="l2", index_type="FLAT", k_threshold=4096
        )
        q = {"text": entities["text"][3], "image": entities["image"][3]}
        merger.search_one(q, 5)
        assert merger.last_rounds >= 1

    def test_threshold_fallback_best_effort(self, entities):
        # A tiny threshold forces best-effort output of the right size.
        merger = IterativeMerging.over_arrays(
            entities, metric="l2", index_type="FLAT", k_threshold=8
        )
        q = {"text": entities["text"][3], "image": entities["image"][3]}
        hits = merger.search_one(q, 5)
        assert len(hits) == 5


class TestBestEffort:
    def test_low_recall_with_shallow_lists(self, entities):
        """The paper's naive/NRA-50 point: shallow lists -> poor recall."""
        weights = {"text": 1.0, "image": 1.0}
        q = {"text": entities["text"][7], "image": entities["image"][7]}
        order, __ = brute_force_agg(entities, q, weights, "l2")
        truth = set(order[:50].tolist())

        lists = []
        for f in ("text", "image"):
            scores = ((entities[f] - q[f]) ** 2).sum(axis=1)
            top = np.argsort(scores, kind="stable")[:50]
            lists.append(RankedList.from_metric_scores(top, scores[top], False))
        shallow = nra_best_effort_topk(lists, 50)
        shallow_recall = len(truth & {i for i, __ in shallow}) / 50

        lists_deep = []
        for f in ("text", "image"):
            scores = ((entities[f] - q[f]) ** 2).sum(axis=1)
            top = np.argsort(scores, kind="stable")[:800]
            lists_deep.append(RankedList.from_metric_scores(top, scores[top], False))
        deep = nra_best_effort_topk(lists_deep, 50)
        deep_recall = len(truth & {i for i, __ in deep}) / 50
        assert deep_recall > shallow_recall
