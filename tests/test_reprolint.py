"""reprolint: every rule fires on a seeded violation and the tree is clean."""

import os
import subprocess
import sys
import textwrap

import pytest

from tools.reprolint.config import LintConfig, load_config
from tools.reprolint.contracts import check_contracts
from tools.reprolint.engine import lint_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SRC_PATH = os.path.join("src", "repro", "storage", "example.py")


def lint(code, path=SRC_PATH, config=None):
    code = textwrap.dedent(code)
    config = config or LintConfig()
    return lint_source(code, path=path, config=config, relpath=path.replace(os.sep, "/"))


def rules_of(violations):
    return [v.rule for v in violations]


class TestLockDiscipline:
    GUARDED = """
    import threading

    class Pool:
        _GUARDED_BY = {"_cache": "_lock", "_bytes": "_lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._cache = {}
            self._bytes = 0
    """

    def test_unlocked_assignment_flagged(self):
        violations = lint(self.GUARDED + """
        def clear(self):
            self._cache = {}
        """)
        assert rules_of(violations) == ["lock-discipline"]
        assert "_cache" in violations[0].message

    def test_unlocked_mutator_call_flagged(self):
        violations = lint(self.GUARDED + """
        def drop(self, key):
            self._cache.pop(key)
        """)
        assert rules_of(violations) == ["lock-discipline"]

    def test_unlocked_augassign_and_subscript_flagged(self):
        violations = lint(self.GUARDED + """
        def bump(self, key):
            self._bytes += 1
            self._cache[key] = 1
        """)
        assert rules_of(violations) == ["lock-discipline", "lock-discipline"]

    def test_with_lock_is_clean(self):
        violations = lint(self.GUARDED + """
        def clear(self):
            with self._lock:
                self._cache = {}
                self._cache.update({})
                del self._cache
        """)
        assert violations == []

    def test_wrong_lock_flagged(self):
        violations = lint(self.GUARDED + """
        def clear(self):
            with self._other_lock:
                self._cache = {}
        """)
        assert rules_of(violations) == ["lock-discipline"]

    def test_locked_suffix_methods_exempt(self):
        violations = lint(self.GUARDED + """
        def _evict_locked(self):
            self._cache = {}
        """)
        assert violations == []

    def test_init_exempt(self):
        # __init__ in the fixture itself assigns guarded fields unlocked.
        assert lint(self.GUARDED) == []

    def test_nested_function_does_not_inherit_lock(self):
        # A closure may run after the with-block exits.
        violations = lint(self.GUARDED + """
        def schedule(self, executor):
            with self._lock:
                def later():
                    self._cache = {}
                executor.submit(later)
        """)
        assert rules_of(violations) == ["lock-discipline"]

    def test_config_guarded_fields(self):
        config = LintConfig(guarded_fields={"Counter.total": "_lock"})
        violations = lint(
            """
            class Counter:
                def bump(self):
                    self.total += 1
            """,
            config=config,
        )
        assert rules_of(violations) == ["lock-discipline"]

    def test_extra_mutators_from_config(self):
        config = LintConfig(guarded_fields={"M._memtable": "_lock"})
        config.mutator_methods |= {"seal"}
        violations = lint(
            """
            class M:
                def flush(self):
                    self._memtable.seal()
            """,
            config=config,
        )
        assert rules_of(violations) == ["lock-discipline"]


class TestGlobalRng:
    def test_np_random_flagged_in_src(self):
        violations = lint("""
        import numpy as np
        x = np.random.rand(10)
        """)
        assert rules_of(violations) == ["global-rng"]

    def test_default_rng_allowed(self):
        violations = lint("""
        import numpy as np
        rng = np.random.default_rng(7)
        x = rng.random(10)
        """)
        assert violations == []

    def test_outside_src_not_flagged(self):
        violations = lint(
            """
            import numpy as np
            x = np.random.rand(10)
            """,
            path=os.path.join("tests", "example.py"),
        )
        assert violations == []

    def test_stdlib_random_module_flagged(self):
        violations = lint("""
        import random
        x = random.randint(0, 5)
        """)
        assert rules_of(violations) == ["global-rng"]

    def test_seeded_random_instance_allowed(self):
        violations = lint("""
        import random
        rng = random.Random(3)
        x = rng.randint(0, 5)
        """)
        assert violations == []

    def test_from_import_flagged(self):
        violations = lint("""
        from random import choice
        from numpy.random import rand
        a = choice([1, 2])
        b = rand(3)
        """)
        assert sorted(rules_of(violations)) == ["global-rng", "global-rng"]

    def test_docstring_quickstart_flagged(self):
        violations = lint('''
        """Example.

        Usage::

            data = np.random.rand(100, 8)
        """
        ''')
        assert rules_of(violations) == ["global-rng"]
        assert "docstring" in violations[0].message


class TestHygiene:
    def test_mutable_default(self):
        violations = lint("""
        def f(x, acc=[]):
            return acc
        """)
        assert rules_of(violations) == ["mutable-default"]

    def test_bare_except(self):
        violations = lint("""
        def f():
            try:
                return 1
            except:
                return 2
        """)
        assert rules_of(violations) == ["bare-except"]

    def test_typed_except_allowed(self):
        violations = lint("""
        def f():
            try:
                return 1
            except ValueError:
                return 2
        """)
        assert violations == []

    def test_float_eq_on_score(self):
        violations = lint("""
        def f(score):
            return score == 1.0
        """)
        assert rules_of(violations) == ["float-eq"]

    def test_float_eq_two_scoreish_names(self):
        violations = lint("""
        def f(best_dist, worst_dist):
            return best_dist != worst_dist
        """)
        assert rules_of(violations) == ["float-eq"]

    def test_int_comparison_not_flagged(self):
        violations = lint("""
        def f(count, score):
            return count == 0 and score == 0
        """)
        assert violations == []


class TestSuppression:
    def test_line_suppression(self):
        violations = lint("""
        import numpy as np
        x = np.random.rand(10)  # reprolint: disable=global-rng
        """)
        assert violations == []

    def test_line_suppression_wrong_rule_keeps_violation(self):
        violations = lint("""
        import numpy as np
        x = np.random.rand(10)  # reprolint: disable=float-eq
        """)
        assert rules_of(violations) == ["global-rng"]

    def test_disable_all(self):
        violations = lint("""
        def f(acc=[]):  # reprolint: disable=all
            return acc
        """)
        assert violations == []

    def test_file_level_suppression(self):
        violations = lint("""
        # reprolint: disable-file=mutable-default
        def f(acc=[]):
            return acc

        def g(acc={}):
            return acc
        """)
        assert violations == []


class TestContracts:
    def test_repo_registries_are_clean(self):
        config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
        config.src_root = os.path.join(REPO_ROOT, "src")
        assert check_contracts(config) == []

    def test_broken_index_is_flagged(self):
        from repro.index import registry
        from repro.index.flat import FlatIndex

        class BrokenIndex(FlatIndex):
            index_type = "BROKEN_CONTRACT_TEST"

            # wrong leading params + no **params + required extra arg
            def _search(self, q, k, budget):  # pragma: no cover - never run
                raise NotImplementedError

            def search(self, queries, k, budget):  # pragma: no cover
                raise NotImplementedError

        registry.register_index(BrokenIndex)
        try:
            config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
            config.src_root = os.path.join(REPO_ROOT, "src")
            violations = [
                v for v in check_contracts(config) if "BROKEN_CONTRACT_TEST" in v.message
            ]
            messages = " | ".join(v.message for v in violations)
            assert "_search must start with (queries, k)" in messages
            assert "**params" in messages
            assert "adds required parameter 'budget'" in messages
        finally:
            registry._REGISTRY.pop("BROKEN_CONTRACT_TEST", None)

    def test_broken_metric_is_flagged(self):
        from repro.metrics import registry
        from repro.metrics.base import Metric

        class BrokenMetric(Metric):
            name = "broken_contract_test"
            higher_is_better = True  # inconsistent with worst_value below

            def pairwise(self, queries, data):  # pragma: no cover
                raise NotImplementedError

            def worst_value(self):
                return float("inf")  # a similarity metric's worst is -inf

        registry.register_metric(BrokenMetric())
        try:
            config = load_config(os.path.join(REPO_ROOT, "pyproject.toml"))
            config.src_root = os.path.join(REPO_ROOT, "src")
            violations = [
                v for v in check_contracts(config)
                if "broken_contract_test" in v.message
            ]
            assert violations, "inconsistent worst_value not caught"
        finally:
            registry._REGISTRY.pop("broken_contract_test", None)


class TestCli:
    def _run(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_shipped_tree_is_clean(self):
        proc = self._run("src", "tests")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_seeded_violation_exits_nonzero(self, tmp_path):
        bad = tmp_path / "seeded.py"
        bad.write_text(
            "def f(acc=[]):\n"
            "    try:\n"
            "        return acc\n"
            "    except:\n"
            "        pass\n"
        )
        proc = self._run("--no-contracts", str(bad))
        assert proc.returncode == 1
        assert "mutable-default" in proc.stdout
        assert "bare-except" in proc.stdout

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        listed = set(proc.stdout.split())
        assert {"lock-discipline", "global-rng", "contract"} <= listed
