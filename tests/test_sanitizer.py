"""Runtime race sanitizer: lock-order inversions and unguarded mutations."""

import threading

import numpy as np
import pytest

from repro.core import Collection, CollectionSchema, VectorField
from repro.datasets import sift_like
from repro.storage import LSMConfig, TieredMergePolicy
from repro.utils import sanitizer as san


@pytest.fixture
def tsan():
    """Enable sanitizing for the test, always disable afterwards."""
    instance = san.enable()
    instance.reset()
    try:
        yield instance
    finally:
        san.disable()


def make_lock(name, tsan):
    return san.SanitizedLock(threading.Lock(), name, tsan)


def run_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join(timeout=30)
    assert not t.is_alive()


class TestLockOrderGraph:
    def test_inverted_order_is_reported(self, tsan):
        a, b = make_lock("A", tsan), make_lock("B", tsan)

        def forward():
            with a:
                with b:
                    pass

        def backward():
            with b:
                with a:
                    pass

        run_thread(forward)
        run_thread(backward)
        violations = tsan.report()["lock_order_violations"]
        assert len(violations) == 1
        assert {violations[0].first, violations[0].second} == {"A", "B"}

    def test_consistent_order_is_clean(self, tsan):
        a, b = make_lock("A", tsan), make_lock("B", tsan)

        def nested():
            with a:
                with b:
                    pass

        for __ in range(3):
            run_thread(nested)
        assert tsan.report()["lock_order_violations"] == []

    def test_inversion_reported_once_per_pair(self, tsan):
        a, b = make_lock("A", tsan), make_lock("B", tsan)
        for __ in range(3):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(tsan.report()["lock_order_violations"]) == 1

    def test_reentrant_rlock_not_a_violation(self, tsan):
        r = san.SanitizedLock(threading.RLock(), "R", tsan)
        with r:
            with r:
                pass
        assert tsan.report()["lock_order_violations"] == []
        assert not r.held_by_current_thread()

    def test_held_roles_tracks_stack(self, tsan):
        a, b = make_lock("A", tsan), make_lock("B", tsan)
        with a:
            with b:
                assert tsan.held_roles() == ("A", "B")
        assert tsan.held_roles() == ()


class TestUnguardedMutation:
    def test_mutation_without_lock_reported(self, tsan):
        lock = make_lock("pool", tsan)
        san.assert_guarded(lock, "Pool", "_cache")
        reports = tsan.report()["unguarded_mutations"]
        assert len(reports) == 1
        assert reports[0].owner == "Pool"
        assert reports[0].fieldname == "_cache"

    def test_mutation_with_lock_is_clean(self, tsan):
        lock = make_lock("pool", tsan)
        with lock:
            san.assert_guarded(lock, "Pool", "_cache")
        assert tsan.report()["unguarded_mutations"] == []

    def test_noop_when_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        san.disable()
        lock = threading.Lock()
        san.assert_guarded(lock, "Pool", "_cache")  # must not raise


class TestMaybeSanitize:
    def test_disabled_returns_raw_lock(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        san.disable()
        lock = threading.Lock()
        assert san.maybe_sanitize(lock, "x") is lock

    def test_env_var_enables(self, monkeypatch):
        san.disable()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        try:
            wrapped = san.maybe_sanitize(threading.Lock(), "x")
            assert isinstance(wrapped, san.SanitizedLock)
        finally:
            san.disable()


def make_collection(**kwargs):
    schema = CollectionSchema("c", vector_fields=[VectorField("emb", 8)])
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
    )
    return Collection(schema, lsm_config=cfg, **kwargs)


class TestEngineIntegration:
    def test_concurrent_workload_has_consistent_lock_order(self, tsan):
        """insert/search/compact storm: the engine's lock order is acyclic."""
        coll = make_collection()
        data = sift_like(2000, dim=8, seed=0)
        coll.insert({"emb": data[:1000]})
        coll.flush()

        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    coll.search("emb", data[:5], 1)
            except Exception as exc:  # noqa: BLE001 - surface to main thread
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for __ in range(3)]
        for t in threads:
            t.start()
        try:
            for start in range(1000, 2000, 100):
                coll.insert({"emb": data[start : start + 100]})
                coll.delete(list(range(start - 1000, start - 990)))
                coll.flush()
                coll.compact()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
        assert not errors, errors[:3]
        report = tsan.report()
        assert report["lock_order_violations"] == []
        assert report["unguarded_mutations"] == []
        # The workload exercised sanitized locks (not a vacuous pass).
        assert tsan._edges, "no lock acquisitions were observed"

    def test_deliberate_inversion_through_engine_is_reported(self, tsan):
        """Taking the engine's locks in bufferpool -> lsm-bg order inverts
        the lsm-bg -> bufferpool order the flush path established.

        (The writer lock itself is never held across bufferpool work any
        more — flush processing runs under the maintenance lock — so the
        runtime edge to invert is lsm-bg's, not lsm's.)"""
        coll = make_collection()
        data = sift_like(100, dim=8, seed=1)
        coll.insert({"emb": data})
        coll.flush()  # establishes lsm-bg -> bufferpool
        assert tsan.report()["lock_order_violations"] == []

        bp_lock = coll.lsm.bufferpool._lock
        bg_lock = coll.lsm._bg_lock
        assert isinstance(bp_lock, san.SanitizedLock)
        with bp_lock:  # wrong order: bufferpool -> lsm-bg
            with bg_lock:
                pass
        violations = tsan.report()["lock_order_violations"]
        assert any(
            {v.first, v.second} == {"bufferpool", "lsm-bg"} for v in violations
        )

    def test_async_writer_clean_under_sanitizer(self, tsan):
        coll = make_collection(async_writes=True)
        data = sift_like(600, dim=8, seed=2)
        for start in range(0, 600, 200):
            coll.insert({"emb": data[start : start + 200]})
        coll.flush()
        assert coll.num_entities == 600
        report = tsan.report()
        assert report["lock_order_violations"] == []
        assert report["unguarded_mutations"] == []
