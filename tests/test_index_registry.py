"""The extensible index framework: registration and construction."""

import numpy as np
import pytest

from repro.index import (
    VectorIndex,
    SearchResult,
    available_index_types,
    create_index,
    register_index,
)


class TestRegistry:
    def test_all_paper_indexes_available(self):
        types = available_index_types()
        for expected in ("FLAT", "IVF_FLAT", "IVF_SQ8", "IVF_PQ", "HNSW", "NSG", "ANNOY"):
            assert expected in types

    def test_create_by_name_case_insensitive(self):
        index = create_index("ivf_flat", 8, nlist=4)
        assert index.index_type == "IVF_FLAT"

    def test_unknown_type(self):
        with pytest.raises(KeyError):
            create_index("BOGUS", 8)

    def test_params_forwarded(self):
        index = create_index("HNSW", 8, M=5)
        assert index.M == 5

    def test_custom_index_plugs_in(self, small_data):
        """The paper's pitch: new indexes only implement the interface."""

        class CentroidOnlyIndex(VectorIndex):
            index_type = "TEST_CENTROID"
            requires_training = False

            def __init__(self, dim, metric="l2"):
                super().__init__(dim, metric)
                self._vectors = None
                self._ids = None

            def _add(self, vectors, ids):
                self._vectors = vectors
                self._ids = ids

            def _search(self, queries, k, **params):
                scores = self.metric.pairwise(queries, self._vectors)
                result = SearchResult.empty(len(queries), k, self.metric)
                for qi in range(len(queries)):
                    order = self.metric.sort_order(scores[qi])[:k]
                    result.ids[qi, : len(order)] = self._ids[order]
                    result.scores[qi, : len(order)] = scores[qi][order]
                return result

            @property
            def ntotal(self):
                return 0 if self._vectors is None else len(self._vectors)

            def memory_bytes(self):
                return 0 if self._vectors is None else self._vectors.nbytes

        register_index(CentroidOnlyIndex)
        try:
            index = create_index("TEST_CENTROID", 16)
            index.add(small_data)
            result = index.search(small_data[0], 3)
            assert result.ids[0, 0] == 0
        finally:
            from repro.index import registry

            del registry._REGISTRY["TEST_CENTROID"]

    def test_double_registration_rejected(self):
        from repro.index import FlatIndex

        with pytest.raises(ValueError):
            register_index(FlatIndex)
