"""LSM manager integration: flush, merge, deletes, snapshots, recovery."""

import numpy as np
import pytest

from repro.storage import (
    InMemoryObjectStore,
    LSMConfig,
    LSMManager,
    TieredMergePolicy,
)
from repro.datasets import sift_like

SPECS = {"emb": (16, "l2")}


def make_lsm(fs=None, **overrides):
    defaults = dict(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        auto_merge=False,
    )
    defaults.update(overrides)
    return LSMManager(SPECS, ("price",), LSMConfig(**defaults), fs=fs)


@pytest.fixture()
def data():
    return sift_like(600, dim=16, seed=0)


@pytest.fixture()
def prices(rng):
    return rng.uniform(0, 100, 600)


class TestWritePath:
    def test_insert_invisible_until_flush(self, data, prices):
        lsm = make_lsm()
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        assert lsm.num_live_rows == 0
        assert lsm.unflushed_rows == 100
        lsm.flush()
        assert lsm.num_live_rows == 100
        assert lsm.unflushed_rows == 0

    def test_auto_flush_on_size(self, data, prices):
        lsm = make_lsm(memtable_flush_bytes=1000)
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        assert lsm.flush_count >= 1
        assert lsm.num_live_rows == 100

    def test_tick_flushes_on_interval(self, data, prices):
        lsm = make_lsm(flush_interval_seconds=1.0)
        lsm.insert(np.arange(10), {"emb": data[:10]}, {"price": prices[:10]})
        assert not lsm.tick(0.5)
        assert lsm.tick(1.5)
        assert lsm.num_live_rows == 10

    def test_flush_empty_noop(self):
        lsm = make_lsm()
        assert lsm.flush() is None
        assert lsm.flush_count == 0


class TestSearchAndDeletes:
    def test_search_across_segments(self, data, prices):
        lsm = make_lsm()
        for i in range(3):
            sl = slice(i * 200, (i + 1) * 200)
            lsm.insert(np.arange(i * 200, (i + 1) * 200), {"emb": data[sl]}, {"price": prices[sl]})
            lsm.flush()
        result = lsm.search("emb", data[450], 1)
        assert result.ids[0, 0] == 450

    def test_delete_hides_row(self, data, prices):
        lsm = make_lsm()
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        lsm.flush()
        lsm.delete(np.array([42]))
        lsm.flush()
        result = lsm.search("emb", data[42], 1)
        assert result.ids[0, 0] != 42
        assert lsm.num_live_rows == 99

    def test_snapshot_isolation_under_delete(self, data, prices):
        lsm = make_lsm()
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        lsm.flush()
        snap = lsm.snapshot()
        lsm.delete(np.array([42]))
        lsm.flush()
        old = lsm.search("emb", data[42], 1, snapshot=snap)
        new = lsm.search("emb", data[42], 1)
        assert old.ids[0, 0] == 42
        assert new.ids[0, 0] != 42
        lsm.release(snap)

    def test_merge_removes_tombstones_physically(self, data, prices):
        lsm = make_lsm()
        for i in range(2):
            sl = slice(i * 100, (i + 1) * 100)
            lsm.insert(np.arange(i * 100, (i + 1) * 100), {"emb": data[sl]}, {"price": prices[sl]})
            lsm.flush()
        lsm.delete(np.array([5, 150]))
        lsm.flush()
        assert len(lsm.manifest.current_tombstones()) == 2
        merged = lsm.maybe_merge()
        assert merged >= 1
        assert len(lsm.manifest.current_tombstones()) == 0
        assert lsm.num_live_rows == 198

    def test_search_after_merge_consistent(self, data, prices):
        lsm = make_lsm()
        for i in range(4):
            sl = slice(i * 150, (i + 1) * 150)
            lsm.insert(np.arange(i * 150, (i + 1) * 150), {"emb": data[sl]}, {"price": prices[sl]})
            lsm.flush()
        before = lsm.search("emb", data[:5], 3)
        lsm.maybe_merge()
        after = lsm.search("emb", data[:5], 3)
        np.testing.assert_array_equal(before.ids, after.ids)

    def test_auto_merge_reduces_segment_count(self, data, prices):
        lsm = make_lsm(auto_merge=True)
        for i in range(4):
            sl = slice(i * 150, (i + 1) * 150)
            lsm.insert(np.arange(i * 150, (i + 1) * 150), {"emb": data[sl]}, {"price": prices[sl]})
            lsm.flush()
        assert len(lsm.manifest.live_segment_ids()) < 4


class TestIndexBuilding:
    def test_indexes_built_for_large_segments_only(self, data, prices):
        lsm = make_lsm(index_build_min_rows=150, index_params={"nlist": 8})
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        lsm.flush()
        lsm.insert(np.arange(100, 300), {"emb": data[100:300]}, {"price": prices[100:300]})
        lsm.flush()
        segments = lsm.live_segments()
        small = next(s for s in segments if s.num_rows == 100)
        large = next(s for s in segments if s.num_rows == 200)
        assert not small.has_index("emb")
        assert large.has_index("emb")

    def test_manual_index_any_size(self, data, prices):
        lsm = make_lsm(index_params={"nlist": 8})
        lsm.insert(np.arange(50), {"emb": data[:50]}, {"price": prices[:50]})
        lsm.flush()
        count = lsm.build_index("emb", "IVF_FLAT", nlist=4)
        assert count == 1
        assert lsm.live_segments()[0].has_index("emb")


class TestRecovery:
    def test_recover_flushed_and_unflushed(self, data, prices):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        lsm.flush()
        # These rows never flushed: they survive only in the WAL.
        lsm.insert(np.arange(100, 120), {"emb": data[100:120]}, {"price": prices[100:120]})

        crashed = make_lsm(fs=fs)  # fresh manager on the same storage
        replayed = crashed.recover()
        assert replayed == 1
        assert crashed.num_live_rows == 100
        assert crashed.unflushed_rows == 20
        crashed.flush()
        assert crashed.num_live_rows == 120

    def test_recover_preserves_tombstones(self, data, prices):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs)
        lsm.insert(np.arange(100), {"emb": data[:100]}, {"price": prices[:100]})
        lsm.flush()
        lsm.delete(np.array([7]))
        lsm.flush()

        recovered = make_lsm(fs=fs)
        recovered.recover()
        result = recovered.search("emb", data[7], 1)
        assert result.ids[0, 0] != 7

    def test_wal_disabled_recovers_flushed_only(self, data, prices):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs=fs, enable_wal=False)
        lsm.insert(np.arange(10), {"emb": data[:10]}, {"price": prices[:10]})
        lsm.flush()
        lsm.insert(np.arange(10, 15), {"emb": data[10:15]}, {"price": prices[10:15]})

        recovered = make_lsm(fs=fs, enable_wal=False)
        assert recovered.recover() == 0  # no WAL to replay
        assert recovered.num_live_rows == 10  # flushed rows survive
        assert recovered.unflushed_rows == 0  # unflushed rows are lost

    def test_recover_on_used_manager_raises(self, data, prices):
        lsm = make_lsm()
        lsm.insert(np.arange(10), {"emb": data[:10]}, {"price": prices[:10]})
        lsm.flush()
        with pytest.raises(RuntimeError):
            lsm.recover()
