"""Runtime/static concurrency cross-check, plus regression tests for the
production fixes that reprolint v2's interprocedural rules motivated.

The load-bearing test here is :class:`TestRuntimeSubsetOfStatic`: it
drives a sanitized end-to-end workload (insert / flush / search /
delete / snapshot GC against a real on-disk filesystem), exports the
lock-order edges the sanitizer actually observed, and asserts they are
a **subset** of the statically computed may-acquire graph.  If the
call-graph model ever drifts from reality (a new lock nesting the
static analysis cannot see), this fails before the linter's verdicts
go stale.
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core import Collection, CollectionSchema, VectorField
from repro.datasets import sift_like
from repro.storage import LSMConfig, TieredMergePolicy
from repro.storage.attributes import AttributeColumn
from repro.storage.bufferpool import BufferPool
from repro.storage.filesystem import LocalFileSystem
from repro.storage.manifest import Manifest
from repro.storage.segment import Segment
from repro.utils import sanitizer as san

from tests.test_reprolint import REPO_ROOT


@pytest.fixture
def tsan():
    instance = san.enable()
    instance.reset()
    try:
        yield instance
    finally:
        san.disable()


def run_workload(tmp_path):
    """Exercise every major lock nesting: write, flush, search, GC."""
    schema = CollectionSchema("c", vector_fields=[VectorField("emb", 8)])
    cfg = LSMConfig(
        memtable_flush_bytes=1024,
        index_build_min_rows=64,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
    )
    coll = Collection(schema, lsm_config=cfg, fs=LocalFileSystem(str(tmp_path)))
    data = sift_like(600, dim=8, seed=0)
    ids = coll.insert({"emb": data[:300]})
    coll.flush()
    coll.search("emb", data[:5], 3)
    coll.delete(ids[:50])
    coll.insert({"emb": data[300:]})
    coll.flush()
    coll.search("emb", data[:5], 3)


class TestRuntimeSubsetOfStatic:
    def test_observed_edges_covered_by_static_graph(self, tsan, tmp_path):
        run_workload(tmp_path / "data")
        edges = tsan.lock_order_edges()
        # the workload must actually exercise the hierarchy, or the
        # subset assertion is vacuous
        assert len(edges) >= 5, edges
        assert ("lsm", "wal") in edges
        assert ("wal", "fs") in edges

        dump = tmp_path / "edges.json"
        tsan.dump_edges(str(dump))
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--check-edges", str(dump)],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, (
            f"runtime lock-order edges escaped the static model:\n"
            f"{proc.stdout}\n{proc.stderr}"
        )
        assert "covered by" in proc.stdout

    def test_check_edges_rejects_unknown_edge(self, tsan, tmp_path):
        dump = tmp_path / "edges.json"
        dump.write_text(json.dumps({"edges": [["fs", "lsm"]]}))
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--check-edges", str(dump)],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 1
        assert "fs -> lsm" in proc.stdout

    def test_dump_edges_round_trip(self, tsan, tmp_path):
        a = san.SanitizedLock(threading.Lock(), "outer-role", tsan)
        b = san.SanitizedLock(threading.Lock(), "inner-role", tsan)
        with a:
            with b:
                pass
        dump = tmp_path / "edges.json"
        tsan.dump_edges(str(dump))
        payload = json.loads(dump.read_text())
        assert ["outer-role", "inner-role"] in payload["edges"]

    def test_env_var_dumps_edges_at_exit(self, tmp_path):
        dump = tmp_path / "edges.json"
        code = (
            "import threading\n"
            "from repro.utils import sanitizer as san\n"
            "tsan = san.get_sanitizer()\n"
            "a = san.SanitizedLock(threading.Lock(), 'A', tsan)\n"
            "b = san.SanitizedLock(threading.Lock(), 'B', tsan)\n"
            "with a:\n"
            "    with b:\n"
            "        pass\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            cwd=REPO_ROOT, capture_output=True, text=True, timeout=120,
            env={
                "PYTHONPATH": "src",
                "REPRO_SANITIZE": "1",
                "REPRO_SANITIZE_EDGES": str(dump),
                "PATH": "/usr/bin:/bin",
            },
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(dump.read_text())
        assert ["A", "B"] in payload["edges"]


class TestManifestGcOutsideLock:
    """Regression: GC callbacks used to run *inside* the manifest lock,
    nesting bufferpool/fs work under it (a static blocking-under-lock
    and lock-order finding, and a real deadlock if a callback re-enters
    the manifest)."""

    def test_callback_runs_with_no_manifest_lock_held(self, tsan):
        observed = []

        def on_dead(seg):
            observed.append((seg, tsan.held_roles()))

        manifest = Manifest(on_segment_dead=on_dead)
        manifest.commit(add=[1, 2])
        manifest.commit(remove=[1])  # no pins: segment 1 dies immediately
        assert [seg for seg, _ in observed] == [1]
        for seg, roles in observed:
            assert "manifest" not in roles, roles

    def test_callback_may_reenter_manifest(self, tsan):
        versions = []

        def on_dead(seg):
            # a re-entrant read would deadlock on a non-reentrant lock
            # if the callback still ran under it
            versions.append(manifest.current_version)

        manifest = Manifest(on_segment_dead=on_dead)
        manifest.commit(add=[1])
        snap = manifest.acquire()
        manifest.commit(remove=[1])
        assert not versions  # still pinned by the snapshot
        manifest.release(snap)
        assert versions == [manifest.current_version]
        assert manifest.gc_count == 1

    def test_tombstone_view_is_read_only(self, tsan):
        manifest = Manifest()
        manifest.commit(add=[1], new_tombstones=np.array([3, 5], dtype=np.int64))
        view = manifest.current_tombstones()
        with pytest.raises(ValueError):
            view[0] = 99


class TestBufferPoolLoadOutsideLock:
    """Regression: misses used to invoke the loader while holding the
    pool lock, serializing every concurrent hit behind segment I/O and
    nesting fs/index locks under ``bufferpool``."""

    @staticmethod
    def make_segment(segment_id):
        vectors = np.zeros((4, 8), dtype=np.float32)
        row_ids = np.arange(4, dtype=np.int64) + segment_id * 10
        return Segment(
            segment_id, row_ids, {"emb": vectors},
            {"a": AttributeColumn(np.zeros(4), row_ids)},
            {"emb": (8, "l2")},
        )

    def test_loader_sees_no_bufferpool_lock(self, tsan):
        held_during_load = []

        def loader(segment_id):
            held_during_load.append(tsan.held_roles())
            return self.make_segment(segment_id)

        pool = BufferPool(capacity_bytes=1 << 20, loader=loader)
        pool.get(1)
        assert held_during_load, "loader was never called"
        assert all("bufferpool" not in roles for roles in held_during_load)

    def test_concurrent_double_miss_keeps_one_copy(self):
        gate = threading.Event()
        loads = []

        def loader(segment_id):
            loads.append(segment_id)
            gate.wait(timeout=30)  # both threads reach the loader
            return self.make_segment(segment_id)

        pool = BufferPool(capacity_bytes=1 << 20, loader=loader)
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(pool.get(7)))
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 30
        while len(loads) < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(loads) == 2  # both threads missed and loaded
        gate.set()
        for t in threads:
            t.join(timeout=30)
            assert not t.is_alive()
        # the race loser discarded its duplicate: one resident copy,
        # both callers see the same object
        assert pool.resident_segments == 1
        assert results[0] is results[1]
        assert pool.misses == 2 and pool.hits == 0

    def test_pin_across_racing_miss_is_counted(self):
        pool = BufferPool(
            capacity_bytes=1 << 20, loader=lambda sid: self.make_segment(sid)
        )
        pool.get(3, pin=True)
        with pytest.raises(RuntimeError):
            pool.invalidate(3)
        pool.unpin(3)
        pool.invalidate(3)
        assert pool.resident_segments == 0


class TestFilesystemCounterLock:
    """Regression: ``bytes_written += n`` was an unguarded
    read-modify-write shared by concurrent flush + WAL appends."""

    def test_concurrent_writes_keep_exact_counters(self, tmp_path):
        fs = LocalFileSystem(str(tmp_path))
        per_thread, writes, size = 8, 6, 100

        def writer(tid):
            for i in range(writes):
                fs.write(f"t{tid}/obj{i}", b"x" * size)
                fs.read(f"t{tid}/obj{i}")

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(per_thread)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert fs.bytes_written == per_thread * writes * size
        assert fs.bytes_read == per_thread * writes * size
        fs.reset_counters()
        assert fs.bytes_written == 0 and fs.bytes_read == 0
