"""Baseline engines, the batched IVF executor, datasets, and bench utils."""

import numpy as np
import pytest

from repro.baselines import (
    CAPABILITY_KEYS,
    LibraryStyleEngine,
    MilvusEngine,
    RelationalVectorEngine,
    SPTAGLikeEngine,
    VearchLikeEngine,
)
from repro.bench import format_table, measure_throughput, recall_throughput_curve
from repro.hetero.batched import BatchedIVFSearcher
from repro.index import IVFFlatIndex, FlatIndex
from repro.datasets import (
    deep_like,
    exact_ground_truth,
    recall_at_k,
    recipe_like,
    sift_like,
    random_queries,
    uniform_attributes,
)


@pytest.fixture(scope="module")
def bench_setup():
    data = sift_like(2000, dim=16, seed=0)
    attrs = uniform_attributes(2000, seed=1)
    queries = random_queries(data, 10, seed=2)
    truth = exact_ground_truth(queries, data, 10)
    return data, attrs, queries, truth


class TestBatchedIVF:
    def test_matches_per_query_search(self, bench_setup):
        data, __, queries, ___ = bench_setup
        index = IVFFlatIndex(16, nlist=16, seed=0)
        index.train(data)
        index.add(data)
        batched = BatchedIVFSearcher(index)
        r1 = index.search(queries, 10, nprobe=8)
        r2 = batched.search(queries, 10, nprobe=8)
        np.testing.assert_array_equal(r1.ids, r2.ids)

    def test_rejects_non_ivf(self, bench_setup):
        data, *_ = bench_setup
        flat = FlatIndex(16)
        flat.add(data)
        with pytest.raises(TypeError):
            BatchedIVFSearcher(flat)


class TestBaselineEngines:
    @pytest.mark.parametrize("engine_cls,kwargs", [
        (MilvusEngine, {"nlist": 16}),
        (LibraryStyleEngine, {"nlist": 16}),
        (VearchLikeEngine, {"nlist": 16}),
        (SPTAGLikeEngine, {"n_trees": 8}),
        (RelationalVectorEngine, {"use_index": True}),
    ])
    def test_reasonable_recall(self, bench_setup, engine_cls, kwargs):
        data, attrs, queries, truth = bench_setup
        engine = engine_cls(**kwargs)
        engine.fit(data, attrs)
        params = {} if engine_cls is SPTAGLikeEngine else {"nprobe": 16}
        result = engine.search(queries, 10, **params)
        assert recall_at_k(result.ids, truth) >= 0.6

    def test_capability_rows_match_table1(self):
        """Table 1's Milvus row: yes across the board; others have gaps."""
        milvus = MilvusEngine()
        assert all(milvus.capabilities()[k] for k in CAPABILITY_KEYS)
        library = LibraryStyleEngine()
        assert not library.capabilities()["dynamic_data"]
        assert not library.capabilities()["attribute_filtering"]
        sptag = SPTAGLikeEngine()
        assert not sptag.capabilities()["gpu"]
        vearch = VearchLikeEngine()
        assert not vearch.capabilities()["multi_vector_query"]

    def test_sptag_memory_overhead(self, bench_setup):
        """The paper's 14x memory observation, order of magnitude."""
        data, attrs, *_ = bench_setup
        milvus = MilvusEngine(nlist=16)
        milvus.fit(data)
        sptag = SPTAGLikeEngine(n_trees=12)
        sptag.fit(data)
        assert sptag.memory_bytes() > 5 * milvus.memory_bytes()

    def test_milvus_faster_than_relational(self, bench_setup):
        """The 'two orders of magnitude' class gap, at small scale."""
        data, attrs, queries, __ = bench_setup
        milvus = MilvusEngine(nlist=16)
        milvus.fit(data, attrs)
        relational = RelationalVectorEngine(use_index=False)
        relational.fit(data, attrs)
        qps_m = measure_throughput(lambda q: milvus.search(q, 10, nprobe=8), queries)
        qps_r = measure_throughput(lambda q: relational.search(q, 10), queries)
        assert qps_m > 10 * qps_r

    def test_filtered_search_engines(self, bench_setup):
        data, attrs, queries, __ = bench_setup
        for engine in (MilvusEngine(nlist=16), VearchLikeEngine(nlist=16),
                       RelationalVectorEngine(use_index=True)):
            engine.fit(data, attrs)
            result = engine.filtered_search(queries[:3], 5, 0.0, 5000.0, nprobe=16)
            hits = result.ids[result.ids >= 0]
            assert (attrs[hits] <= 5000.0).all()

    def test_library_has_no_filtering(self, bench_setup):
        data, attrs, queries, __ = bench_setup
        engine = LibraryStyleEngine(nlist=16)
        engine.fit(data, attrs)
        with pytest.raises(NotImplementedError):
            engine.filtered_search(queries[:1], 5, 0, 1)


class TestDatasets:
    def test_sift_like_range(self):
        data = sift_like(100, dim=32)
        assert data.shape == (100, 32)
        assert data.min() >= 0 and data.max() <= 255

    def test_deep_like_normalized(self):
        data = deep_like(100, dim=24)
        np.testing.assert_allclose(np.linalg.norm(data, axis=1), 1.0, atol=1e-5)

    def test_recipe_correlation_controls_alignment(self):
        correlated = recipe_like(500, correlation=0.95, seed=0)
        independent = recipe_like(500, correlation=0.0, seed=0)

        def rank_overlap(entities):
            t_d = ((entities["text"] - entities["text"][0]) ** 2).sum(axis=1)
            i_d = ((entities["image"] - entities["image"][0]) ** 2).sum(axis=1)
            top_t = set(np.argsort(t_d)[:50].tolist())
            top_i = set(np.argsort(i_d)[:50].tolist())
            return len(top_t & top_i)

        assert rank_overlap(correlated) > rank_overlap(independent)

    def test_seeded_reproducibility(self):
        np.testing.assert_array_equal(sift_like(50, seed=5), sift_like(50, seed=5))

    def test_recall_at_k(self):
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(np.array([[1, 2, 3]]), truth) == 1.0
        assert recall_at_k(np.array([[1, 9, 8]]), truth) == pytest.approx(1 / 3)
        assert recall_at_k(np.array([[1, -1, -1]]), truth) == pytest.approx(1 / 3)

    def test_ground_truth_chunking_consistent(self, bench_setup):
        data, __, queries, ___ = bench_setup
        import repro.datasets.groundtruth as gt

        original = gt._CHUNK
        try:
            gt._CHUNK = 100
            chunked = gt.exact_ground_truth(queries[:3], data, 5)
        finally:
            gt._CHUNK = original
        whole = exact_ground_truth(queries[:3], data, 5)
        np.testing.assert_array_equal(chunked, whole)


class TestBenchUtils:
    def test_measure_throughput(self):
        qps = measure_throughput(lambda q: None, np.zeros((100, 4)))
        assert qps > 0

    def test_recall_throughput_curve(self, bench_setup):
        data, __, queries, truth = bench_setup
        index = IVFFlatIndex(16, nlist=16, seed=0)
        index.train(data)
        index.add(data)
        points = recall_throughput_curve(
            index.search, queries, truth, 10,
            [{"nprobe": 1}, {"nprobe": 16}],
        )
        assert len(points) == 2
        assert points[1].recall >= points[0].recall

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        assert "T" in text and "bb" in text and "2.5" in text
