"""Operational health layer (INTERNALS §19): journal, jobs, health, usage.

The acceptance claims under test:

* a mixed insert/flush/search workload under ``REPRO_BG_FLUSH=1``
  yields the causal freeze -> flush.start -> wal.checkpoint ->
  flush.commit -> compaction chain with **deterministic sequence ids**
  across two seeded runs;
* ``/jobs`` shows non-zero rows progress for a flush provably parked
  mid-write (StallGate, not sleeps);
* the watchdog degrades on a transient background fault, goes
  unhealthy (sticky) on a SimulatedCrash, and flags stalled heartbeats
  via an injected clock;
* per-collection usage counters equal the summed per-query profile
  counters exactly, serial == pooled;
* the REST surface: pagination, error paths (400/404/503), /stats
  enrichment, and the all-null off path.
"""

import numpy as np
import pytest

import repro
from repro import obs
from repro.client.rest import RestRouter
from repro.core import (
    AttributeField,
    CollectionSchema,
    MilvusLite,
    VectorField,
)
from repro.obs import events as obs_events
from repro.obs.health import DEGRADED, HEALTHY, UNHEALTHY, HealthMonitor
from repro.obs.jobs import JobRegistry
from repro.storage import (
    FaultPlan,
    FaultyFileSystem,
    InMemoryObjectStore,
    LSMConfig,
    LSMManager,
    SimulatedCrash,
    TieredMergePolicy,
)
from repro.utils.retry import RetryExhaustedError, RetryPolicy

SPECS = {"emb": (8, "l2")}


@pytest.fixture()
def obs_on():
    handle = obs.enable()
    yield handle
    obs.disable()


@pytest.fixture()
def obs_off(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    obs.disable()
    yield


def make_lsm(fs=None, **overrides):
    defaults = dict(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=64, min_segment_bytes=1),
        auto_merge=False,
    )
    defaults.update(overrides)
    return LSMManager(
        SPECS, ("price",), LSMConfig(**defaults),
        fs=fs if fs is not None else InMemoryObjectStore(),
    )


def batch(rng, row_ids):
    row_ids = np.asarray(row_ids, dtype=np.int64)
    return row_ids, {
        "emb": rng.normal(size=(len(row_ids), 8)).astype(np.float32)
    }, {"price": rng.uniform(0, 1, len(row_ids))}


def make_server(name="c", dim=8, attributes=()):
    server = MilvusLite()
    server.create_collection(CollectionSchema(
        name=name,
        vector_fields=[VectorField("emb", dim, "l2")],
        attribute_fields=[AttributeField(a) for a in attributes],
    ))
    return server, server.get_collection(name)


# ---------------------------------------------------------------------------
# event chain: causality + cross-run determinism
# ---------------------------------------------------------------------------


class TestEventChain:
    @staticmethod
    def _mixed_workload(seed):
        """One seeded run; returns the journal chain (ts excluded)."""
        handle = obs.enable()
        try:
            server, coll = make_server()
            rng = np.random.default_rng(seed)
            for __ in range(4):
                coll.insert({"emb": rng.normal(size=(50, 8)).astype(np.float32)})
                coll.flush()
                coll.search("emb", rng.normal(size=(2, 8)).astype(np.float32), k=3)
            coll.lsm.close()
            return [
                (e.seq, e.kind, tuple(sorted(e.attrs.items())))
                for e in handle.events.events()
            ]
        finally:
            obs.disable()

    def test_causal_chain_and_deterministic_seq_across_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BG_FLUSH", "1")
        first = self._mixed_workload(seed=42)
        second = self._mixed_workload(seed=42)
        # identical chains, event for event, including sequence ids
        assert first == second
        assert first, "workload emitted no events"

        seqs = [seq for seq, __, ___ in first]
        assert seqs == list(range(1, len(first) + 1))  # gapless from 1

        by_kind = {}
        for seq, kind, __ in first:
            by_kind.setdefault(kind, []).append(seq)
        # the background chain: freeze -> flush.start -> checkpoint ->
        # flush.commit, four times, causally ordered within each cycle
        for kind in (obs_events.MEMTABLE_FREEZE, obs_events.FLUSH_START,
                     obs_events.WAL_CHECKPOINT, obs_events.FLUSH_COMMIT):
            assert len(by_kind[kind]) == 4, kind
        for freeze, start, ckpt, commit in zip(
            by_kind[obs_events.MEMTABLE_FREEZE],
            by_kind[obs_events.FLUSH_START],
            by_kind[obs_events.WAL_CHECKPOINT],
            by_kind[obs_events.FLUSH_COMMIT],
        ):
            assert freeze < start < ckpt < commit
        # compaction (auto-merge of the four segments) planned, then
        # committed after its inputs' deferred deletes
        assert by_kind[obs_events.COMPACTION_PLAN]
        assert by_kind[obs_events.COMPACTION_COMMIT]
        assert by_kind[obs_events.COMPACTION_PLAN][0] < (
            by_kind[obs_events.COMPACTION_COMMIT][0]
        )
        # every kind emitted is part of the documented taxonomy
        assert set(by_kind) <= obs_events.EVENT_KINDS

    def test_flush_commit_attrs_carry_ids(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_BG_FLUSH", "1")
        server, coll = make_server()
        rng = np.random.default_rng(0)
        coll.insert({"emb": rng.normal(size=(10, 8)).astype(np.float32)})
        coll.flush()
        coll.lsm.close()
        commits = [e for e in obs_on.events.events()
                   if e.kind == obs_events.FLUSH_COMMIT]
        assert commits and commits[0].attrs["fid"] >= 0
        assert commits[0].attrs["seg_id"] >= 0

    def test_recovery_event_reports_replayed_rows(self, obs_on):
        fs = InMemoryObjectStore()
        lsm = make_lsm(fs)
        rng = np.random.default_rng(1)
        ids, vecs, attrs = batch(rng, np.arange(30))
        lsm.insert(ids, vecs, attrs)  # WAL'd, never flushed
        lsm2 = make_lsm(fs)
        lsm2.recover()
        recoveries = [e for e in obs_on.events.events()
                      if e.kind == obs_events.RECOVERY]
        assert recoveries and recoveries[-1].attrs["replayed"] >= 1

    def test_retry_exhausted_emits_event(self, obs_on):
        policy = RetryPolicy(max_attempts=2, sleep=lambda s: None)

        def always_fails():
            raise IOError("flaky")

        with pytest.raises(RetryExhaustedError):
            policy.call(always_fails)
        events = [e for e in obs_on.events.events()
                  if e.kind == obs_events.RETRY_EXHAUSTED]
        assert events and events[0].attrs["attempts"] == 2
        assert events[0].attrs["error"] == "OSError"

    def test_journal_ring_is_bounded_but_seq_keeps_counting(self):
        journal = obs_events.EventJournal(capacity=4, clock=lambda: 0.0)
        for i in range(10):
            journal.emit("memtable.freeze", i=i)
        assert len(journal) == 4
        assert journal.last_seq() == 10
        assert [e.seq for e in journal.events()] == [7, 8, 9, 10]
        assert [e.seq for e in journal.events(limit=2, newest_first=True)] == [10, 9]


# ---------------------------------------------------------------------------
# jobs: mid-flush progress under a StallGate
# ---------------------------------------------------------------------------


class TestJobsMidFlush:
    def test_parked_flush_shows_nonzero_progress(self, obs_on):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=31)
        rule = plan.stall("segments/*", op="write", nth=1)
        lsm = make_lsm(
            FaultyFileSystem(inner, plan),
            memtable_flush_bytes=1, background=True,
        )
        rng = np.random.default_rng(0)
        ids, vecs, attrs = batch(rng, np.arange(25))
        lsm.insert(ids, vecs, attrs)

        assert rule.gate.reached.wait(10), "flush never reached its write"
        # The flush job is mid-write: registered, phased, with progress.
        running = [j.to_dict() for j in obs_on.jobs.running()]
        flushes = [j for j in running if j["kind"] == "flush"]
        assert flushes, running
        job = flushes[0]
        assert job["phase"] == "segment-write"
        assert job["rows_done"] == 25 and job["rows_total"] == 25
        assert job["bytes_total"] > 0
        assert obs_on.registry.gauge("bg_jobs_running", kind="flush").value == 1

        rule.gate.release.set()
        lsm.flush()
        finished = [j.to_dict() for j in obs_on.jobs.finished()]
        assert any(
            j["kind"] == "flush" and j["state"] == "done"
            and j["bytes_done"] > 0 for j in finished
        )
        assert obs_on.registry.gauge("bg_jobs_running", kind="flush").value == 0
        lsm.close()

    def test_rest_jobs_snapshot_shape(self, obs_on):
        router = RestRouter()
        resp = router.handle("GET", "/jobs")
        assert resp.ok
        assert set(resp.body) == {"running", "finished", "queues"}


# ---------------------------------------------------------------------------
# health transitions
# ---------------------------------------------------------------------------


class TestHealthTransitions:
    def test_transient_bg_fault_degrades_then_recovers(self, obs_on):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=7)
        plan.fail("segments/*", op="write", nth=1, times=1, exc_type=IOError)
        lsm = make_lsm(
            FaultyFileSystem(inner, plan),
            memtable_flush_bytes=1, background=True,
        )
        rng = np.random.default_rng(2)
        ids, vecs, attrs = batch(rng, np.arange(10))
        lsm.insert(ids, vecs, attrs)
        with pytest.raises(IOError):
            lsm.flush()  # barrier surfaces the one-shot transient error
        report = obs_on.health.report()
        assert report["status"] == DEGRADED
        assert "flusher" in report["components"]["background"]["failures"]

        lsm.flush()  # retry: the re-queued frozen entry flushes clean
        report = obs_on.health.report()
        assert report["status"] == HEALTHY
        assert report["components"]["background"]["failures"] == {}
        lsm.close()

    def test_simulated_crash_is_sticky_unhealthy(self, obs_on):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=8)
        plan.crash_before("segments/*", op="write", nth=1)
        lsm = make_lsm(
            FaultyFileSystem(inner, plan),
            memtable_flush_bytes=1, background=True,
        )
        rng = np.random.default_rng(3)
        ids, vecs, attrs = batch(rng, np.arange(10))
        lsm.insert(ids, vecs, attrs)
        with pytest.raises(SimulatedCrash):
            lsm.flush()
        assert obs_on.health.report()["status"] == UNHEALTHY
        # sticky: a later note_bg_ok must NOT clear a fatal failure
        obs_on.health.note_bg_ok("flusher")
        assert obs_on.health.report()["status"] == UNHEALTHY
        lsm.close()

    def test_stalled_job_heartbeat_with_injected_clock(self):
        fake = [0.0]
        clock = fake.__getitem__
        jobs = JobRegistry(clock=lambda: clock(0))
        health = HealthMonitor(jobs=jobs, clock=lambda: clock(0),
                               job_stall_seconds=30.0)
        job = jobs.start("flush")
        assert health.report()["components"]["jobs"]["status"] == HEALTHY
        fake[0] = 31.0  # heartbeat is now 31s old
        report = health.report()
        assert report["status"] == DEGRADED
        stalled = report["components"]["jobs"]["stalled"]
        assert [j["kind"] for j in stalled] == ["flush"]
        job.heartbeat()  # phase progress refreshes the heartbeat
        assert health.report()["status"] == HEALTHY
        job.finish()
        assert health.report()["status"] == HEALTHY

    def test_numeric_signal_thresholds(self):
        health = HealthMonitor()
        assert health.report()["status"] == HEALTHY
        health.set_signal("wal_lag_bytes", 5 << 20)
        assert health.report()["status"] == DEGRADED
        health.set_signal("wal_lag_bytes", 65 << 20)
        assert health.report()["status"] == UNHEALTHY
        health.set_signal("wal_lag_bytes", 0)
        health.set_signal("frozen_memtables", 40)
        assert health.report()["components"]["memtable"]["status"] == UNHEALTHY
        health.set_signal("frozen_memtables", 0)
        health.set_signal("exec_queue_depth", 1000)
        # pool saturation alone is never "unhealthy" — it drains
        assert health.report()["status"] == DEGRADED

    def test_wal_lag_gauge_feeds_health_and_zeroes_on_checkpoint(self, obs_on):
        lsm = make_lsm()
        rng = np.random.default_rng(4)
        ids, vecs, attrs = batch(rng, np.arange(20))
        lsm.insert(ids, vecs, attrs)
        assert obs_on.registry.total("wal_lag_bytes") > 0
        lsm.flush()  # checkpoint truncates the WAL
        assert obs_on.registry.total("wal_lag_bytes") == 0
        checkpoints = [e for e in obs_on.events.events()
                       if e.kind == obs_events.WAL_CHECKPOINT]
        assert checkpoints and checkpoints[-1].attrs["lag_bytes"] == 0


# ---------------------------------------------------------------------------
# usage accounting
# ---------------------------------------------------------------------------


class TestUsageAccounting:
    @staticmethod
    def _run_queries(parallel):
        handle = obs.enable()
        try:
            server, coll = make_server()
            rng = np.random.default_rng(5)
            coll.insert({"emb": rng.normal(size=(200, 8)).astype(np.float32)})
            coll.flush()
            expected = {}
            for __ in range(4):
                queries = rng.normal(size=(3, 8)).astype(np.float32)
                result = coll.search(
                    "emb", queries, k=5, explain=True, parallel=parallel,
                )
                for key, value in result.profile.total_counters().items():
                    expected[key] = expected.get(key, 0) + value
            record = handle.usage.collection("c")
            return expected, record
        finally:
            obs.disable()

    def test_usage_counters_equal_summed_profiles(self):
        expected, record = self._run_queries(parallel=False)
        assert record["queries"] == 4
        assert record["inserts"] == 1 and record["insert_rows"] == 200
        assert record["counters"] == expected
        assert expected["distance_evals"] > 0

    def test_pooled_equals_serial(self):
        serial_expected, serial = self._run_queries(parallel=False)
        pooled_expected, pooled = self._run_queries(parallel=True)
        assert serial["counters"] == pooled["counters"]
        assert serial_expected == pooled_expected

    def test_nested_searches_not_double_counted(self, obs_on):
        """Pooled per-segment sub-searches must not inflate the query
        count: one top-level search == one metered query."""
        server, coll = make_server()
        rng = np.random.default_rng(6)
        coll.insert({"emb": rng.normal(size=(100, 8)).astype(np.float32)})
        coll.flush()
        coll.search("emb", rng.normal(size=(2, 8)).astype(np.float32), k=3,
                    parallel=True, pool_size=2)
        assert obs_on.usage.collection("c")["queries"] == 1

    def test_meter_is_bounded_with_overflow_bucket(self):
        from repro.obs.usage import OVERFLOW, UsageMeter

        meter = UsageMeter(max_collections=2)
        for name in ("a", "b", "c", "d"):
            meter.record_query(name, 0.01, {"distance_evals": 1})
        snap = meter.snapshot()
        assert set(snap) == {"a", "b", OVERFLOW}
        assert snap[OVERFLOW]["queries"] == 2

    def test_forget_on_drop(self, obs_on):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "tmp", "vector_fields": [{"name": "v", "dim": 4}],
        })
        router.handle("POST", "/collections/tmp/entities", {
            "data": {"v": np.eye(4).tolist()},
        })
        assert "tmp" in obs_on.usage.snapshot()
        router.handle("DELETE", "/collections/tmp")
        assert "tmp" not in obs_on.usage.snapshot()


# ---------------------------------------------------------------------------
# REST surface
# ---------------------------------------------------------------------------


class TestRestOps:
    def test_events_pagination_newest_first(self, obs_on):
        for i in range(5):
            obs_on.events.emit(obs_events.MEMTABLE_FREEZE, i=i)
        router = RestRouter()
        resp = router.handle("GET", "/events?limit=2")
        assert resp.ok
        assert [e["seq"] for e in resp.body["events"]] == [5, 4]
        assert resp.body["last_seq"] == 5
        assert router.handle("GET", "/events?limit=0").body["events"] == []
        everything = router.handle("GET", "/events").body["events"]
        assert len(everything) == 5

    @pytest.mark.parametrize("bad", ["zebra", "-1", "1.5", "100001", ""])
    def test_garbage_limit_is_400(self, obs_on, bad):
        router = RestRouter()
        for path in ("/events", "/slowlog", "/traces"):
            resp = router.handle("GET", f"{path}?limit={bad}")
            assert resp.status == 400, (path, bad)
            assert "limit" in resp.body["error"]

    def test_slowlog_and_traces_accept_limit(self, obs_on):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "s", "vector_fields": [{"name": "v", "dim": 4}],
        })
        router.handle("POST", "/collections/s/entities", {
            "data": {"v": np.eye(4).tolist()},
        })
        for __ in range(3):
            router.handle("POST", "/collections/s/search", {
                "field": "v", "queries": np.eye(4)[:1].tolist(), "k": 1,
            })
        all_ids = router.handle("GET", "/traces").body["trace_ids"]
        limited = router.handle("GET", "/traces?limit=2").body["trace_ids"]
        assert len(all_ids) > 2
        # the route returns newest first; the un-limited GET's own trace
        # registered in between, so it is the newest entry here
        assert len(limited) == 2
        assert limited[1] == all_ids[0]
        assert limited[0] not in all_ids
        assert router.handle("GET", "/slowlog?limit=1").ok

    def test_health_route_maps_unhealthy_to_503(self, obs_on):
        router = RestRouter()
        resp = router.handle("GET", "/health")
        assert resp.status == 200 and resp.body["status"] == HEALTHY
        obs_on.health.note_bg_failure("flusher", "SimulatedCrash: boom",
                                      fatal=True)
        resp = router.handle("GET", "/health")
        assert resp.status == 503 and resp.body["status"] == UNHEALTHY

    def test_usage_routes(self, obs_on):
        obs_on.usage.record_query("c", 0.01, {"distance_evals": 7})
        router = RestRouter()
        body = router.handle("GET", "/usage").body
        assert body["collections"]["c"]["counters"]["distance_evals"] == 7
        one = router.handle("GET", "/usage/c")
        assert one.ok and one.body["queries"] == 1
        assert router.handle("GET", "/usage/nope").status == 404

    def test_stats_enrichment_preserves_collections(self, obs_on):
        router = RestRouter()
        router.handle("POST", "/collections", {
            "name": "s", "vector_fields": [{"name": "v", "dim": 4}],
        })
        body = router.handle("GET", "/stats").body
        assert "s" in body["collections"]
        assert body["version"] == repro.__version__
        assert body["uptime_seconds"] > 0
        assert body["flags"]["observability"] is True
        assert isinstance(body["flags"]["parallel"], bool)
        assert obs_on.registry.total("process_uptime_seconds") > 0

    def test_unknown_routes_stay_404(self, obs_on):
        router = RestRouter()
        assert router.handle("GET", "/healthz").status == 404
        assert router.handle("POST", "/health").status == 404

    def test_sdk_accessors_mirror_rest(self, obs_on):
        obs_on.events.emit(obs_events.MEMTABLE_FREEZE, fid=1)
        obs_on.usage.record_query("c", 0.01, {"rows_scanned": 3})
        from repro.client.sdk import MilvusClient

        client = MilvusClient(MilvusLite())
        assert client.health()["status"] == HEALTHY
        assert [e["kind"] for e in client.events(limit=1)] == [
            obs_events.MEMTABLE_FREEZE
        ]
        assert client.jobs() == {"running": [], "finished": [], "queues": {}}
        assert client.usage("c")["counters"]["rows_scanned"] == 3
        assert client.usage("nope") is None


# ---------------------------------------------------------------------------
# disabled path: every signal is a no-op null object
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_null_objects_all_the_way_down(self, obs_off):
        handle = obs.get_obs()
        assert handle.events.emit("memtable.freeze", fid=1) is None
        assert handle.events.events() == []
        assert handle.events.last_seq() == 0
        job = handle.jobs.start("flush")
        job.advance(phase="x", rows_done=5)
        job.finish()
        assert handle.jobs.snapshot() == {
            "running": [], "finished": [], "queues": {},
        }
        handle.health.note_bg_failure("flusher", "boom", fatal=True)
        assert handle.health.report()["status"] == "unknown"
        handle.usage.record_query("c", 0.1, {"distance_evals": 1})
        assert handle.usage.snapshot() == {}
        assert handle.usage.collection("c") is None

    def test_rest_routes_serve_empty_shapes_when_off(self, obs_off):
        router = RestRouter()
        assert router.handle("GET", "/health").body["status"] == "unknown"
        assert router.handle("GET", "/events").body["events"] == []
        assert router.handle("GET", "/jobs").body["running"] == []
        assert router.handle("GET", "/usage").body["collections"] == {}
        # pagination parsing still validates when off
        assert router.handle("GET", "/events?limit=junk").status == 400

    def test_workload_emits_nothing_when_off(self, obs_off, monkeypatch):
        monkeypatch.setenv("REPRO_BG_FLUSH", "1")
        server, coll = make_server()
        rng = np.random.default_rng(9)
        coll.insert({"emb": rng.normal(size=(20, 8)).astype(np.float32)})
        coll.flush()
        coll.search("emb", rng.normal(size=(1, 8)).astype(np.float32), k=1)
        coll.lsm.close()
        handle = obs.get_obs()
        assert handle.events.events() == []
        assert handle.usage.snapshot() == {}
