"""GPU engine: large-k kernel, device model, SQ8H, multi-GPU scheduling."""

import numpy as np
import pytest

from repro.hetero import (
    GPUDevice,
    SQ8HConfig,
    SQ8HExecutor,
    SearchTask,
    SegmentScheduler,
    TESLA_T4,
    gpu_topk_large_k,
)
from repro.index import IVFSQ8Index
from repro.datasets import exact_ground_truth, sift_like


class TestLargeKKernel:
    @pytest.fixture(scope="class")
    def data(self):
        return sift_like(3000, dim=16, seed=0)

    def test_matches_exact_beyond_round_limit(self, data):
        queries = data[:3]
        ids, scores = gpu_topk_large_k(queries, data, 1500, "l2", round_k=512)
        truth = exact_ground_truth(queries, data, 1500, "l2")
        for qi in range(3):
            assert set(ids[qi][ids[qi] >= 0].tolist()) == set(truth[qi].tolist())

    def test_scores_sorted_within_rounds_merge(self, data):
        ids, scores = gpu_topk_large_k(data[:1], data, 600, "l2", round_k=256)
        # Cumulative rounds produce globally best-first order.
        assert (np.diff(scores[0]) >= -1e-6).all()

    def test_duplicate_distances_handled(self):
        # Many exact ties at the round boundary: no row may repeat.
        base = np.zeros((50, 4), dtype=np.float32)
        base[:, 0] = np.repeat(np.arange(10), 5)  # 5-way ties
        query = np.zeros((1, 4), dtype=np.float32)
        ids, __ = gpu_topk_large_k(query, base, 50, "l2", round_k=7)
        valid = ids[0][ids[0] >= 0]
        assert len(valid) == len(set(valid.tolist())) == 50

    def test_k_cap_enforced(self, data):
        with pytest.raises(ValueError):
            gpu_topk_large_k(data[:1], data, 20000)

    def test_ip_metric(self, data):
        ids, scores = gpu_topk_large_k(data[:2], data, 300, "ip", round_k=128)
        truth = exact_ground_truth(data[:2], data, 300, "ip")
        for qi in range(2):
            assert set(ids[qi].tolist()) == set(truth[qi].tolist())


class TestGPUDevice:
    def test_residency_and_memory(self):
        gpu = GPUDevice()
        assert gpu.fits(10 ** 9)
        gpu.load("seg0", 10 ** 9)
        assert gpu.is_resident("seg0")
        assert gpu.resident_bytes == 10 ** 9
        assert gpu.load("seg0", 10 ** 9) == 0.0  # already resident
        gpu.evict("seg0", 10 ** 9)
        assert not gpu.is_resident("seg0")

    def test_oom(self):
        gpu = GPUDevice()
        with pytest.raises(MemoryError):
            gpu.load("huge", TESLA_T4.memory_bytes + 1)

    def test_batched_transfer_faster(self):
        gpu = GPUDevice()
        nbytes = 10 ** 9
        assert gpu.transfer_seconds(nbytes, batched=True) < gpu.transfer_seconds(
            nbytes, batched=False
        )

    def test_kernel_seconds_scale(self):
        gpu = GPUDevice()
        t1 = gpu.kernel_seconds(10, 10**6, 128)
        t2 = gpu.kernel_seconds(20, 10**6, 128)
        assert t2 > t1


class TestSQ8H:
    def test_plan_mode_switch(self):
        """Algorithm 1: batch >= threshold -> GPU; below -> hybrid."""
        ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=100, nprobe=8))
        small = ex.model_plan(10, n=10**8, dim=128, nlist=1024)
        big = ex.model_plan(500, n=10**8, dim=128, nlist=1024)
        assert small.mode == "hybrid"
        assert small.step1_device == "gpu" and small.step2_device == "cpu"
        assert small.transfer_seconds == 0.0  # no segment crosses PCIe
        assert big.mode == "gpu"
        assert big.transfer_seconds > 0.0

    def test_sq8h_never_worse(self):
        """Fig. 13: SQ8H is fastest at every batch size."""
        ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=1000, nprobe=64))
        for m in (1, 10, 100, 500, 2000):
            t = ex.model_times(m, n=10**9, dim=128, nlist=16384)
            assert t["sq8h"] <= min(t["pure_cpu"], t["pure_gpu"]) + 1e-9

    def test_gpu_cpu_gap_narrows_with_batch(self):
        """Fig. 13: more queries -> more compute per transferred byte."""
        ex = SQ8HExecutor(config=SQ8HConfig(batch_threshold=10**9, nprobe=64))
        ratios = []
        for m in (10, 100, 500):
            t = ex.model_times(m, n=10**9, dim=128, nlist=16384)
            ratios.append(t["pure_gpu"] / t["pure_cpu"])
        assert ratios[0] > ratios[1] > ratios[2]

    def test_real_execution_over_index(self):
        data = sift_like(600, dim=16, seed=1)
        index = IVFSQ8Index(16, nlist=8, seed=0)
        index.train(data)
        index.add(data)
        ex = SQ8HExecutor(index=index, config=SQ8HConfig(batch_threshold=4, nprobe=8))
        result = ex.search(data[:2], 5)
        assert result.ids[0, 0] == 0
        assert ex.last_plan.mode == "hybrid"
        result = ex.search(data[:8], 5)
        assert ex.last_plan.mode == "gpu"

    def test_search_without_index_raises(self):
        with pytest.raises(RuntimeError):
            SQ8HExecutor().search(np.zeros((1, 4), dtype=np.float32), 1)


class TestSegmentScheduler:
    def _tasks(self, n, nbytes=10**8):
        return [SearchTask(i, nbytes, 100, 10**6, 128) for i in range(n)]

    def test_balances_load(self):
        sched = SegmentScheduler([GPUDevice(device_id=0), GPUDevice(device_id=1)])
        sched.dispatch_all(self._tasks(8))
        loads = sched.device_loads()
        assert abs(loads[0] - loads[1]) / max(loads.values()) < 0.3

    def test_more_devices_smaller_makespan(self):
        one = SegmentScheduler([GPUDevice(device_id=0)])
        one.dispatch_all(self._tasks(8))
        two = SegmentScheduler([GPUDevice(device_id=0), GPUDevice(device_id=1)])
        two.dispatch_all(self._tasks(8))
        assert two.makespan() < one.makespan()

    def test_runtime_device_addition(self):
        """The paper's elastic cloud story: new GPU discovered at runtime."""
        sched = SegmentScheduler([GPUDevice(device_id=0)])
        sched.dispatch_all(self._tasks(4))
        before = sched.makespan()
        sched.add_device(GPUDevice(device_id=1))
        assignments = sched.dispatch_all(self._tasks(4))
        # The new (idle) device picks up work immediately.
        assert any(a.device_id == 1 for a in assignments)

    def test_segment_affinity_saves_transfer(self):
        sched = SegmentScheduler([GPUDevice(device_id=0)])
        task = SearchTask(7, 10**8, 100, 10**6, 128)
        first = sched.dispatch(task)
        second = sched.dispatch(task)  # segment now resident
        assert (second.end_seconds - second.start_seconds) < (
            first.end_seconds - first.start_seconds
        )

    def test_no_devices_raises(self):
        with pytest.raises(RuntimeError):
            SegmentScheduler().dispatch(self._tasks(1)[0])

    def test_duplicate_device_rejected(self):
        sched = SegmentScheduler([GPUDevice(device_id=0)])
        with pytest.raises(ValueError):
            sched.add_device(GPUDevice(device_id=0))

    def test_remove_device(self):
        sched = SegmentScheduler([GPUDevice(device_id=0), GPUDevice(device_id=1)])
        sched.remove_device(1)
        assert sched.num_devices == 1
