"""Collection integration: the entity-level API over the LSM engine."""

import numpy as np
import pytest

from repro.core import (
    AttributeField,
    CollectionSchema,
    Collection,
    InvalidQueryError,
    MilvusLite,
    SchemaError,
    VectorField,
)
from repro.storage import LSMConfig, TieredMergePolicy
from repro.datasets import sift_like


def make_collection(async_writes=False):
    schema = CollectionSchema(
        "items",
        vector_fields=[VectorField("emb", 16)],
        attribute_fields=[AttributeField("price")],
    )
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
    )
    return Collection(schema, lsm_config=cfg, async_writes=async_writes)


@pytest.fixture()
def coll():
    return make_collection()


@pytest.fixture(scope="module")
def data():
    return sift_like(400, dim=16, seed=0)


@pytest.fixture(scope="module")
def prices():
    return np.linspace(0, 100, 400)


class TestInsertSearch:
    def test_insert_returns_monotone_ids(self, coll, data, prices):
        ids1 = coll.insert({"emb": data[:100], "price": prices[:100]})
        ids2 = coll.insert({"emb": data[100:200], "price": prices[100:200]})
        assert ids1.tolist() == list(range(100))
        assert ids2.tolist() == list(range(100, 200))

    def test_flush_makes_visible(self, coll, data, prices):
        coll.insert({"emb": data[:100], "price": prices[:100]})
        assert coll.num_entities == 0
        coll.flush()
        assert coll.num_entities == 100

    def test_search_exact(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        result = coll.search("emb", data[33], 1)
        assert result.ids[0, 0] == 33

    def test_payload_validation(self, coll, data, prices):
        with pytest.raises(SchemaError):
            coll.insert({"emb": data[:5]})  # missing attribute
        with pytest.raises(SchemaError):
            coll.insert({"emb": data[:5], "price": prices[:5], "extra": prices[:5]})
        with pytest.raises(SchemaError):
            coll.insert({"emb": np.zeros((5, 17), np.float32), "price": prices[:5]})
        with pytest.raises(SchemaError):
            coll.insert({"emb": data[:5], "price": prices[:3]})

    def test_unknown_field_search(self, coll, data, prices):
        coll.insert({"emb": data[:10], "price": prices[:10]})
        coll.flush()
        with pytest.raises(SchemaError):
            coll.search("missing", data[0], 1)


class TestDeleteUpdate:
    def test_delete(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        coll.delete([33])
        coll.flush()
        assert coll.num_entities == 399
        assert coll.search("emb", data[33], 1).ids[0, 0] != 33

    def test_update_assigns_new_id(self, coll, data, prices):
        ids = coll.insert({"emb": data[:10], "price": prices[:10]})
        coll.flush()
        new_ids = coll.update([int(ids[0])], {"emb": data[10:11], "price": prices[10:11]})
        coll.flush()
        assert new_ids[0] == 10
        assert coll.num_entities == 10
        result = coll.search("emb", data[10], 1)
        assert result.ids[0, 0] == 10


class TestAttributeFiltering:
    def test_filter_restricts_results(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        result = coll.search("emb", data[0], 10, filter=("price", 0.0, 25.0))
        hit_ids = result.ids[0][result.ids[0] >= 0]
        assert (prices[hit_ids] <= 25.0).all()

    def test_filter_empty_range(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        result = coll.search("emb", data[0], 5, filter=("price", 1000.0, 2000.0))
        assert (result.ids == -1).all()

    def test_unknown_attribute(self, coll, data, prices):
        coll.insert({"emb": data[:10], "price": prices[:10]})
        coll.flush()
        with pytest.raises(InvalidQueryError):
            coll.search("emb", data[0], 5, filter=("bogus", 0, 1))


class TestPointReads:
    def test_fetch_vectors(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        got = coll.fetch_vectors("emb", [7, 300])
        np.testing.assert_array_equal(got, data[[7, 300]])

    def test_fetch_vectors_missing(self, coll, data, prices):
        coll.insert({"emb": data[:10], "price": prices[:10]})
        coll.flush()
        with pytest.raises(KeyError):
            coll.fetch_vectors("emb", [999])

    def test_fetch_attributes(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        got = coll.fetch_attributes("price", [5, 50])
        np.testing.assert_allclose(got, prices[[5, 50]])


class TestAsyncWrites:
    def test_flush_drains_queue(self, data, prices):
        coll = make_collection(async_writes=True)
        coll.insert({"emb": data[:200], "price": prices[:200]})
        coll.delete([3])
        coll.flush()  # blocks until the background writer applied everything
        assert coll.num_entities == 199

    def test_ids_assigned_synchronously(self, data, prices):
        coll = make_collection(async_writes=True)
        ids = coll.insert({"emb": data[:10], "price": prices[:10]})
        assert ids.tolist() == list(range(10))
        coll.flush()


class TestMaintenance:
    def test_create_index_and_search(self, coll, data, prices):
        coll.insert({"emb": data, "price": prices})
        coll.flush()
        indexed = coll.create_index("emb", "IVF_FLAT", nlist=8)
        assert indexed == 1
        result = coll.search("emb", data[5], 1, nprobe=8)
        assert result.ids[0, 0] == 5

    def test_compact(self, coll, data, prices):
        for i in range(2):
            coll.insert({"emb": data[i * 100:(i + 1) * 100], "price": prices[i * 100:(i + 1) * 100]})
            coll.flush()
        assert coll.compact() >= 0  # auto-merge may have run already

    def test_describe(self, coll, data, prices):
        coll.insert({"emb": data[:10], "price": prices[:10]})
        info = coll.describe()
        assert info["unflushed_rows"] == 10
        assert info["num_entities"] == 0
