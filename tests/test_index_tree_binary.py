"""Tree index (Annoy) and binary FLAT."""

import numpy as np
import pytest

from repro.index import AnnoyIndex, BinaryFlatIndex
from repro.metrics import pack_bits, jaccard_pairwise
from repro.datasets import (
    chemical_fingerprints,
    exact_ground_truth,
    recall_at_k,
    sift_like,
    random_queries,
)


class TestAnnoy:
    @pytest.fixture(scope="class")
    def setup(self):
        data = sift_like(800, dim=16, n_clusters=8, seed=5)
        queries = random_queries(data, 10, seed=6)
        truth = exact_ground_truth(queries, data, 10)
        index = AnnoyIndex(16, n_trees=10, leaf_size=24, seed=0)
        index.add(data)
        index.build()
        return data, queries, truth, index

    def test_reasonable_recall(self, setup):
        __, queries, truth, index = setup
        result = index.search(queries, 10, search_k=1500)
        assert recall_at_k(result.ids, truth) >= 0.7

    def test_recall_improves_with_search_k(self, setup):
        __, queries, truth, index = setup
        low = recall_at_k(index.search(queries, 10, search_k=50).ids, truth)
        high = recall_at_k(index.search(queries, 10, search_k=3000).ids, truth)
        assert high >= low

    def test_full_budget_is_exact(self, setup):
        data, queries, truth, index = setup
        result = index.search(queries, 10, search_k=len(data))
        assert recall_at_k(result.ids, truth) == 1.0

    def test_rebuild_after_add(self, setup):
        data, *_ = setup
        index = AnnoyIndex(16, n_trees=4, seed=0)
        index.add(data[:100])
        index.search(data[0], 1)  # triggers build
        index.add(data[100:200])  # invalidates
        result = index.search(data[150], 1, search_k=200)
        assert result.ids[0, 0] == 150

    def test_more_trees_more_memory(self, setup):
        data, *_ = setup
        small = AnnoyIndex(16, n_trees=2, seed=0)
        small.add(data)
        small.build()
        big = AnnoyIndex(16, n_trees=12, seed=0)
        big.add(data)
        big.build()
        assert big.memory_bytes() > small.memory_bytes()


class TestBinaryFlat:
    @pytest.fixture(scope="class")
    def setup(self):
        codes, families = chemical_fingerprints(400, n_bits=256, seed=0)
        index = BinaryFlatIndex(256, metric="jaccard")
        index.add(codes)
        return codes, families, index

    def test_self_is_top1(self, setup):
        codes, __, index = setup
        result = index.search(codes[:5], 1)
        assert result.ids[:, 0].tolist() == [0, 1, 2, 3, 4]

    def test_neighbors_share_family(self, setup):
        codes, families, index = setup
        result = index.search(codes[:20], 5)
        same_family = 0
        total = 0
        for qi in range(20):
            for hit in result.ids[qi][1:]:  # skip self
                if hit >= 0:
                    total += 1
                    if families[hit] == families[qi]:
                        same_family += 1
        assert same_family / total >= 0.8

    def test_matches_brute_force(self, setup):
        codes, __, index = setup
        result = index.search(codes[:3], 10)
        dists = jaccard_pairwise(codes[:3], codes)
        for qi in range(3):
            expected = set(np.argsort(dists[qi], kind="stable")[:10].tolist())
            # Ties may reorder; compare score sets instead of id sets.
            got_scores = sorted(result.scores[qi].tolist())
            expected_scores = sorted(np.sort(dists[qi])[:10].tolist())
            np.testing.assert_allclose(got_scores, expected_scores, atol=1e-9)

    def test_rejects_dense_metric(self):
        with pytest.raises(ValueError):
            BinaryFlatIndex(64, metric="l2")

    def test_rejects_wrong_code_width(self, setup):
        __, ___, index = setup
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 16), dtype=np.uint8))

    def test_hamming_metric(self):
        codes, __ = chemical_fingerprints(100, n_bits=128, seed=1)
        index = BinaryFlatIndex(128, metric="hamming")
        index.add(codes)
        result = index.search(codes[0], 1)
        assert result.ids[0, 0] == 0
        assert result.scores[0, 0] == 0
