"""Manifest: MVCC versions, snapshot refcounts, and segment GC."""

import numpy as np
import pytest

from repro.storage import Manifest


class TestManifestVersions:
    def test_commit_advances_version(self):
        manifest = Manifest()
        v1 = manifest.commit(add=[0])
        v2 = manifest.commit(add=[1])
        assert v2 == v1 + 1
        assert manifest.live_segment_ids() == (0, 1)

    def test_remove_segments(self):
        manifest = Manifest()
        manifest.commit(add=[0, 1])
        manifest.commit(add=[2], remove=[0, 1])
        assert manifest.live_segment_ids() == (2,)

    def test_duplicate_add_rejected(self):
        manifest = Manifest()
        manifest.commit(add=[0])
        with pytest.raises(ValueError):
            manifest.commit(add=[0])

    def test_tombstone_accumulation_and_clearing(self):
        manifest = Manifest()
        manifest.commit(add=[0], new_tombstones=np.array([1, 2]))
        manifest.commit(new_tombstones=np.array([3]))
        assert manifest.current_tombstones().tolist() == [1, 2, 3]
        manifest.commit(clear_tombstones=np.array([2]))
        assert manifest.current_tombstones().tolist() == [1, 3]


class TestSnapshotIsolation:
    def test_snapshot_sees_fixed_view(self):
        """The paper's t1/t2 example (Sec. 5.2)."""
        manifest = Manifest()
        manifest.commit(add=[1])  # t1: segment 1 flushed
        snap1 = manifest.acquire()
        manifest.commit(add=[2])  # t2: segment 2 flushed
        snap2 = manifest.acquire()
        assert snap1.segment_ids == (1,)
        assert snap2.segment_ids == (1, 2)
        manifest.release(snap1)
        manifest.release(snap2)

    def test_tombstones_frozen_per_snapshot(self):
        manifest = Manifest()
        manifest.commit(add=[0])
        snap = manifest.acquire()
        manifest.commit(new_tombstones=np.array([42]))
        assert 42 not in snap.tombstones
        assert 42 in manifest.current_tombstones()
        manifest.release(snap)

    def test_release_more_than_acquire_raises(self):
        manifest = Manifest()
        manifest.commit(add=[0])
        snap = manifest.acquire()
        manifest.release(snap)
        with pytest.raises(RuntimeError):
            manifest.release(snap)


class TestGarbageCollection:
    def test_dead_segment_reported_after_release(self):
        dead = []
        manifest = Manifest(on_segment_dead=dead.append)
        manifest.commit(add=[0, 1])
        snap = manifest.acquire()
        manifest.commit(add=[2], remove=[0, 1])  # merged away
        assert dead == []  # snapshot still references 0 and 1
        manifest.release(snap)
        assert set(dead) == {0, 1}

    def test_unreferenced_segments_collected_immediately(self):
        dead = []
        manifest = Manifest(on_segment_dead=dead.append)
        manifest.commit(add=[0, 1])
        manifest.commit(add=[2], remove=[0, 1])  # nobody held a snapshot
        assert set(dead) == {0, 1}

    def test_live_segments_never_collected(self):
        dead = []
        manifest = Manifest(on_segment_dead=dead.append)
        manifest.commit(add=[0])
        snap = manifest.acquire()
        manifest.release(snap)
        assert dead == []

    def test_multiple_snapshots_same_version(self):
        dead = []
        manifest = Manifest(on_segment_dead=dead.append)
        manifest.commit(add=[0])
        s1 = manifest.acquire()
        s2 = manifest.acquire()
        manifest.commit(add=[1], remove=[0])
        manifest.release(s1)
        assert dead == []  # s2 still pins segment 0
        manifest.release(s2)
        assert dead == [0]

    def test_referenced_ids_union(self):
        manifest = Manifest()
        manifest.commit(add=[0])
        snap = manifest.acquire()
        manifest.commit(add=[1], remove=[0])
        assert manifest.referenced_segment_ids() == {0, 1}
        manifest.release(snap)
        assert manifest.referenced_segment_ids() == {1}
