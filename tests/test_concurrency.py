"""Concurrent readers vs a writing thread: snapshot isolation in anger."""

import threading

import numpy as np
import pytest

from repro.core import CollectionSchema, Collection, VectorField
from repro.storage import LSMConfig, TieredMergePolicy
from repro.datasets import sift_like


def make_collection():
    schema = CollectionSchema("c", vector_fields=[VectorField("emb", 8)])
    cfg = LSMConfig(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
    )
    return Collection(schema, lsm_config=cfg)


class TestConcurrentReadsDuringWrites:
    def test_searches_consistent_under_mutation(self):
        coll = make_collection()
        data = sift_like(2000, dim=8, seed=0)
        coll.insert({"emb": data[:1000]})
        coll.flush()

        errors = []
        stop = threading.Event()

        def reader():
            # Each iteration takes its own snapshot; results must always
            # be internally consistent (self is its own best match among
            # whatever rows are visible).
            try:
                while not stop.is_set():
                    result = coll.search("emb", data[:5], 1)
                    for qi in range(5):
                        # rows 0..4 exist (flushed before the storm and
                        # never deleted), so each must stay its own
                        # exact nearest neighbour at every instant.
                        if result.ids[qi, 0] != qi:
                            errors.append(
                                f"query {qi} lost its exact match: {result.ids[qi, 0]}"
                            )
                            return
            except Exception as exc:  # noqa: BLE001 - surface to main thread
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for __ in range(3)]
        for t in threads:
            t.start()
        try:
            for start in range(1000, 2000, 100):
                coll.insert({"emb": data[start : start + 100]})
                coll.flush()
                coll.compact()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors, errors[:3]

    def test_async_writer_with_concurrent_flushes(self):
        schema = CollectionSchema("a", vector_fields=[VectorField("emb", 8)])
        cfg = LSMConfig(
            memtable_flush_bytes=1 << 30,
            index_build_min_rows=1 << 30,
            merge_policy=TieredMergePolicy(merge_factor=2, min_segment_bytes=1),
        )
        coll = Collection(schema, lsm_config=cfg, async_writes=True)
        data = sift_like(1200, dim=8, seed=1)
        for start in range(0, 1200, 200):
            coll.insert({"emb": data[start : start + 200]})
        coll.flush()
        assert coll.num_entities == 1200
        result = coll.search("emb", data[5], 1)
        assert result.ids[0, 0] == 5

    def test_snapshot_refcounts_balanced_after_storm(self):
        coll = make_collection()
        data = sift_like(600, dim=8, seed=2)
        coll.insert({"emb": data})
        coll.flush()
        manifest = coll.lsm.manifest
        snaps = [coll.lsm.snapshot() for __ in range(8)]
        coll.delete(list(range(10)))
        coll.flush()
        coll.compact()
        for snap in snaps:
            coll.lsm.release(snap)
        # After releasing everything, only the current version survives.
        assert manifest.referenced_segment_ids() == set(
            manifest.live_segment_ids()
        )
