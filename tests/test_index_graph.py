"""Graph indexes: HNSW and NSG."""

import numpy as np
import pytest

from repro.index import HNSWIndex, NSGIndex
from repro.datasets import exact_ground_truth, recall_at_k, sift_like, random_queries


@pytest.fixture(scope="module")
def graph_data():
    return sift_like(800, dim=16, n_clusters=8, seed=3)


@pytest.fixture(scope="module")
def graph_queries(graph_data):
    return random_queries(graph_data, 10, seed=11)


@pytest.fixture(scope="module")
def graph_truth(graph_data, graph_queries):
    return exact_ground_truth(graph_queries, graph_data, 10, "l2")


class TestHNSW:
    @pytest.fixture(scope="class")
    def index(self, graph_data):
        index = HNSWIndex(16, M=12, ef_construction=80, seed=0)
        index.add(graph_data)
        return index

    def test_high_recall(self, index, graph_queries, graph_truth):
        result = index.search(graph_queries, 10, ef=80)
        assert recall_at_k(result.ids, graph_truth) >= 0.95

    def test_recall_improves_with_ef(self, index, graph_queries, graph_truth):
        low = recall_at_k(index.search(graph_queries, 10, ef=10).ids, graph_truth)
        high = recall_at_k(index.search(graph_queries, 10, ef=120).ids, graph_truth)
        assert high >= low

    def test_incremental_inserts(self, graph_data):
        index = HNSWIndex(16, M=8, ef_construction=40, seed=0)
        index.add(graph_data[:100])
        index.add(graph_data[100:200])
        assert index.ntotal == 200
        result = index.search(graph_data[150], 1, ef=40)
        assert result.ids[0, 0] == 150

    def test_degree_bounded(self, index):
        stats = index.graph_degree_stats()
        assert stats["max"] <= 2 * index.M

    def test_first_hit_is_self(self, index, graph_data):
        result = index.search(graph_data[5], 1, ef=30)
        assert result.ids[0, 0] == 5

    def test_empty_search(self):
        index = HNSWIndex(8)
        result = index.search(np.zeros((1, 8), dtype=np.float32), 3)
        assert (result.ids == -1).all()

    def test_unknown_param_raises(self, index, graph_data):
        with pytest.raises(TypeError):
            index.search(graph_data[0], 3, nprobe=2)

    def test_inner_product_metric(self, graph_data):
        index = HNSWIndex(16, metric="ip", M=8, ef_construction=40, seed=0)
        index.add(graph_data[:300])
        result = index.search(graph_data[:3], 5, ef=60)
        # scores descending for similarity metrics
        for qi in range(3):
            assert (np.diff(result.scores[qi]) <= 1e-5).all()

    def test_rejects_binary_metric(self):
        with pytest.raises(ValueError):
            HNSWIndex(8, metric="jaccard")


class TestNSG:
    @pytest.fixture(scope="class")
    def index(self, graph_data):
        index = NSGIndex(16, knn=24, out_degree=20, seed=0)
        index.add(graph_data)
        index.build()
        return index

    def test_decent_recall(self, index, graph_queries, graph_truth):
        result = index.search(graph_queries, 10, search_l=80)
        assert recall_at_k(result.ids, graph_truth) >= 0.85

    def test_out_degree_bounded(self, index):
        # Reverse-edge insertion re-prunes, so degree stays near the cap.
        max_degree = max(len(g) for g in index._graph)
        assert max_degree <= 2 * index.out_degree

    def test_every_node_reachable(self, index, graph_data):
        reached = np.zeros(len(graph_data), dtype=bool)
        stack = [index._medoid]
        reached[index._medoid] = True
        while stack:
            node = stack.pop()
            for nb in index._graph[node]:
                if not reached[nb]:
                    reached[nb] = True
                    stack.append(int(nb))
        assert reached.all()

    def test_lazy_build_on_search(self, graph_data):
        index = NSGIndex(16, knn=12, out_degree=10, seed=0)
        index.add(graph_data[:150])
        result = index.search(graph_data[3], 1, search_l=30)
        assert result.ids[0, 0] == 3

    def test_memory_accounting(self, index):
        assert index.memory_bytes() > 0
