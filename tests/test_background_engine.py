"""Background write engine: freeze/hand-off, frozen visibility, blooms.

The tentpole claims under test:

* a writer is **never** stuck behind segment I/O — proved by parking a
  background flush on a :class:`StallGate` and completing an insert
  while the flush is provably mid-write (event ordering, not sleeps);
* frozen memtables (and the deletes batched with them) are visible to
  searches from the freeze, before their flush commits;
* per-segment bloom filters answer row-id membership with zero false
  negatives, survive serialization, and feed the obs counters;
* compaction physically purges tombstone-dominated segments.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.storage import (
    BloomFilter,
    BufferPool,
    FaultPlan,
    FaultyFileSystem,
    InMemoryObjectStore,
    LSMConfig,
    LSMManager,
    Segment,
    TieredMergePolicy,
)

SPECS = {"emb": (8, "l2")}


def make_lsm(fs=None, **overrides):
    defaults = dict(
        memtable_flush_bytes=1 << 30,
        index_build_min_rows=1 << 30,
        merge_policy=TieredMergePolicy(merge_factor=64, min_segment_bytes=1),
        auto_merge=False,
    )
    defaults.update(overrides)
    return LSMManager(
        SPECS, ("price",), LSMConfig(**defaults),
        fs=fs if fs is not None else InMemoryObjectStore(),
    )


def batch(rng, row_ids):
    row_ids = np.asarray(row_ids, dtype=np.int64)
    return row_ids, {"emb": rng.normal(size=(len(row_ids), 8)).astype(np.float32)}, {
        "price": rng.uniform(0, 1, len(row_ids))
    }


class TestConcurrentWriterDuringFlush:
    def test_insert_completes_while_flush_parked_in_segment_write(self):
        """The satellite-3 concurrency proof, sleep-free.

        The first batch's flush is parked *inside* its segment write
        (gate.reached has fired, flush_count is still 0), and a second
        insert — which in the old inline engine would serialize behind
        that I/O under the writer lock — completes and is readable
        before the gate is released.
        """
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=31)
        rule = plan.stall("segments/*", op="write", nth=1)
        # Tiny threshold: the first insert freezes and hands off.
        lsm = make_lsm(
            FaultyFileSystem(inner, plan),
            memtable_flush_bytes=1, background=True,
        )
        rng = np.random.default_rng(0)
        ids_a, vecs_a, attrs_a = batch(rng, np.arange(0, 20))
        lsm.insert(ids_a, vecs_a, attrs_a)

        assert rule.gate.reached.wait(10), "flush never reached its write"
        # The flush is mid-write on the background thread, not committed.
        assert lsm.flush_count == 0

        ids_b, vecs_b, attrs_b = batch(rng, np.arange(100, 120))
        lsm.insert(ids_b, vecs_b, attrs_b)   # must not block on the flush
        assert lsm.flush_count == 0          # ...and the flush is STILL parked
        assert not rule.gate.release.is_set()
        # Batch A is already searchable through its frozen view.
        res = lsm.search("emb", vecs_a["emb"][:3], k=1)
        assert set(res.ids.ravel()) <= set(int(i) for i in ids_a)
        assert lsm.unflushed_rows >= len(ids_b)

        rule.gate.release.set()
        lsm.flush()  # barrier: both batches sealed
        assert lsm.flush_count >= 2
        assert lsm.num_live_rows == len(ids_a) + len(ids_b)
        lsm.close()

    def test_background_flag_resolves_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BG_FLUSH", "1")
        lsm = make_lsm()  # LSMConfig.background is None -> env wins
        assert lsm.background is True
        lsm.close()
        monkeypatch.setenv("REPRO_BG_FLUSH", "0")
        assert make_lsm().background is False


class TestFrozenVisibility:
    def test_frozen_rows_searchable_before_flush_commits(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=32)
        rule = plan.stall("segments/*", op="write", nth=1)
        lsm = make_lsm(
            FaultyFileSystem(inner, plan),
            memtable_flush_bytes=1, background=True,
        )
        rng = np.random.default_rng(1)
        ids, vecs, attrs = batch(rng, np.arange(40))
        lsm.insert(ids, vecs, attrs)
        assert rule.gate.reached.wait(10)
        # Nothing sealed yet: visibility comes from the frozen view.
        snap = lsm.snapshot()
        try:
            assert list(snap.segment_ids) == []
            assert len(snap.frozen_ids) == 1
            views = lsm.frozen_view_segments(snap)
            assert sorted(int(i) for v in views for i in v.row_ids) == list(range(40))
        finally:
            lsm.release(snap)
        assert lsm.num_live_rows == 40
        rule.gate.release.set()
        lsm.flush()
        assert lsm.num_live_rows == 40  # freeze -> seal is invisible to counts
        lsm.close()

    def test_deletes_batched_with_freeze_mask_reads_immediately(self):
        inner = InMemoryObjectStore()
        plan = FaultPlan(seed=33)
        rule = plan.stall("segments/*", op="write", nth=1)
        lsm = make_lsm(
            FaultyFileSystem(inner, plan), background=True,
        )
        rng = np.random.default_rng(2)
        ids, vecs, attrs = batch(rng, np.arange(30))
        lsm.insert(ids, vecs, attrs)
        lsm.delete(np.arange(5))
        # Manual freeze via tick: deletes ride in the frozen entry.
        lsm.tick(now_seconds=100.0)
        assert rule.gate.reached.wait(10)
        snap = lsm.snapshot()
        try:
            tombs = lsm.visible_tombstones(snap)
            assert set(int(t) for t in tombs) == set(range(5))
        finally:
            lsm.release(snap)
        assert lsm.num_live_rows == 25  # masked before the flush commit
        rule.gate.release.set()
        lsm.flush()
        assert lsm.num_live_rows == 25
        lsm.close()

    def test_unflushed_preview_carries_categoricals(self):
        """MemTable.raw_rows regression: categorical columns survive."""
        lsm = LSMManager(
            SPECS, ("price",),
            LSMConfig(memtable_flush_bytes=1 << 30, auto_merge=False),
            fs=InMemoryObjectStore(),
            categorical_names=("color",),
        )
        rng = np.random.default_rng(3)
        ids, vecs, attrs = batch(rng, np.arange(10))
        lsm.insert(ids, vecs, attrs, {"color": np.arange(10) % 3})
        row_ids, vectors, attributes, categoricals = lsm.unflushed_preview()
        assert sorted(int(i) for i in row_ids) == list(range(10))
        assert "color" in categoricals
        assert len(categoricals["color"]) == 10
        assert "price" in attributes


class TestBloomFilters:
    def test_no_false_negatives_and_some_rejection(self):
        rng = np.random.default_rng(4)
        present = rng.choice(1 << 40, size=5000, replace=False).astype(np.int64)
        bloom = BloomFilter.build(present)
        assert bool(bloom.might_contain(present).all())  # zero false negatives
        absent = present + 1  # disjoint by construction (choice w/o replace)
        absent = absent[~np.isin(absent, present)]
        fp_rate = float(bloom.might_contain(absent).mean())
        assert fp_rate < 0.05  # ~1% expected at 10 bits/key

    def test_survives_segment_serialization(self):
        rng = np.random.default_rng(5)
        ids = np.arange(100, dtype=np.int64)
        seg = Segment(
            0, ids, {"emb": rng.normal(size=(100, 8)).astype(np.float32)},
            {}, SPECS,
        )
        restored = Segment.from_bytes(seg.to_bytes())
        assert restored.bloom is not None
        assert restored.bloom.k == seg.bloom.k
        assert restored.bloom.m == seg.bloom.m
        assert np.array_equal(restored.bloom.bits, seg.bloom.bits)

    def test_contains_mask_rides_bloom_and_counts(self):
        rng = np.random.default_rng(6)
        ids = np.arange(0, 1000, 2, dtype=np.int64)  # evens only
        seg = Segment(
            0, ids, {"emb": rng.normal(size=(len(ids), 8)).astype(np.float32)},
            {}, SPECS,
        )
        handle = obs.enable()
        try:
            probe = np.arange(1000, dtype=np.int64)  # half absent (odds)
            mask = seg.contains_mask(probe)
            assert int(mask.sum()) == len(ids)
            assert bool(mask[::2].all()) and not bool(mask[1::2].any())
            # The bloom pre-filter rejected (most of) the 500 odd ids.
            assert handle.registry.counter("bloom_negatives_total").value > 400
            assert handle.registry.counter("bloom_hits_total").value >= 500
        finally:
            obs.disable()


class TestTombstonePurge:
    def test_dominated_resident_segment_is_rewritten(self):
        lsm = make_lsm(tombstone_purge_ratio=0.25)
        rng = np.random.default_rng(7)
        ids, vecs, attrs = batch(rng, np.arange(40))
        lsm.insert(ids, vecs, attrs)
        lsm.flush()
        lsm.delete(np.arange(20))  # 50% of the segment
        lsm.flush()
        assert lsm.purge_count == 0
        merged = lsm.maybe_merge()
        assert merged >= 1 and lsm.purge_count == 1
        assert lsm.num_live_rows == 20
        assert len(lsm.manifest.current_tombstones()) == 0  # reclaimed
        # The rewrite replaced the segment wholesale; no orphan files.
        live = set(lsm.manifest.live_segment_ids())
        on_disk = {
            int(p.rsplit("/", 1)[-1].split(".")[0])
            for p in lsm.fs.listdir("segments/")
        }
        assert on_disk == live

    def test_fully_dead_segment_disappears_without_replacement(self):
        lsm = make_lsm(tombstone_purge_ratio=0.25)
        rng = np.random.default_rng(8)
        ids, vecs, attrs = batch(rng, np.arange(16))
        lsm.insert(ids, vecs, attrs)
        lsm.flush()
        lsm.delete(ids)
        lsm.flush()
        lsm.maybe_merge()
        assert lsm.num_live_rows == 0
        assert list(lsm.manifest.live_segment_ids()) == []
        assert lsm.fs.listdir("segments/") == []

    def test_ratio_zero_disables_purge(self):
        lsm = make_lsm(tombstone_purge_ratio=0.0)
        rng = np.random.default_rng(9)
        ids, vecs, attrs = batch(rng, np.arange(16))
        lsm.insert(ids, vecs, attrs)
        lsm.flush()
        lsm.delete(np.arange(15))
        lsm.flush()
        lsm.maybe_merge()
        assert lsm.purge_count == 0
        assert len(lsm.manifest.live_segment_ids()) == 1


class TestDeferredInvalidation:
    def test_pinned_invalidate_defers_to_final_unpin(self):
        rng = np.random.default_rng(10)
        seg = Segment(
            7, np.arange(4, dtype=np.int64),
            {"emb": rng.normal(size=(4, 8)).astype(np.float32)}, {}, SPECS,
        )
        pool = BufferPool(1 << 20, loader=lambda sid: seg)
        pool.put(seg, pin=True)
        pool.get(7, pin=True)  # second pin
        pool.invalidate(7, defer=True)  # queued, not raised
        assert pool.peek(7) is not None
        pool.unpin(7)
        assert pool.peek(7) is not None  # still one pin outstanding
        pool.unpin(7)
        assert pool.peek(7) is None  # dropped at the final unpin

    def test_pinned_invalidate_without_defer_still_raises(self):
        rng = np.random.default_rng(11)
        seg = Segment(
            3, np.arange(4, dtype=np.int64),
            {"emb": rng.normal(size=(4, 8)).astype(np.float32)}, {}, SPECS,
        )
        pool = BufferPool(1 << 20, loader=lambda sid: seg)
        pool.put(seg, pin=True)
        with pytest.raises(RuntimeError):
            pool.invalidate(3)
