"""SDK and REST support for categorical fields."""

import numpy as np
import pytest

from repro.client import RestRouter, connect
from repro.datasets import sift_like


@pytest.fixture(scope="module")
def data():
    return sift_like(120, dim=8, seed=0)


@pytest.fixture(scope="module")
def colors():
    return np.random.default_rng(1).choice(["red", "green", "blue"], 120)


class TestSDKCategorical:
    def test_end_to_end(self, data, colors):
        client = connect()
        client.create_collection(
            "shop", {"v": (8, "l2")}, categorical_fields=["color"]
        )
        client.insert("shop", {"v": data, "color": colors})
        client.flush("shop")
        hits = client.search("shop", "v", data[0], 5, filter=("color", "==", "red"))
        assert hits[0]
        assert all(colors[i] == "red" for i, __ in hits[0])

    def test_index_kind_tuple(self, data, colors):
        client = connect()
        client.create_collection(
            "shop2", {"v": (8, "l2")},
            categorical_fields=[("color", "inverted")],
        )
        client.insert("shop2", {"v": data, "color": colors})
        client.flush("shop2")
        coll = client.server.get_collection("shop2")
        seg = coll.lsm.live_segments()[0]
        assert type(seg.categoricals["color"].index).__name__ == "InvertedIndex"


class TestRestCategorical:
    @pytest.fixture()
    def router(self, data, colors):
        router = RestRouter()
        resp = router.handle("POST", "/collections", {
            "name": "web",
            "vector_fields": [{"name": "v", "dim": 8}],
            "categorical_fields": ["color"],
        })
        assert resp.status == 201
        resp = router.handle("POST", "/collections/web/entities", {
            "data": {"v": data.tolist(), "color": colors.tolist()},
        })
        assert resp.status == 201
        router.handle("POST", "/flush", {"collection": "web"})
        return router

    def test_equality_filter(self, router, data, colors):
        resp = router.handle("POST", "/collections/web/search", {
            "field": "v", "queries": [data[0].tolist()], "k": 5,
            "filter": {"attribute": "color", "op": "==", "values": ["red"]},
        })
        assert resp.ok
        assert all(colors[h["id"]] == "red" for h in resp.body["hits"][0])

    def test_in_filter(self, router, data, colors):
        resp = router.handle("POST", "/collections/web/search", {
            "field": "v", "queries": [data[0].tolist()], "k": 5,
            "filter": {"attribute": "color", "op": "in", "values": ["red", "blue"]},
        })
        assert resp.ok
        assert all(colors[h["id"]] in ("red", "blue") for h in resp.body["hits"][0])

    def test_index_kind_object_form(self, data, colors):
        router = RestRouter()
        resp = router.handle("POST", "/collections", {
            "name": "web2",
            "vector_fields": [{"name": "v", "dim": 8}],
            "categorical_fields": [{"name": "color", "index_kind": "bitmap"}],
        })
        assert resp.status == 201
