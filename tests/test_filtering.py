"""Attribute filtering strategies A-E: correctness and cost behaviour."""

import numpy as np
import pytest

from repro.filtering import (
    AttributeFilterEngine,
    AttributeUsageTracker,
    CostModel,
    PartitionedFilterEngine,
)
from repro.datasets import sift_like, random_queries


@pytest.fixture(scope="module")
def setup():
    data = sift_like(3000, dim=16, n_clusters=8, seed=0)
    rng = np.random.default_rng(1)
    attrs = rng.uniform(0, 1000, len(data))
    queries = random_queries(data, 5, seed=2)
    engine = AttributeFilterEngine(data, attrs, metric="l2", nlist=16, seed=0)
    return data, attrs, queries, engine


def truth_topk(data, attrs, query, low, high, k):
    mask = (attrs >= low) & (attrs <= high)
    idx = np.flatnonzero(mask)
    d = ((data[idx] - query) ** 2).sum(axis=1)
    return idx[np.argsort(d, kind="stable")[:k]]


class TestStrategyA:
    def test_exact(self, setup):
        data, attrs, queries, engine = setup
        expected = truth_topk(data, attrs, queries[0], 100, 400, 10)
        result = engine.strategy_a(queries[0], 100, 400, 10)
        assert result.exact
        assert set(result.ids.tolist()) == set(expected.tolist())

    def test_all_hits_pass_filter(self, setup):
        data, attrs, queries, engine = setup
        result = engine.strategy_a(queries[0], 100, 400, 10)
        assert ((attrs[result.ids] >= 100) & (attrs[result.ids] <= 400)).all()

    def test_empty_range(self, setup):
        __, ___, queries, engine = setup
        result = engine.strategy_a(queries[0], 5000, 6000, 10)
        assert len(result) == 0


class TestStrategyB:
    def test_hits_pass_filter(self, setup):
        data, attrs, queries, engine = setup
        result = engine.strategy_b(queries[0], 100, 400, 10, nprobe=16)
        assert ((attrs[result.ids] >= 100) & (attrs[result.ids] <= 400)).all()

    def test_full_probe_matches_exact(self, setup):
        data, attrs, queries, engine = setup
        expected = truth_topk(data, attrs, queries[1], 200, 800, 10)
        result = engine.strategy_b(queries[1], 200, 800, 10, nprobe=16)
        assert set(result.ids.tolist()) == set(expected.tolist())


class TestStrategyC:
    def test_hits_pass_filter(self, setup):
        data, attrs, queries, engine = setup
        result = engine.strategy_c(queries[0], 100, 900, 10, nprobe=16)
        assert ((attrs[result.ids] >= 100) & (attrs[result.ids] <= 900)).all()

    def test_widens_until_k(self, setup):
        data, attrs, queries, engine = setup
        # selective filter forces several widening rounds
        result = engine.strategy_c(queries[0], 0, 100, 10, nprobe=16)
        assert len(result) == 10

    def test_may_underfill_on_tiny_range(self, setup):
        data, attrs, queries, engine = setup
        lo = float(attrs.min())
        result = engine.strategy_c(queries[0], lo, lo, 10, nprobe=16)
        assert len(result) <= 10


class TestStrategyD:
    def test_picks_a_when_highly_selective(self, setup):
        __, ___, queries, engine = setup
        result = engine.strategy_d(queries[0], 0, 5, 10, nprobe=4)
        assert result.strategy == "D->A"

    def test_picks_c_when_not_selective(self, setup):
        __, ___, queries, engine = setup
        result = engine.strategy_d(queries[0], 0, 1000, 10, nprobe=4)
        assert result.strategy.startswith("D->") and result.strategy != "D->A"

    def test_result_passes_filter(self, setup):
        data, attrs, queries, engine = setup
        for low, high in [(0, 5), (0, 500), (0, 1000)]:
            result = engine.strategy_d(queries[2], low, high, 10, nprobe=16)
            hit_attrs = attrs[result.ids]
            assert ((hit_attrs >= low) & (hit_attrs <= high)).all()


class TestCostModel:
    def test_c_infeasible_when_too_selective(self):
        costs = CostModel().estimate(n=10000, passing_fraction=0.0001, k=50,
                                     scanned_fraction=0.1)
        assert costs.c == float("inf")
        assert costs.best() == "A"

    def test_a_wins_high_selectivity(self):
        costs = CostModel().estimate(10000, 0.001, 10, 0.25)
        assert costs.best() == "A"

    def test_a_loses_low_selectivity(self):
        costs = CostModel().estimate(10000, 0.99, 10, 0.05)
        assert costs.best() != "A"


class TestStrategyE:
    @pytest.fixture(scope="class")
    def part(self, setup):
        data, attrs, *_ = setup
        return PartitionedFilterEngine(data, attrs, n_partitions=5, metric="l2", seed=0)

    def test_partitions_cover_everything(self, part, setup):
        assert len(part) == 3000

    def test_prunes_non_overlapping(self, part, setup):
        __, ___, queries, ____ = setup
        part.search(queries[0], 0, 150, 10, nprobe=8)
        assert part.last_pruned >= 3

    def test_covered_partitions_skip_attribute_check(self, part, setup):
        __, ___, queries, ____ = setup
        result = part.search(queries[0], 0, 1000, 10, nprobe=8)
        assert part.last_covered == 5
        assert "V" in result.strategy

    def test_results_pass_filter(self, part, setup):
        data, attrs, queries, __ = setup
        for low, high in [(100, 300), (0, 1000), (450, 455)]:
            result = part.search(queries[1], low, high, 10, nprobe=16)
            hit_attrs = attrs[result.ids]
            assert ((hit_attrs >= low) & (hit_attrs <= high)).all()

    def test_matches_exact_at_full_probe(self, part, setup):
        data, attrs, queries, __ = setup
        expected = truth_topk(data, attrs, queries[3], 200, 700, 10)
        result = part.search(queries[3], 200, 700, 10, nprobe=64)
        assert set(result.ids.tolist()) == set(expected.tolist())

    def test_rows_per_partition_constructor(self, setup):
        data, attrs, *_ = setup
        part = PartitionedFilterEngine.with_rows_per_partition(
            data, attrs, rows_per_partition=1000
        )
        assert part.n_partitions == 3


class TestUsageTracker:
    def test_counts(self):
        tracker = AttributeUsageTracker()
        assert tracker.most_frequent() is None
        tracker.record("price", 0, 100)
        tracker.record("price", 50, 60)
        tracker.record("size")
        assert tracker.most_frequent() == "price"
        assert tracker.count("price") == 2
        assert tracker.snapshot() == {"price": 2, "size": 1}

    def test_typical_range_width(self):
        tracker = AttributeUsageTracker()
        tracker.record("p", 0, 10)
        tracker.record("p", 0, 100)
        tracker.record("p", 0, 20)
        assert tracker.typical_range_width("p") == 20
        assert tracker.typical_range_width("other") is None
