"""Collection schemas: validation and views."""

import pytest

from repro.core import AttributeField, CollectionSchema, SchemaError, VectorField


class TestVectorField:
    def test_valid(self):
        f = VectorField("emb", 128, "l2")
        assert f.dim == 128

    def test_bad_name(self):
        with pytest.raises(SchemaError):
            VectorField("1bad", 8)
        with pytest.raises(SchemaError):
            VectorField("", 8)
        with pytest.raises(SchemaError):
            VectorField("has space", 8)

    def test_bad_dim(self):
        with pytest.raises(SchemaError):
            VectorField("emb", 0)

    def test_unknown_metric(self):
        with pytest.raises(SchemaError):
            VectorField("emb", 8, "bogus")

    def test_metric_alias_accepted(self):
        VectorField("emb", 8, "euclidean")


class TestCollectionSchema:
    def test_basic(self):
        schema = CollectionSchema(
            "products",
            vector_fields=[VectorField("image", 64)],
            attribute_fields=[AttributeField("price")],
        )
        assert schema.vector_specs() == {"image": (64, "l2")}
        assert schema.attribute_names() == ("price",)
        assert not schema.is_multi_vector

    def test_multi_vector(self):
        schema = CollectionSchema(
            "people",
            vector_fields=[VectorField("face", 64), VectorField("posture", 32)],
        )
        assert schema.is_multi_vector

    def test_needs_vector_field(self):
        with pytest.raises(SchemaError):
            CollectionSchema("empty", vector_fields=[])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            CollectionSchema(
                "dup",
                vector_fields=[VectorField("x", 8)],
                attribute_fields=[AttributeField("x")],
            )
        with pytest.raises(SchemaError):
            CollectionSchema(
                "dup2", vector_fields=[VectorField("x", 8), VectorField("x", 16)]
            )

    def test_vector_field_lookup(self):
        schema = CollectionSchema("c", vector_fields=[VectorField("a", 4)])
        assert schema.vector_field("a").dim == 4
        with pytest.raises(SchemaError):
            schema.vector_field("missing")

    def test_describe(self):
        schema = CollectionSchema(
            "c",
            vector_fields=[VectorField("a", 4, "ip")],
            attribute_fields=[AttributeField("p")],
        )
        info = schema.describe()
        assert info["name"] == "c"
        assert info["vector_fields"][0]["metric"] == "ip"
        assert info["attribute_fields"] == ["p"]
