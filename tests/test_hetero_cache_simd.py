"""Heterogeneous computing: cache-aware design and SIMD dispatch."""

import numpy as np
import pytest

from repro.hetero import (
    CORE_I7_8700,
    XEON_PLATINUM_8269,
    CacheAwareSearcher,
    CacheTrafficModel,
    SimdDispatcher,
    query_block_size,
    simd_kernel_registry,
)
from repro.hetero.hardware import SIMDLevel
from repro.datasets import sift_like


class TestEquationOne:
    def test_paper_shape(self):
        """s = L3 / (d*4 + t*k*12), the paper's Equation (1)."""
        l3 = 35 * 1024 * 1024
        s = query_block_size(l3, dim=128, threads=16, k=50)
        expected = l3 // (128 * 4 + 16 * 50 * 12)
        assert s == expected

    def test_smaller_cache_smaller_block(self):
        big = query_block_size(XEON_PLATINUM_8269.l3_bytes, 128, 16, 50)
        small = query_block_size(CORE_I7_8700.l3_bytes, 128, 6, 50)
        assert small < big

    def test_minimum_one(self):
        assert query_block_size(1, 128, 16, 50) == 1

    def test_bigger_k_smaller_block(self):
        s_small_k = query_block_size(12 << 20, 128, 8, 10)
        s_big_k = query_block_size(12 << 20, 128, 8, 1000)
        assert s_big_k < s_small_k


class TestCacheAwareSearcher:
    @pytest.fixture(scope="class")
    def searcher(self):
        data = sift_like(2000, dim=16, seed=0)
        return CacheAwareSearcher(data, "l2", cpu=XEON_PLATINUM_8269), data

    def test_designs_agree_exactly(self, searcher):
        cas, data = searcher
        queries = sift_like(64, dim=16, seed=9)
        ids_o, sc_o = cas.search_original(queries, 10)
        ids_c, sc_c = cas.search_cache_aware(queries, 10, threads=4)
        np.testing.assert_array_equal(ids_o, ids_c)
        np.testing.assert_allclose(sc_o, sc_c, rtol=1e-5)

    def test_data_passes_reduced(self, searcher):
        """The paper's claim: m/(s*t) accesses instead of m/t per thread."""
        cas, __ = searcher
        queries = sift_like(64, dim=16, seed=9)
        cas.search_original(queries, 10)
        assert cas.last_stats.data_passes == 64
        cas.search_cache_aware(queries, 10, threads=4, block_size=16)
        assert cas.last_stats.data_passes == pytest.approx(4.0)

    def test_block_size_one_degenerates_to_original(self, searcher):
        cas, __ = searcher
        queries = sift_like(8, dim=16, seed=9)
        ids_c, __s = cas.search_cache_aware(queries, 5, threads=2, block_size=1)
        ids_o, __s2 = cas.search_original(queries, 5)
        np.testing.assert_array_equal(ids_c, ids_o)

    def test_ip_metric(self):
        data = sift_like(500, dim=8, seed=1)
        cas = CacheAwareSearcher(data, "ip")
        ids_o, __ = cas.search_original(data[:10], 5)
        ids_c, __2 = cas.search_cache_aware(data[:10], 5, threads=3, block_size=4)
        np.testing.assert_array_equal(ids_o, ids_c)


class TestCacheTrafficModel:
    def test_paper_speedups(self):
        """Sec. 7.4: up to 2.7x on 12MB L3, up to 1.5x on 35.75MB L3."""
        i7 = CacheTrafficModel(CORE_I7_8700)
        xeon = CacheTrafficModel(XEON_PLATINUM_8269)
        sp_i7 = i7.speedup(1000, 10 ** 7, 128, 50)
        sp_xeon = xeon.speedup(1000, 10 ** 7, 128, 50)
        assert 2.2 <= sp_i7 <= 3.2
        assert 1.2 <= sp_xeon <= 1.8
        assert sp_i7 > sp_xeon

    def test_no_gain_when_data_fits_cache(self):
        model = CacheTrafficModel(XEON_PLATINUM_8269)
        assert model.speedup(1000, 1000, 128, 50) == pytest.approx(1.0, abs=0.05)

    def test_speedup_grows_with_data(self):
        model = CacheTrafficModel(CORE_I7_8700)
        speedups = [model.speedup(1000, n, 128, 50) for n in (10**3, 10**5, 10**7)]
        assert speedups[0] <= speedups[1] <= speedups[2]

    def test_times_positive_and_ordered(self):
        model = CacheTrafficModel(CORE_I7_8700)
        t_o = model.time_original(1000, 10**6, 128, 50)
        t_c = model.time_cache_aware(1000, 10**6, 128, 50)
        assert 0 < t_c <= t_o


class TestSimd:
    def test_registry_has_all_builds(self):
        registry = simd_kernel_registry()
        assert len(registry) == 8  # 2 ops x 4 ISAs
        for op in ("l2", "ip"):
            for level in SIMDLevel:
                assert (op, level) in registry

    def test_dispatch_picks_best_flag(self):
        d = SimdDispatcher(["sse", "avx", "avx2"])
        assert d.selected_level is SIMDLevel.AVX2
        d = SimdDispatcher(["sse"])
        assert d.selected_level is SIMDLevel.SSE

    def test_dispatch_from_cpu_spec(self):
        assert SimdDispatcher.for_cpu(XEON_PLATINUM_8269).selected_level is SIMDLevel.AVX512
        assert SimdDispatcher.for_cpu(CORE_I7_8700).selected_level is SIMDLevel.AVX2

    def test_no_flags_raises(self):
        with pytest.raises(ValueError):
            SimdDispatcher(["mmx"])

    def test_all_builds_compute_identically(self):
        """The four per-ISA builds must agree (they differ in cost only)."""
        registry = simd_kernel_registry()
        rng = np.random.default_rng(0)
        q = rng.normal(size=(4, 16)).astype(np.float32)
        x = rng.normal(size=(8, 16)).astype(np.float32)
        reference = registry[("l2", SIMDLevel.SSE)](q, x)
        for level in SIMDLevel:
            np.testing.assert_allclose(registry[("l2", level)](q, x), reference)

    def test_avx512_avx2_ratio(self):
        """Fig. 12: AVX512 is roughly 1.5x faster than AVX2."""
        registry = simd_kernel_registry()
        t2 = registry[("l2", SIMDLevel.AVX2)].modeled_seconds(1000, 10**6, 128)
        t5 = registry[("l2", SIMDLevel.AVX512)].modeled_seconds(1000, 10**6, 128)
        assert t2 / t5 == pytest.approx(1.5, abs=0.05)

    def test_unknown_op_raises(self):
        d = SimdDispatcher(["avx2"])
        with pytest.raises(KeyError):
            d.kernel("cosine")

    def test_pairwise_through_dispatcher(self):
        d = SimdDispatcher(["avx512", "sse", "avx", "avx2"])
        q = np.ones((1, 4), dtype=np.float32)
        x = np.zeros((2, 4), dtype=np.float32)
        np.testing.assert_allclose(d.pairwise("l2", q, x), 4.0)
