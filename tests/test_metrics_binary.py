"""Binary metric kernels over bit-packed codes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics import (
    HammingMetric,
    JaccardMetric,
    TanimotoMetric,
    pack_bits,
    unpack_bits,
    hamming_pairwise,
    jaccard_pairwise,
    tanimoto_pairwise,
)


def _bits(rows, dim):
    return hnp.arrays(np.uint8, (rows, dim), elements=st.integers(0, 1))


class TestPacking:
    def test_roundtrip(self):
        bits = np.random.default_rng(0).integers(0, 2, size=(5, 20)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(bits), 20), bits)

    @given(_bits(3, 17))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, bits):
        assert np.array_equal(unpack_bits(pack_bits(bits), 17), bits)

    def test_pack_width(self):
        assert pack_bits(np.zeros((2, 9), dtype=np.uint8)).shape == (2, 2)


class TestHamming:
    def test_known_values(self):
        a = pack_bits(np.array([[1, 0, 1, 0, 0, 0, 0, 0]]))
        b = pack_bits(np.array([[0, 1, 1, 0, 0, 0, 0, 0]]))
        assert hamming_pairwise(a, b)[0, 0] == 2

    def test_identity(self):
        codes = pack_bits(np.random.default_rng(1).integers(0, 2, (4, 16)))
        assert (np.diag(hamming_pairwise(codes, codes)) == 0).all()

    @given(_bits(2, 24), _bits(3, 24))
    @settings(max_examples=25, deadline=None)
    def test_matches_naive(self, a, b):
        expected = (a[:, None, :] != b[None, :, :]).sum(axis=2)
        got = hamming_pairwise(pack_bits(a), pack_bits(b))
        assert np.array_equal(got, expected)


class TestJaccard:
    def test_disjoint_distance_one(self):
        a = pack_bits(np.array([[1, 1, 0, 0, 0, 0, 0, 0]]))
        b = pack_bits(np.array([[0, 0, 1, 1, 0, 0, 0, 0]]))
        assert jaccard_pairwise(a, b)[0, 0] == 1.0

    def test_identical_distance_zero(self):
        a = pack_bits(np.array([[1, 0, 1, 0, 1, 0, 1, 0]]))
        assert jaccard_pairwise(a, a)[0, 0] == 0.0

    def test_empty_vs_empty_zero(self):
        a = pack_bits(np.zeros((1, 8), dtype=np.uint8))
        assert jaccard_pairwise(a, a)[0, 0] == 0.0

    def test_half_overlap(self):
        a = pack_bits(np.array([[1, 1, 0, 0, 0, 0, 0, 0]]))
        b = pack_bits(np.array([[1, 0, 1, 0, 0, 0, 0, 0]]))
        # intersection 1, union 3 -> distance 2/3
        assert jaccard_pairwise(a, b)[0, 0] == pytest.approx(2 / 3)

    @given(_bits(2, 32))
    @settings(max_examples=25, deadline=None)
    def test_bounded(self, bits):
        d = jaccard_pairwise(pack_bits(bits), pack_bits(bits))
        assert ((d >= 0) & (d <= 1)).all()


class TestTanimoto:
    def test_identical_zero(self):
        a = pack_bits(np.array([[1, 0, 1, 0, 1, 0, 0, 0]]))
        assert tanimoto_pairwise(a, a)[0, 0] == 0.0

    def test_disjoint_positive_infinite(self):
        a = pack_bits(np.array([[1, 0, 0, 0, 0, 0, 0, 0]]))
        b = pack_bits(np.array([[0, 1, 0, 0, 0, 0, 0, 0]]))
        value = tanimoto_pairwise(a, b)[0, 0]
        assert np.isinf(value) and value > 0

    def test_never_negative(self):
        rng = np.random.default_rng(3)
        codes = pack_bits(rng.integers(0, 2, (8, 64)))
        assert (tanimoto_pairwise(codes, codes) >= 0).all()

    def test_monotone_with_jaccard(self):
        rng = np.random.default_rng(2)
        codes = pack_bits(rng.integers(0, 2, (6, 64)))
        j = jaccard_pairwise(codes[:1], codes)
        t = tanimoto_pairwise(codes[:1], codes)
        order_j = np.argsort(j[0])
        order_t = np.argsort(t[0])
        assert np.array_equal(order_j, order_t)


class TestBinaryMetricObjects:
    @pytest.mark.parametrize("metric_cls", [HammingMetric, JaccardMetric, TanimotoMetric])
    def test_lower_is_better(self, metric_cls):
        metric = metric_cls()
        assert not metric.higher_is_better
        assert metric.worst_value() == np.inf
