"""Categorical attributes with inverted lists / bitmaps (Sec. 2.1's
future work, implemented): column structures and full-stack filtering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AttributeField,
    CategoricalField,
    Collection,
    CollectionSchema,
    InvalidQueryError,
    SchemaError,
    VectorField,
)
from repro.storage.categorical import (
    BITMAP_CARDINALITY_LIMIT,
    BitmapIndex,
    CategoricalColumn,
    CategoryDictionary,
    InvertedIndex,
    choose_index,
)
from repro.datasets import sift_like


@pytest.fixture()
def codes(rng):
    return rng.integers(0, 5, size=200).astype(np.int64)


@pytest.fixture()
def row_ids():
    return np.arange(1000, 1200, dtype=np.int64)


class TestIndexStructures:
    @pytest.mark.parametrize("cls", [InvertedIndex, BitmapIndex])
    def test_rows_equal_matches_naive(self, cls, codes, row_ids):
        index = cls(codes, row_ids)
        for code in range(5):
            expected = sorted(row_ids[codes == code].tolist())
            assert index.rows_equal(code).tolist() == expected

    @pytest.mark.parametrize("cls", [InvertedIndex, BitmapIndex])
    def test_rows_in_unions(self, cls, codes, row_ids):
        index = cls(codes, row_ids)
        expected = sorted(row_ids[(codes == 1) | (codes == 3)].tolist())
        assert index.rows_in([1, 3, 3]).tolist() == expected

    @pytest.mark.parametrize("cls", [InvertedIndex, BitmapIndex])
    def test_unknown_code_empty(self, cls, codes, row_ids):
        index = cls(codes, row_ids)
        assert len(index.rows_equal(99)) == 0
        assert len(index.rows_in([99, 100])) == 0

    def test_both_structures_agree(self, codes, row_ids):
        inv = InvertedIndex(codes, row_ids)
        bmp = BitmapIndex(codes, row_ids)
        for code in range(6):
            np.testing.assert_array_equal(inv.rows_equal(code), bmp.rows_equal(code))

    def test_choose_index_heuristic(self, row_ids):
        low_card = np.zeros(200, dtype=np.int64)
        assert isinstance(choose_index(low_card, row_ids, "auto"), BitmapIndex)
        high_card = np.arange(200, dtype=np.int64)  # > BITMAP_CARDINALITY_LIMIT
        assert high_card.max() >= BITMAP_CARDINALITY_LIMIT
        assert isinstance(choose_index(high_card, row_ids, "auto"), InvertedIndex)
        assert isinstance(choose_index(low_card, row_ids, "inverted"), InvertedIndex)
        assert isinstance(choose_index(high_card, row_ids, "bitmap"), BitmapIndex)
        with pytest.raises(ValueError):
            choose_index(low_card, row_ids, "bogus")

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=60),
           st.lists(st.integers(0, 7), min_size=1, max_size=3, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_structures_agree_property(self, code_list, query):
        codes = np.array(code_list, dtype=np.int64)
        rows = np.arange(len(codes), dtype=np.int64)
        inv = InvertedIndex(codes, rows)
        bmp = BitmapIndex(codes, rows)
        np.testing.assert_array_equal(inv.rows_in(query), bmp.rows_in(query))


class TestCategoricalColumn:
    def test_values_for(self, codes, row_ids):
        col = CategoricalColumn(codes, row_ids)
        picks = row_ids[[3, 50, 199]]
        np.testing.assert_array_equal(col.values_for(picks), codes[[3, 50, 199]])

    def test_values_for_missing_raises(self, codes, row_ids):
        col = CategoricalColumn(codes, row_ids)
        with pytest.raises(KeyError):
            col.values_for(np.array([5]))

    def test_memory_accounting(self, codes, row_ids):
        assert CategoricalColumn(codes, row_ids).memory_bytes() > 0


class TestCategoryDictionary:
    def test_encode_decode_roundtrip(self):
        d = CategoryDictionary()
        codes = d.encode(["red", "blue", "red", "green"])
        assert codes.tolist() == [0, 1, 0, 2]
        assert d.decode(codes) == ["red", "blue", "red", "green"]
        assert len(d) == 3
        assert "red" in d and "purple" not in d

    def test_encode_existing_unknown_is_minus_one(self):
        d = CategoryDictionary()
        d.encode(["a"])
        assert d.encode_existing(["a", "zzz"]).tolist() == [0, -1]


class TestCollectionIntegration:
    @pytest.fixture()
    def coll(self):
        schema = CollectionSchema(
            "shop",
            vector_fields=[VectorField("img", 8)],
            attribute_fields=[AttributeField("price")],
            categorical_fields=[CategoricalField("color")],
        )
        coll = Collection(schema)
        data = sift_like(300, dim=8, seed=0)
        rng = np.random.default_rng(0)
        self.colors = rng.choice(["red", "green", "blue"], 300)
        self.prices = rng.uniform(0, 100, 300)
        self.data = data
        coll.insert({
            "img": data, "price": self.prices, "color": self.colors,
        })
        coll.flush()
        return coll

    def test_equality_filter(self, coll):
        res = coll.search("img", self.data[0], 10, filter=("color", "==", "red"))
        ids = res.ids[0][res.ids[0] >= 0]
        assert len(ids) and all(self.colors[i] == "red" for i in ids)

    def test_in_filter(self, coll):
        res = coll.search("img", self.data[0], 10, filter=("color", "in", ["red", "blue"]))
        ids = res.ids[0][res.ids[0] >= 0]
        assert all(self.colors[i] in ("red", "blue") for i in ids)

    def test_unknown_value_empty(self, coll):
        res = coll.search("img", self.data[0], 5, filter=("color", "==", "purple"))
        assert (res.ids == -1).all()

    def test_bad_operator(self, coll):
        with pytest.raises(InvalidQueryError):
            coll.search("img", self.data[0], 5, filter=("color", ">=", "red"))

    def test_numeric_filter_still_works(self, coll):
        res = coll.search("img", self.data[0], 5, filter=("price", 0.0, 50.0))
        ids = res.ids[0][res.ids[0] >= 0]
        assert (self.prices[ids] <= 50.0).all()

    def test_fetch_categoricals(self, coll):
        got = coll.fetch_categoricals("color", [5, 50])
        assert got == [str(self.colors[5]), str(self.colors[50])]

    def test_filter_survives_segment_serialization(self, coll):
        """Categorical columns roundtrip through flush/merge/reload."""
        coll.insert({
            "img": self.data[:50], "price": self.prices[:50],
            "color": self.colors[:50],
        })
        coll.flush()
        coll.compact()
        res = coll.search("img", self.data[0], 10, filter=("color", "==", "red"))
        ids = res.ids[0][res.ids[0] >= 0]
        # new rows 300..349 copy colors[0:50]
        def color_of(i):
            return self.colors[i] if i < 300 else self.colors[i - 300]
        assert all(color_of(int(i)) == "red" for i in ids)

    def test_deleted_rows_excluded_from_categorical_filter(self, coll):
        res = coll.search("img", self.data[0], 1, filter=("color", "in",
                                                          list("rgb".join([]) or ["red", "green", "blue"])))
        victim = int(res.ids[0, 0])
        coll.delete([victim])
        coll.flush()
        res2 = coll.search("img", self.data[0], 1,
                           filter=("color", "in", ["red", "green", "blue"]))
        assert int(res2.ids[0, 0]) != victim

    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            CategoricalField("color", index_kind="weird")
        schema = CollectionSchema(
            "c", vector_fields=[VectorField("v", 4)],
            categorical_fields=[CategoricalField("tag")],
        )
        coll = Collection(schema)
        with pytest.raises(SchemaError):
            coll.insert({"v": np.zeros((2, 4), np.float32)})  # missing 'tag'
