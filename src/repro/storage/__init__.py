"""Storage engine: LSM-based dynamic data management (paper Sec. 2.3/2.4).

Components:

* :mod:`repro.storage.filesystem` — multi-storage abstraction (local
  filesystem, simulated S3 object store, simulated HDFS).
* :mod:`repro.storage.wal` — write-ahead log for durability
  (CRC-framed records, torn-tail recovery).
* :mod:`repro.storage.faults` — deterministic fault injection
  (torn writes, transient errors, corruption, crash points, stall
  gates for exact concurrency schedules).
* :mod:`repro.storage.bloom` — per-segment row-id membership filters.
* :mod:`repro.storage.attributes` — sorted (key, row-id) attribute
  columns with page min/max skip pointers (Snowflake-style).
* :mod:`repro.storage.segment` — immutable columnar segments, the unit
  of searching, scheduling, and buffering.
* :mod:`repro.storage.memtable` — the mutable in-memory write buffer.
* :mod:`repro.storage.merge` — Lucene-style tiered merge policy.
* :mod:`repro.storage.manifest` — MVCC snapshots and garbage collection.
* :mod:`repro.storage.lsm` — the LSM manager tying it all together.
* :mod:`repro.storage.bufferpool` — segment-granular LRU buffer manager.
"""

from repro.storage.filesystem import (
    FileSystem,
    LocalFileSystem,
    InMemoryObjectStore,
    SimulatedHDFS,
)
from repro.storage.attributes import AttributeColumn
from repro.storage.segment import Segment
from repro.storage.memtable import MemTable
from repro.storage.merge import TieredMergePolicy, MergeTask
from repro.storage.manifest import Manifest, Snapshot
from repro.storage.wal import WriteAheadLog, WalRecord, WalCorruptionError
from repro.storage.faults import (
    FaultPlan,
    FaultRule,
    FaultyFileSystem,
    SimulatedCrash,
    StallGate,
)
from repro.storage.bloom import BloomFilter
from repro.storage.lsm import FrozenMemtable, LSMManager, LSMConfig
from repro.storage.bufferpool import BufferPool

__all__ = [
    "FileSystem",
    "LocalFileSystem",
    "InMemoryObjectStore",
    "SimulatedHDFS",
    "AttributeColumn",
    "Segment",
    "MemTable",
    "TieredMergePolicy",
    "MergeTask",
    "Manifest",
    "Snapshot",
    "WriteAheadLog",
    "WalRecord",
    "WalCorruptionError",
    "FaultPlan",
    "FaultRule",
    "FaultyFileSystem",
    "SimulatedCrash",
    "StallGate",
    "BloomFilter",
    "FrozenMemtable",
    "LSMManager",
    "LSMConfig",
    "BufferPool",
]
