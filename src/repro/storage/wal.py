"""Write-ahead log (paper Sec. 5.1/5.3).

"When Milvus receives heavy write requests, it first materializes the
operations (similar to database logs) to disk and then acknowledges to
users" — and in the distributed deployment "Milvus relies on WAL to
guarantee atomicity" and "the computing layer only sends logs (rather
than the actual data) to the storage layer, similar to Aurora."

Each record is one npz object on a :class:`FileSystem`; a checkpoint
truncates everything at or below the flushed LSN.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

import numpy as np

from repro.storage.filesystem import FileSystem


@dataclass
class WalRecord:
    """One logged operation.

    ``kind`` is ``"insert"`` or ``"delete"``.  Inserts carry row ids,
    vector fields, attribute columns, and categorical code columns;
    deletes carry row ids only.
    """

    lsn: int
    kind: str
    row_ids: np.ndarray
    vectors: Dict[str, np.ndarray]
    attributes: Dict[str, np.ndarray]
    categoricals: Dict[str, np.ndarray] = None

    def __post_init__(self):
        if self.categoricals is None:
            self.categoricals = {}

    def to_bytes(self) -> bytes:
        meta = {
            "lsn": self.lsn,
            "kind": self.kind,
            "vector_fields": sorted(self.vectors),
            "attribute_fields": sorted(self.attributes),
            "categorical_fields": sorted(self.categoricals),
        }
        arrays = {"row_ids": np.asarray(self.row_ids, dtype=np.int64)}
        for name, mat in self.vectors.items():
            arrays[f"vec__{name}"] = np.asarray(mat, dtype=np.float32)
        for name, vals in self.attributes.items():
            arrays[f"attr__{name}"] = np.asarray(vals, dtype=np.float64)
        for name, codes in self.categoricals.items():
            arrays[f"cat__{name}"] = np.asarray(codes, dtype=np.int64)
        buf = io.BytesIO()
        np.savez(buf, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                 **arrays)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WalRecord":
        with np.load(io.BytesIO(blob)) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            vectors = {n: archive[f"vec__{n}"] for n in meta["vector_fields"]}
            attributes = {n: archive[f"attr__{n}"] for n in meta["attribute_fields"]}
            categoricals = {
                n: archive[f"cat__{n}"] for n in meta.get("categorical_fields", [])
            }
            return cls(
                lsn=meta["lsn"],
                kind=meta["kind"],
                row_ids=archive["row_ids"],
                vectors=vectors,
                attributes=attributes,
                categoricals=categoricals,
            )


class WriteAheadLog:
    """Durable, replayable operation log over any FileSystem."""

    def __init__(self, fs: FileSystem, prefix: str = "wal"):
        self.fs = fs
        self.prefix = prefix.rstrip("/")
        existing = self.fs.listdir(self.prefix + "/")
        self._next_lsn = 0
        for path in existing:
            try:
                lsn = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            self._next_lsn = max(self._next_lsn, lsn + 1)

    def _path(self, lsn: int) -> str:
        return f"{self.prefix}/{lsn:012d}.rec"

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append_insert(
        self,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Optional[Dict[str, np.ndarray]] = None,
        categoricals: Optional[Dict[str, np.ndarray]] = None,
    ) -> int:
        """Log an insert batch; returns its LSN."""
        record = WalRecord(
            self._next_lsn, "insert", row_ids, vectors, attributes or {},
            categoricals or {},
        )
        return self._append(record)

    def append_delete(self, row_ids: np.ndarray) -> int:
        """Log a delete batch; returns its LSN."""
        record = WalRecord(self._next_lsn, "delete", row_ids, {}, {}, {})
        return self._append(record)

    def _append(self, record: WalRecord) -> int:
        self.fs.write(self._path(record.lsn), record.to_bytes())
        self._next_lsn += 1
        return record.lsn

    def replay(self, from_lsn: int = 0) -> Iterator[WalRecord]:
        """Yield records with ``lsn >= from_lsn`` in order."""
        for path in self.fs.listdir(self.prefix + "/"):
            name = path.rsplit("/", 1)[-1]
            try:
                lsn = int(name.split(".")[0])
            except ValueError:
                continue
            if lsn < from_lsn:
                continue
            yield WalRecord.from_bytes(self.fs.read(path))

    def truncate_through(self, lsn: int) -> None:
        """Checkpoint: discard records with LSN <= ``lsn``."""
        for path in self.fs.listdir(self.prefix + "/"):
            name = path.rsplit("/", 1)[-1]
            try:
                rec_lsn = int(name.split(".")[0])
            except ValueError:
                continue
            if rec_lsn <= lsn:
                self.fs.delete(path)
