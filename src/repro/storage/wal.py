"""Write-ahead log (paper Sec. 5.1/5.3).

"When Milvus receives heavy write requests, it first materializes the
operations (similar to database logs) to disk and then acknowledges to
users" — and in the distributed deployment "Milvus relies on WAL to
guarantee atomicity" and "the computing layer only sends logs (rather
than the actual data) to the storage layer, similar to Aurora."

Each record is one framed npz object on a :class:`FileSystem`; a
checkpoint truncates everything at or below the flushed LSN.

Durability hardening: every record is framed as
``WREC | crc32(payload) | len(payload) | payload``, so a torn write
(crash mid-append) or read-side bit corruption is detected instead of
surfacing as an ``np.load`` explosion.  :meth:`WriteAheadLog.replay`
distinguishes the two cases that matter:

* a corrupt **tail** (the highest LSNs, with no intact record after
  them) is the signature of a crash mid-append — the record was never
  acknowledged, so replay deletes it and returns the intact prefix;
* a corrupt record **followed by intact ones** means acknowledged data
  is gone — replay raises :class:`WalCorruptionError` rather than
  silently dropping it.

Appends, replay, and truncation serialize on an internal lock (role
``"wal"`` in the sanitizer hierarchy: ``lsm -> wal -> fs``) so a
checkpoint racing a recovery scan can never interleave a half-deleted
log with a decode.
"""

from __future__ import annotations

import io
import json
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import get_obs
from repro.obs import events as obs_events
from repro.storage.filesystem import FileSystem
from repro.utils.sanitizer import assert_guarded, maybe_sanitize

#: record frame: magic, crc32 of payload, payload length.
_FRAME = struct.Struct("<4sII")
_MAGIC = b"WREC"


class WalCorruptionError(RuntimeError):
    """Acknowledged WAL data is unreadable (not a harmless torn tail)."""

    def __init__(self, message: str, lsn: Optional[int] = None):
        super().__init__(message)
        self.lsn = lsn


@dataclass
class WalRecord:
    """One logged operation.

    ``kind`` is ``"insert"`` or ``"delete"``.  Inserts carry row ids,
    vector fields, attribute columns, and categorical code columns;
    deletes carry row ids only.
    """

    lsn: int
    kind: str
    row_ids: np.ndarray
    vectors: Dict[str, np.ndarray]
    attributes: Dict[str, np.ndarray]
    categoricals: Dict[str, np.ndarray] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        meta = {
            "lsn": self.lsn,
            "kind": self.kind,
            "vector_fields": sorted(self.vectors),
            "attribute_fields": sorted(self.attributes),
            "categorical_fields": sorted(self.categoricals),
        }
        arrays = {"row_ids": np.asarray(self.row_ids, dtype=np.int64)}
        for name, mat in self.vectors.items():
            arrays[f"vec__{name}"] = np.asarray(mat, dtype=np.float32)
        for name, vals in self.attributes.items():
            arrays[f"attr__{name}"] = np.asarray(vals, dtype=np.float64)
        for name, codes in self.categoricals.items():
            arrays[f"cat__{name}"] = np.asarray(codes, dtype=np.int64)
        buf = io.BytesIO()
        np.savez(buf, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                 **arrays)
        payload = buf.getvalue()
        return _FRAME.pack(_MAGIC, zlib.crc32(payload), len(payload)) + payload

    @classmethod
    def from_bytes(cls, blob: bytes) -> "WalRecord":
        """Decode one framed record; :class:`WalCorruptionError` on damage."""
        if len(blob) < _FRAME.size or blob[:4] != _MAGIC:
            # Pre-checksum records (raw npz) decode via the legacy path.
            return cls._decode_payload(blob)
        magic, crc, length = _FRAME.unpack_from(blob)
        payload = blob[_FRAME.size:]
        if len(payload) != length:
            raise WalCorruptionError(
                f"torn record: frame declares {length} payload bytes, "
                f"got {len(payload)}"
            )
        if zlib.crc32(payload) != crc:
            raise WalCorruptionError("checksum mismatch: record payload corrupt")
        return cls._decode_payload(payload)

    @classmethod
    def _decode_payload(cls, payload: bytes) -> "WalRecord":
        try:
            with np.load(io.BytesIO(payload)) as archive:
                meta = json.loads(bytes(archive["meta"]).decode())
                vectors = {n: archive[f"vec__{n}"] for n in meta["vector_fields"]}
                attributes = {
                    n: archive[f"attr__{n}"] for n in meta["attribute_fields"]
                }
                categoricals = {
                    n: archive[f"cat__{n}"] for n in meta.get("categorical_fields", [])
                }
                return cls(
                    lsn=meta["lsn"],
                    kind=meta["kind"],
                    row_ids=archive["row_ids"],
                    vectors=vectors,
                    attributes=attributes,
                    categoricals=categoricals,
                )
        except WalCorruptionError:
            raise
        except Exception as exc:
            raise WalCorruptionError(f"undecodable record payload: {exc}") from exc


class WriteAheadLog:
    """Durable, replayable operation log over any FileSystem."""

    #: lock-discipline declaration consumed by tools/reprolint (also
    #: registered centrally in [tool.reprolint.guarded-fields]).
    _GUARDED_BY = {
        "_next_lsn": "_lock",
        "_pending_bytes": "_lock",
        "_lag_bytes": "_lock",
    }

    def __init__(self, fs: FileSystem, prefix: str = "wal"):
        self.fs = fs
        self.prefix = prefix.rstrip("/")
        # Role "wal" sits between "lsm" and "fs" in the lock hierarchy:
        # the LSM write path appends under its own lock, and appends /
        # checkpoints call into the filesystem while holding this one.
        self._lock = maybe_sanitize(threading.Lock(), "wal")
        existing = self.fs.listdir(self.prefix + "/")
        self._next_lsn = 0
        for path in existing:
            try:
                lsn = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            self._next_lsn = max(self._next_lsn, lsn + 1)
        #: lsn -> framed record size for un-checkpointed records; the
        #: sum is the WAL-lag health signal.  Records inherited from a
        #: previous process are sized when replay reads them.
        self._pending_bytes: Dict[int, int] = {}
        self._lag_bytes = 0

    def _path(self, lsn: int) -> str:
        return f"{self.prefix}/{lsn:012d}.rec"

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def append_insert(
        self,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Optional[Dict[str, np.ndarray]] = None,
        categoricals: Optional[Dict[str, np.ndarray]] = None,
    ) -> int:
        """Log an insert batch; returns its LSN."""
        with self._lock:
            record = WalRecord(
                self._next_lsn, "insert", row_ids, vectors, attributes or {},
                categoricals or {},
            )
            return self._append_locked(record)

    def append_delete(self, row_ids: np.ndarray) -> int:
        """Log a delete batch; returns its LSN."""
        with self._lock:
            record = WalRecord(self._next_lsn, "delete", row_ids, {}, {}, {})
            return self._append_locked(record)

    def _append_locked(self, record: WalRecord) -> int:
        # The LSN counter advances only after the write lands: a write
        # that raises (torn, transient) was never acknowledged, and its
        # LSN is reused by the next append.
        obs = get_obs()
        blob = record.to_bytes()
        with obs.tracer.span("wal.append", kind=record.kind):
            started = time.perf_counter()
            self.fs.write(self._path(record.lsn), blob)
            elapsed = time.perf_counter() - started
        self._next_lsn += 1
        self._pending_bytes[record.lsn] = len(blob)
        self._lag_bytes += len(blob)
        obs.registry.counter("wal_appends_total", kind=record.kind).inc()
        obs.registry.histogram("wal_append_seconds").observe(elapsed)
        obs.registry.gauge("wal_lag_bytes").set(self._lag_bytes)
        return record.lsn

    def _scan_locked(self, from_lsn: int) -> List[Tuple[int, str]]:
        entries = []
        for path in self.fs.listdir(self.prefix + "/"):
            name = path.rsplit("/", 1)[-1]
            try:
                lsn = int(name.split(".")[0])
            except ValueError:
                continue
            if lsn >= from_lsn:
                entries.append((lsn, path))
        entries.sort()
        return entries

    def replay(self, from_lsn: int = 0) -> List[WalRecord]:
        """Records with ``lsn >= from_lsn`` in order, torn tail removed.

        Corrupt records at the tail (nothing intact after them) are the
        un-acknowledged remains of a crash mid-append: they are deleted
        and the intact prefix is returned.  A corrupt record *followed*
        by an intact one is acknowledged data loss and raises
        :class:`WalCorruptionError`.
        """
        with self._lock:
            entries = self._scan_locked(from_lsn)
            decoded: List[Tuple[int, str, Optional[WalRecord]]] = []
            for lsn, path in entries:
                blob = self.fs.read(path)
                try:
                    record: Optional[WalRecord] = WalRecord.from_bytes(blob)
                except WalCorruptionError:
                    record = None
                else:
                    # Size records inherited from a previous process so
                    # the lag signal is right after recovery.
                    if lsn not in self._pending_bytes:
                        self._pending_bytes[lsn] = len(blob)
                        self._lag_bytes += len(blob)
                decoded.append((lsn, path, record))
            last_intact = max(
                (i for i, (*__, rec) in enumerate(decoded) if rec is not None),
                default=-1,
            )
            for i, (lsn, path, record) in enumerate(decoded):
                if record is None and i < last_intact:
                    raise WalCorruptionError(
                        f"WAL record {lsn} is corrupt but later records are "
                        f"intact: acknowledged writes would be lost",
                        lsn=lsn,
                    )
            # Anything after the last intact record is a torn tail.
            for lsn, path, record in decoded[last_intact + 1:]:
                self.fs.delete(path)
                self._drop_pending_locked(lsn)
            get_obs().registry.gauge("wal_lag_bytes").set(self._lag_bytes)
            return [rec for *__, rec in decoded[: last_intact + 1]]

    def _drop_pending_locked(self, lsn: int) -> None:
        assert_guarded(self._lock, "WriteAheadLog", "_lag_bytes")
        size = self._pending_bytes.pop(lsn, 0)
        self._lag_bytes -= size

    def truncate_through(self, lsn: int) -> None:
        """Checkpoint: discard records with LSN <= ``lsn``."""
        removed = 0
        with self._lock:
            for rec_lsn, path in self._scan_locked(0):
                if rec_lsn <= lsn:
                    self.fs.delete(path)
                    self._drop_pending_locked(rec_lsn)
                    removed += 1
            lag = self._lag_bytes
        obs = get_obs()
        obs.registry.gauge("wal_lag_bytes").set(lag)
        if removed:
            obs.events.emit(obs_events.WAL_CHECKPOINT,
                            lsn=lsn, removed=removed, lag_bytes=lag)

    def pending_lsns(self) -> List[int]:
        """LSNs of records currently on storage, ascending.

        Chaos tests assert checkpointing actually reclaimed the log and
        that recovery never replays below the flushed LSN.
        """
        with self._lock:
            return [lsn for lsn, __ in self._scan_locked(0)]
