"""MemTable: the mutable in-memory write buffer (paper Sec. 2.3).

"Newly inserted entities are stored in memory first as MemTable.
Once the accumulated size reaches a threshold, or once every second,
the MemTable becomes immutable and then gets flushed to disk as a new
segment."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.storage.attributes import AttributeColumn
from repro.storage.categorical import CategoricalColumn
from repro.storage.segment import Segment, VectorSpecs


class MemTable:
    """Row-oriented write buffer sealed into a columnar :class:`Segment`."""

    def __init__(
        self,
        vector_specs: VectorSpecs,
        attribute_names: Tuple[str, ...],
        categorical_names: Tuple[str, ...] = (),
        categorical_kinds: Optional[Dict[str, str]] = None,
    ):
        self.vector_specs = dict(vector_specs)
        self.attribute_names = tuple(attribute_names)
        self.categorical_names = tuple(categorical_names)
        self.categorical_kinds = dict(categorical_kinds or {})
        self._row_ids: List[int] = []
        self._vectors: Dict[str, List[np.ndarray]] = {n: [] for n in vector_specs}
        self._attributes: Dict[str, List[float]] = {n: [] for n in attribute_names}
        self._categoricals: Dict[str, List[int]] = {n: [] for n in categorical_names}
        self._bytes = 0
        self.sealed = False

    def __len__(self) -> int:
        return len(self._row_ids)

    @property
    def approx_bytes(self) -> int:
        return self._bytes

    def insert(
        self,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Optional[Dict[str, np.ndarray]] = None,
        categoricals: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Append a batch of rows (validated against the specs).

        ``categoricals`` maps categorical field names to int64 *code*
        arrays (the collection owns the string dictionary).
        """
        if self.sealed:
            raise RuntimeError("cannot insert into a sealed MemTable")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        n = len(row_ids)
        if set(vectors) != set(self.vector_specs):
            raise ValueError(
                f"expected vector fields {sorted(self.vector_specs)}, got {sorted(vectors)}"
            )
        attributes = attributes or {}
        if set(attributes) != set(self.attribute_names):
            raise ValueError(
                f"expected attributes {sorted(self.attribute_names)}, got {sorted(attributes)}"
            )
        categoricals = categoricals or {}
        if set(categoricals) != set(self.categorical_names):
            raise ValueError(
                f"expected categoricals {sorted(self.categorical_names)}, "
                f"got {sorted(categoricals)}"
            )
        staged_cats = {}
        for name in self.categorical_names:
            codes = np.asarray(categoricals[name], dtype=np.int64).ravel()
            if len(codes) != n:
                raise ValueError(
                    f"categorical {name!r}: expected {n} codes, got {len(codes)}"
                )
            staged_cats[name] = codes
        staged = {}
        for name, (dim, __) in self.vector_specs.items():
            mat = np.asarray(vectors[name], dtype=np.float32)
            if mat.ndim == 1:
                mat = mat[np.newaxis, :]
            if mat.shape != (n, dim):
                raise ValueError(
                    f"vector field {name!r}: expected shape ({n}, {dim}), got {mat.shape}"
                )
            staged[name] = mat
        staged_attrs = {}
        for name in self.attribute_names:
            vals = np.asarray(attributes[name], dtype=np.float64).ravel()
            if len(vals) != n:
                raise ValueError(
                    f"attribute {name!r}: expected {n} values, got {len(vals)}"
                )
            staged_attrs[name] = vals

        self._row_ids.extend(int(r) for r in row_ids)
        for name, mat in staged.items():
            self._vectors[name].append(mat)
            self._bytes += mat.nbytes
        for name, vals in staged_attrs.items():
            self._attributes[name].extend(vals.tolist())
            self._bytes += vals.nbytes
        for name, codes in staged_cats.items():
            self._categoricals[name].extend(codes.tolist())
            self._bytes += codes.nbytes
        self._bytes += row_ids.nbytes

    def seal(self) -> None:
        """Mark immutable; subsequent inserts raise."""
        self.sealed = True

    def to_segment(self, segment_id: int, version: int = 0) -> Segment:
        """Convert to a sealed columnar segment (rows sorted by id)."""
        row_ids = np.array(self._row_ids, dtype=np.int64)
        order = np.argsort(row_ids, kind="stable")
        vectors = {}
        for name in self.vector_specs:
            if self._vectors[name]:
                mat = np.concatenate(self._vectors[name])
            else:
                mat = np.empty((0, self.vector_specs[name][0]), dtype=np.float32)
            vectors[name] = mat[order]
        attributes = {
            name: AttributeColumn(
                np.array(self._attributes[name], dtype=np.float64)[order],
                row_ids[order],
            )
            for name in self.attribute_names
        }
        categoricals = {
            name: CategoricalColumn(
                np.array(self._categoricals[name], dtype=np.int64)[order],
                row_ids[order],
                index_kind=self.categorical_kinds.get(name, "auto"),
            )
            for name in self.categorical_names
        }
        return Segment(
            segment_id, row_ids[order], vectors, attributes,
            self.vector_specs, version=version, categoricals=categoricals,
        )

    # -- read-your-writes support (optional memtable visibility) ---------

    def raw_rows(self):
        """Current rows as (row_ids, vectors, attributes, categoricals).

        Categorical *code* arrays ride along with the numeric columns —
        earlier revisions dropped them here, so memtable-visible reads
        disagreed with sealed segments on any categorical predicate.
        """
        row_ids = np.array(self._row_ids, dtype=np.int64)
        vectors = {}
        for name in self.vector_specs:
            if self._vectors[name]:
                vectors[name] = np.concatenate(self._vectors[name])
            else:
                vectors[name] = np.empty(
                    (0, self.vector_specs[name][0]), dtype=np.float32
                )
        attributes = {
            name: np.array(vals, dtype=np.float64)
            for name, vals in self._attributes.items()
        }
        categoricals = {
            name: np.array(codes, dtype=np.int64)
            for name, codes in self._categoricals.items()
        }
        return row_ids, vectors, attributes, categoricals
