"""Tiered merge policy (paper Sec. 2.3).

"Milvus implements a tiered merge policy (also used in Apache Lucene)
that aims to merge segments of approximately equal sizes until a
configurable size limit (e.g., 1GB) is reached."

Segments are bucketed into size tiers (powers of ``tier_factor``); when
a tier accumulates ``merge_factor`` segments, they merge into one
segment of the next tier, unless the combined size would exceed
``max_segment_bytes``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class MergeTask:
    """One planned merge: the segment ids to combine."""

    segment_ids: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.segment_ids)


@dataclass
class TieredMergePolicy:
    """Plans merges over (segment_id, byte_size) descriptors.

    Attributes:
        merge_factor: segments per tier that trigger a merge.
        tier_factor: size ratio between adjacent tiers.
        min_segment_bytes: floor so tiny flushes share tier 0.
        max_segment_bytes: segments at/above this size never merge
            (the paper's "configurable size limit, e.g., 1GB").
    """

    merge_factor: int = 4
    tier_factor: float = 4.0
    min_segment_bytes: int = 1 << 12
    max_segment_bytes: int = 1 << 30

    def __post_init__(self):
        if self.merge_factor < 2:
            raise ValueError("merge_factor must be >= 2")
        if self.tier_factor <= 1.0:
            raise ValueError("tier_factor must be > 1")

    def tier_of(self, size_bytes: int) -> int:
        """Tier index for a segment of ``size_bytes``."""
        if size_bytes <= self.min_segment_bytes:
            return 0
        ratio = size_bytes / self.min_segment_bytes
        return int(math.floor(math.log(ratio, self.tier_factor))) + 1

    def plan(self, segments: Sequence[Tuple[int, int]]) -> List[MergeTask]:
        """Given (segment_id, bytes) pairs, return merge tasks.

        Segments at or above ``max_segment_bytes`` are left alone.
        Within a tier, the oldest (lowest id) segments merge first.
        """
        tiers: Dict[int, List[Tuple[int, int]]] = {}
        for seg_id, size in segments:
            if size >= self.max_segment_bytes:
                continue
            tiers.setdefault(self.tier_of(size), []).append((seg_id, size))

        tasks: List[MergeTask] = []
        for tier in sorted(tiers):
            members = sorted(tiers[tier])
            while len(members) >= self.merge_factor:
                group = members[: self.merge_factor]
                members = members[self.merge_factor :]
                combined = sum(size for __, size in group)
                if combined > self.max_segment_bytes:
                    break
                tasks.append(MergeTask(tuple(seg_id for seg_id, __ in group)))
        return tasks
