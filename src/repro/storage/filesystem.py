"""Multi-storage abstraction (paper Sec. 2.4).

"Milvus supports multiple file systems including local file systems,
Amazon S3, and HDFS for the underlying data storage."  The S3 and HDFS
backends here are in-process simulations: dictionary-backed object
stores with the semantics that matter to the engine (whole-object
put/get, no partial update for S3; block-oriented accounting for
HDFS), plus byte counters so benches can report I/O volume.
"""

from __future__ import annotations

import abc
import os
import threading
from typing import Dict, List

from repro.utils.sanitizer import maybe_sanitize


class FileSystem(abc.ABC):
    """Minimal object-storage interface the engine depends on."""

    @abc.abstractmethod
    def write(self, path: str, data: bytes) -> None:
        """Store ``data`` at ``path``, replacing any previous object."""

    @abc.abstractmethod
    def read(self, path: str) -> bytes:
        """Fetch the object at ``path``; raises ``FileNotFoundError``."""

    @abc.abstractmethod
    def exists(self, path: str) -> bool:
        ...

    @abc.abstractmethod
    def delete(self, path: str) -> None:
        """Remove the object; missing objects are a no-op (idempotent)."""

    @abc.abstractmethod
    def listdir(self, prefix: str) -> List[str]:
        """Paths starting with ``prefix``, sorted."""

    # I/O accounting shared by all backends.
    bytes_written: int = 0
    bytes_read: int = 0

    def reset_counters(self) -> None:
        self.bytes_written = 0
        self.bytes_read = 0


class LocalFileSystem(FileSystem):
    """Real on-disk backend rooted at ``root``.

    The OS serializes the file operations themselves; the lock here
    only guards the I/O counters (``self.bytes_written += n`` is a
    read-modify-write and loses increments under concurrent flush +
    WAL append without it).  The fsync'd write happens *outside* the
    lock so accounting never serializes the actual I/O.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "bytes_written": "_lock",
        "bytes_read": "_lock",
    }

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock = maybe_sanitize(threading.Lock(), "fs")
        self.bytes_written = 0
        self.bytes_read = 0

    def reset_counters(self) -> None:
        with self._lock:
            self.bytes_written = 0
            self.bytes_read = 0

    def _full(self, path: str) -> str:
        full = os.path.normpath(os.path.join(self.root, path))
        if not full.startswith(os.path.normpath(self.root)):
            raise ValueError(f"path {path!r} escapes the filesystem root")
        return full

    def write(self, path: str, data: bytes) -> None:
        """Atomic, durable write: temp file + fsync + ``os.replace``.

        A crash at any point leaves either the old object or the new
        one — never a torn mix — which the WAL and manifest recovery
        paths rely on.
        """
        full = self._full(path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        tmp = full + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, full)
        with self._lock:
            self.bytes_written += len(data)

    def read(self, path: str) -> bytes:
        with open(self._full(path), "rb") as fh:
            data = fh.read()
        with self._lock:
            self.bytes_read += len(data)
        return data

    def exists(self, path: str) -> bool:
        return os.path.isfile(self._full(path))

    def delete(self, path: str) -> None:
        try:
            os.remove(self._full(path))
        except FileNotFoundError:
            pass

    def listdir(self, prefix: str) -> List[str]:
        found = []
        for dirpath, __, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".tmp"):
                    continue  # in-flight write abandoned by a crash
                rel = os.path.relpath(os.path.join(dirpath, name), self.root)
                rel = rel.replace(os.sep, "/")
                if rel.startswith(prefix):
                    found.append(rel)
        return sorted(found)


class InMemoryObjectStore(FileSystem):
    """Simulated Amazon S3: flat key space, whole-object semantics.

    Thread-safe because the distributed layer shares one store across
    simulated nodes, exactly as Milvus's compute nodes share S3.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_objects": "_lock",
        "bytes_written": "_lock",
        "bytes_read": "_lock",
        "put_count": "_lock",
        "get_count": "_lock",
    }

    def __init__(self):
        self._objects: Dict[str, bytes] = {}
        self._lock = maybe_sanitize(threading.Lock(), "fs")
        self.bytes_written = 0
        self.bytes_read = 0
        self.put_count = 0
        self.get_count = 0

    def reset_counters(self) -> None:
        with self._lock:
            self.bytes_written = 0
            self.bytes_read = 0
            self.put_count = 0
            self.get_count = 0

    def write(self, path: str, data: bytes) -> None:
        with self._lock:
            self._objects[path] = bytes(data)
            self.bytes_written += len(data)
            self.put_count += 1

    def read(self, path: str) -> bytes:
        with self._lock:
            try:
                data = self._objects[path]
            except KeyError:
                raise FileNotFoundError(path) from None
            self.bytes_read += len(data)
            self.get_count += 1
            return data

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._objects

    def delete(self, path: str) -> None:
        with self._lock:
            self._objects.pop(path, None)

    def listdir(self, prefix: str) -> List[str]:
        with self._lock:
            return sorted(key for key in self._objects if key.startswith(prefix))


class SimulatedHDFS(InMemoryObjectStore):
    """Simulated HDFS: object store with block-size storage accounting.

    HDFS allocates in fixed blocks; :meth:`stored_bytes` reports the
    block-rounded footprint, which tests use to verify the abstraction
    actually differs from S3 in the way that matters.
    """

    def __init__(self, block_size: int = 64 * 1024):
        super().__init__()
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.block_size = block_size

    def stored_bytes(self) -> int:
        with self._lock:
            total = 0
            for data in self._objects.values():
                blocks = (len(data) + self.block_size - 1) // self.block_size
                total += max(blocks, 1) * self.block_size
            return total
