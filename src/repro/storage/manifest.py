"""Manifest: MVCC segment versions, snapshot isolation, and GC.

Paper Sec. 5.2: "Each segment has multiple versions and a new version
is generated whenever the data or index in that segment is changed
... All the latest segments at any time form a snapshot.  Each
segment can be referenced by one or more snapshots ... There is a
background thread to garbage collect the obsolete segments if they
are not referenced."

Queries acquire a :class:`Snapshot` (the set of live segment ids, the
frozen-memtable ids awaiting background flush, and the delete-
tombstone array at that instant) and release it when done; writers
commit new versions without blocking readers.

Frozen memtables participate in MVCC exactly like segments: a freeze
commits a version that adds the frozen id, the background flush
commits a version that swaps it for the sealed segment id, and a
reader that pinned the in-between version keeps the frozen view alive
(via refcounts) until it releases.  ``on_frozen_dead`` fires when no
snapshot can see a frozen id any more, letting the LSM manager drop
the in-memory view.

The manifest also records each sealed segment's *persisted* byte size
(``sizes`` at commit time) so compaction planning reads catalog state
instead of faulting segments through the buffer pool.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs import get_obs
from repro.obs import events as obs_events
from repro.utils.sanitizer import assert_guarded, maybe_sanitize


@dataclass(frozen=True)
class Snapshot:
    """An immutable view: segments + frozen memtables as of one version."""

    version: int
    segment_ids: Tuple[int, ...]
    tombstones: np.ndarray  # sorted int64 row ids deleted as of this version
    frozen_ids: Tuple[int, ...] = ()

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self.segment_ids


class Manifest:
    """Versioned segment catalog with reference-counted snapshots."""

    #: lock-discipline declaration consumed by tools/reprolint; the
    #: ``*_locked`` helpers run with ``_lock`` already held.
    _GUARDED_BY = {
        "_version": "_lock",
        "_segments": "_lock",
        "_frozen": "_lock",
        "_tombstones": "_lock",
        "_history": "_lock",
        "_sizes": "_lock",
        "gc_count": "_lock",
    }

    def __init__(
        self,
        on_segment_dead: Optional[Callable[[int], None]] = None,
        on_frozen_dead: Optional[Callable[[int], None]] = None,
    ):
        self._lock = maybe_sanitize(threading.Lock(), "manifest")
        self._version = 0
        self._segments: Tuple[int, ...] = ()
        self._frozen: Tuple[int, ...] = ()
        self._tombstones = np.empty(0, dtype=np.int64)
        #: version -> (segment ids, frozen ids, tombstones, refcount)
        self._history: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...], np.ndarray, int]
        ] = {0: ((), (), self._tombstones, 0)}
        #: persisted byte size per sealed segment (merge planning input)
        self._sizes: Dict[int, int] = {}
        self._on_segment_dead = on_segment_dead
        self._on_frozen_dead = on_frozen_dead
        self.gc_count = 0

    # -- write path -------------------------------------------------------

    def commit(
        self,
        add: Sequence[int] = (),
        remove: Sequence[int] = (),
        new_tombstones: Optional[np.ndarray] = None,
        clear_tombstones: Optional[np.ndarray] = None,
        add_frozen: Sequence[int] = (),
        remove_frozen: Sequence[int] = (),
        sizes: Optional[Dict[int, int]] = None,
    ) -> int:
        """Atomically install a new version; returns its number.

        Args:
            add: segment ids becoming live.
            remove: segment ids leaving the live set (merged away).
            new_tombstones: row ids to add to the delete set.
            clear_tombstones: row ids physically removed by a merge,
                so their tombstones can be dropped.
            add_frozen: frozen-memtable ids entering the visible set.
            remove_frozen: frozen ids leaving it (flushed to segments).
            sizes: persisted byte size for each id in ``add``.
        """
        with self._lock:
            live = [s for s in self._segments if s not in set(remove)]
            for seg in add:
                if seg in live:
                    raise ValueError(f"segment {seg} already live")
                live.append(seg)
            frozen = [f for f in self._frozen if f not in set(remove_frozen)]
            for fid in add_frozen:
                if fid in frozen:
                    raise ValueError(f"frozen memtable {fid} already visible")
                frozen.append(fid)
            tombs = self._tombstones
            if new_tombstones is not None and len(new_tombstones):
                tombs = np.union1d(tombs, np.asarray(new_tombstones, dtype=np.int64))
            if clear_tombstones is not None and len(clear_tombstones):
                tombs = np.setdiff1d(
                    tombs, np.asarray(clear_tombstones, dtype=np.int64),
                    assume_unique=False,
                )
            if sizes:
                self._sizes.update({int(k): int(v) for k, v in sizes.items()})
            self._version += 1
            self._segments = tuple(live)
            self._frozen = tuple(frozen)
            self._tombstones = tombs
            self._history[self._version] = (self._segments, self._frozen, tombs, 0)
            dead_segs, dead_frozen = self._collect_locked()
            version = self._version
        self._notify_dead(dead_segs, dead_frozen)
        return version

    # -- read path -----------------------------------------------------------

    def acquire(self) -> Snapshot:
        """Pin the current version and return its snapshot."""
        with self._lock:
            segs, frozen, tombs, refs = self._history[self._version]
            self._history[self._version] = (segs, frozen, tombs, refs + 1)
            return Snapshot(self._version, segs, tombs, frozen)

    def release(self, snapshot: Snapshot) -> None:
        """Unpin a snapshot; may trigger GC of obsolete segments."""
        with self._lock:
            entry = self._history.get(snapshot.version)
            if entry is None:
                return
            segs, frozen, tombs, refs = entry
            if refs <= 0:
                raise RuntimeError(
                    f"snapshot version {snapshot.version} released more times than acquired"
                )
            self._history[snapshot.version] = (segs, frozen, tombs, refs - 1)
            dead_segs, dead_frozen = self._collect_locked()
        self._notify_dead(dead_segs, dead_frozen)

    # -- introspection -----------------------------------------------------------

    @property
    def current_version(self) -> int:
        with self._lock:
            return self._version

    def live_segment_ids(self) -> Tuple[int, ...]:
        with self._lock:
            return self._segments

    def live_frozen_ids(self) -> Tuple[int, ...]:
        with self._lock:
            return self._frozen

    def live_segment_sizes(self) -> Dict[int, int]:
        """Persisted byte size of each live segment, from catalog state.

        Compaction plans from this instead of pulling every segment
        through the buffer pool — no I/O, no lock-order inversion.
        """
        with self._lock:
            return {s: self._sizes.get(s, 0) for s in self._segments}

    def current_tombstones(self) -> np.ndarray:
        """Read-only view of the current delete set (O(1)).

        Tombstone arrays are copy-on-write — commit builds a new array
        rather than mutating in place — so a non-writeable view shares
        storage safely without leaking a mutable guarded container.
        """
        with self._lock:
            view = self._tombstones.view()
        view.flags.writeable = False
        return view

    def referenced_segment_ids(self) -> Set[int]:
        """Segments reachable from the current version or any pinned snapshot."""
        with self._lock:
            return self._referenced_locked()

    def _referenced_locked(self) -> Set[int]:
        referenced: Set[int] = set(self._segments)
        for version, (segs, __, ___, refs) in self._history.items():
            if refs > 0:
                referenced.update(segs)
        return referenced

    # -- GC -----------------------------------------------------------------------

    def _history_segments_locked(self) -> Tuple[Set[int], Set[int]]:
        """(segments, frozen ids) reachable from *any* recorded version."""
        segments: Set[int] = set()
        frozen: Set[int] = set()
        for segs, fro, __, ___ in self._history.values():
            segments.update(segs)
            frozen.update(fro)
        return segments, frozen

    def _collect_locked(self) -> Tuple[List[int], List[int]]:
        """Drop unpinned historical versions; return newly dead ids.

        The ``on_segment_dead`` callback reaches *down* into the buffer
        pool, index specs, and filesystem, so invoking it here — under
        the manifest lock — would both invert the documented lock
        hierarchy and hold the manifest across segment-file deletes.
        Callers release the lock first, then run :meth:`_notify_dead`.
        """
        assert_guarded(self._lock, "Manifest", "_history")
        before_segs, before_frozen = self._history_segments_locked()
        dead_versions = [
            v for v, (__, ___, ____, refs) in self._history.items()
            if refs == 0 and v != self._version
        ]
        for v in dead_versions:
            del self._history[v]
        after_segs, after_frozen = self._history_segments_locked()
        dead_segs = sorted(before_segs - after_segs)
        dead_frozen = sorted(before_frozen - after_frozen)
        for seg in dead_segs:
            self._sizes.pop(seg, None)
        self.gc_count += len(dead_segs)
        return dead_segs, dead_frozen

    def _notify_dead(
        self, dead_segs: Sequence[int], dead_frozen: Sequence[int] = ()
    ) -> None:
        """Run the dead callbacks with no manifest lock held."""
        if dead_segs or dead_frozen:
            get_obs().events.emit(
                obs_events.MANIFEST_GC,
                dead_segments=len(dead_segs), dead_frozen=len(dead_frozen))
        if self._on_segment_dead is not None:
            for seg in dead_segs:
                self._on_segment_dead(seg)
        if self._on_frozen_dead is not None:
            for fid in dead_frozen:
                self._on_frozen_dead(fid)
