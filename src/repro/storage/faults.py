"""Deterministic fault injection for the storage layer.

The paper's durability claims (Sec. 5.1/5.3: WAL-first
acknowledgement, Aurora-style log shipping, disposable readers
respawned from shared storage) are only testable if failures can be
*scripted*.  :class:`FaultyFileSystem` wraps any :class:`FileSystem`
and executes a :class:`FaultPlan` — a small, seeded DSL of fault
rules, each scoped by operation kind and path glob:

* **torn writes** — persist only the first N bytes of the payload,
  then (by default) raise :class:`SimulatedCrash`, modelling a crash
  mid-write;
* **transient errors** — raise ``IOError`` (or any exception class)
  on the Nth matching op, for a bounded number of ops, *before* the
  op executes — the shape retries must survive;
* **read-side corruption** — flip seeded-random bits in the returned
  payload, the shape checksums must catch;
* **crash points** — let the op land fully, then raise
  :class:`SimulatedCrash`, modelling a crash between two durable
  steps (e.g. "manifest persisted but WAL not yet truncated"); or
  raise *before* the op lands (``crash_before``), modelling a crash
  in the gap between deciding to persist and persisting (e.g. "memtable
  frozen, segment file never written");
* **stall gates** — park the matching op on a :class:`threading.Event`
  pair until the test releases it, so concurrency proofs ("insert
  returns while the background flush is still mid-write") are exact
  schedules rather than sleep-and-hope timing;
* **injected latency** — account (not sleep) per-op delay so tests
  can assert slow-path behaviour without slow tests.

Every random draw comes from the plan's own ``random.Random(seed)``,
so a fault schedule replays byte-identically.  The chaos suite
(``tests/test_chaos.py``) asserts the engine's core invariant against
these plans: no acknowledged write is ever lost.
"""

from __future__ import annotations

import fnmatch
import threading
from dataclasses import dataclass, field
from random import Random
from typing import List, Optional, Tuple, Type

from repro.storage.filesystem import FileSystem
from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "SimulatedCrash", "FaultRule", "FaultPlan", "FaultyFileSystem", "StallGate",
]

#: operation kinds a rule may scope to ("*" matches all of them).
OP_KINDS = ("write", "read", "delete", "listdir", "exists")


class SimulatedCrash(Exception):
    """A scripted process crash: the op may or may not have landed.

    Raised by :class:`FaultyFileSystem` at crash points and after torn
    writes.  Engine code must never catch this — the chaos harness
    catches it at the top, discards the "process" (the manager
    object), and recovers a fresh one from the surviving filesystem
    state, exactly like a real crash-restart cycle.
    """

    def __init__(self, op: str, path: str, detail: str = ""):
        self.op = op
        self.path = path
        super().__init__(f"simulated crash during {op}({path!r})"
                         + (f": {detail}" if detail else ""))


class StallGate:
    """Event pair that freezes an op at a known point until released.

    The faulty filesystem sets ``reached`` when the matching op arrives
    and then blocks on ``release`` (outside the plan lock, so other
    threads' I/O proceeds).  Tests sequence exact interleavings:
    ``gate.reached.wait()`` — the flush is now provably in flight —
    do concurrent work, assert, then ``gate.release.set()``.

    ``max_wait`` bounds the park so a test bug degrades into a slow
    pass-through rather than a hung suite.
    """

    def __init__(self, max_wait: float = 30.0):
        self.reached = threading.Event()
        self.release = threading.Event()
        self.max_wait = max_wait

    def park(self) -> None:
        self.reached.set()
        self.release.wait(self.max_wait)


@dataclass
class FaultRule:
    """One scripted fault, scoped by op kind + path glob + match count.

    The rule fires on matching ops number ``nth`` through
    ``nth + times - 1`` (1-based; ``times=None`` means forever after).
    ``seen``/``fired`` are runtime counters, exposed so tests can
    assert a schedule actually triggered.
    """

    kind: str                 #: torn-write | error | corrupt-read | crash-after | crash-before | stall | latency
    op: str                   #: one of OP_KINDS or "*"
    glob: str                 #: path pattern (fnmatch)
    nth: int = 1
    times: Optional[int] = 1
    truncate_at: int = 0      #: torn-write: bytes of payload that land
    crash: bool = True        #: torn-write: raise SimulatedCrash after
    exc_type: Type[Exception] = IOError
    flip_bits: int = 1        #: corrupt-read: number of bit flips
    seconds: float = 0.0      #: latency: injected (accounted) delay
    gate: Optional[StallGate] = None  #: stall: the event pair to park on
    seen: int = 0
    fired: int = 0

    def matches(self, op: str, path: str) -> bool:
        return self.op in ("*", op) and fnmatch.fnmatchcase(path, self.glob)

    def _tick(self) -> bool:
        """Count one matching op; True when the rule fires on it."""
        self.seen += 1
        active = self.seen >= self.nth and (
            self.times is None or self.seen < self.nth + self.times
        )
        if active:
            self.fired += 1
        return active


class FaultPlan:
    """A seeded, ordered schedule of :class:`FaultRule`\\ s.

    Builder methods append rules and return them (handy for asserting
    ``rule.fired`` afterwards).  Rules are evaluated in registration
    order; at most one torn-write rule applies per write.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rules: List[FaultRule] = []
        self._rng = Random(seed)

    def _add(self, rule: FaultRule) -> FaultRule:
        if rule.op != "*" and rule.op not in OP_KINDS:
            raise ValueError(f"unknown op kind {rule.op!r}")
        self.rules.append(rule)
        return rule

    def torn_write(
        self, glob: str, truncate_at: int, nth: int = 1, crash: bool = True
    ) -> FaultRule:
        """Truncate the payload of the nth matching write at ``truncate_at``."""
        return self._add(FaultRule(
            kind="torn-write", op="write", glob=glob, nth=nth,
            truncate_at=truncate_at, crash=crash,
        ))

    def fail(
        self,
        glob: str,
        op: str = "write",
        nth: int = 1,
        times: Optional[int] = 1,
        exc_type: Type[Exception] = IOError,
    ) -> FaultRule:
        """Raise ``exc_type`` before matching ops nth..nth+times-1 execute."""
        return self._add(FaultRule(
            kind="error", op=op, glob=glob, nth=nth, times=times,
            exc_type=exc_type,
        ))

    def corrupt_read(
        self, glob: str, nth: int = 1, times: Optional[int] = 1, flip_bits: int = 1
    ) -> FaultRule:
        """Flip seeded-random bits in the payload returned by a read."""
        return self._add(FaultRule(
            kind="corrupt-read", op="read", glob=glob, nth=nth, times=times,
            flip_bits=flip_bits,
        ))

    def crash_after(self, glob: str, op: str = "write", nth: int = 1) -> FaultRule:
        """Let the nth matching op land, then raise SimulatedCrash."""
        return self._add(FaultRule(kind="crash-after", op=op, glob=glob, nth=nth))

    def crash_before(self, glob: str, op: str = "write", nth: int = 1) -> FaultRule:
        """Raise SimulatedCrash *before* the nth matching op executes.

        Models dying in the gap between two durable steps — e.g. the
        memtable froze and the background flusher was about to persist
        the segment, but the file never hit storage.
        """
        return self._add(FaultRule(kind="crash-before", op=op, glob=glob, nth=nth))

    def stall(
        self, glob: str, op: str = "write", nth: int = 1,
        times: Optional[int] = 1, max_wait: float = 30.0,
    ) -> FaultRule:
        """Park matching ops on a :class:`StallGate` until released.

        Returns the rule; use ``rule.gate.reached.wait()`` /
        ``rule.gate.release.set()`` to sequence the interleaving.
        """
        return self._add(FaultRule(
            kind="stall", op=op, glob=glob, nth=nth, times=times,
            gate=StallGate(max_wait=max_wait),
        ))

    def latency(
        self, glob: str, op: str = "*", seconds: float = 0.05,
        times: Optional[int] = None,
    ) -> FaultRule:
        """Account ``seconds`` of injected delay on matching ops."""
        return self._add(FaultRule(
            kind="latency", op=op, glob=glob, times=times, seconds=seconds,
        ))

    def corruption_positions(self, length: int, flips: int) -> List[Tuple[int, int]]:
        """Seeded (byte index, bit mask) pairs for one corruption event."""
        return [
            (self._rng.randrange(length), 1 << self._rng.randrange(8))
            for __ in range(flips)
        ]


class FaultyFileSystem(FileSystem):
    """A :class:`FileSystem` decorator that executes a :class:`FaultPlan`.

    Wraps any backend; ops with no matching rule pass straight
    through.  ``fault_log`` records every fired fault as
    ``(kind, op, path)`` so tests can assert the schedule ran.
    I/O counters delegate to the wrapped backend.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "fault_log": "_lock",
        "injected_latency_seconds": "_lock",
    }

    def __init__(self, inner: FileSystem, plan: Optional[FaultPlan] = None):
        self.inner = inner
        self.plan = plan if plan is not None else FaultPlan()
        self.fault_log: List[Tuple[str, str, str]] = []
        self.injected_latency_seconds = 0.0
        # Leaf-ish lock: held only around rule-matching and bookkeeping,
        # never across calls into the wrapped backend (role order:
        # faults -> fs would otherwise pin the backend under it).
        self._lock = maybe_sanitize(threading.Lock(), "faults")

    # -- rule evaluation --------------------------------------------------

    def _fired_rules(self, op: str, path: str) -> List[FaultRule]:
        with self._lock:
            fired = [
                rule for rule in self.plan.rules
                if rule.matches(op, path) and rule._tick()
            ]
            for rule in fired:
                self.fault_log.append((rule.kind, op, path))
                if rule.kind == "latency":
                    self.injected_latency_seconds += rule.seconds
            return fired

    @staticmethod
    def _raise_errors(fired: List[FaultRule], op: str, path: str) -> None:
        for rule in fired:
            if rule.kind == "error":
                raise rule.exc_type(f"injected transient fault on {op}({path!r})")

    @staticmethod
    def _raise_crashes(fired: List[FaultRule], op: str, path: str) -> None:
        for rule in fired:
            if rule.kind == "crash-after":
                raise SimulatedCrash(op, path)

    @staticmethod
    def _raise_crash_before(fired: List[FaultRule], op: str, path: str) -> None:
        for rule in fired:
            if rule.kind == "crash-before":
                raise SimulatedCrash(op, path, "before op executed")

    @staticmethod
    def _park_stalls(fired: List[FaultRule]) -> None:
        """Block on any stall gates — outside the plan lock, so other
        threads' I/O (and the releasing test thread) keep running."""
        for rule in fired:
            if rule.kind == "stall" and rule.gate is not None:
                rule.gate.park()

    # -- FileSystem interface ---------------------------------------------

    def write(self, path: str, data: bytes) -> None:
        fired = self._fired_rules("write", path)
        self._raise_errors(fired, "write", path)
        self._raise_crash_before(fired, "write", path)
        self._park_stalls(fired)
        torn = next((r for r in fired if r.kind == "torn-write"), None)
        if torn is not None:
            self.inner.write(path, bytes(data[: torn.truncate_at]))
            if torn.crash:
                raise SimulatedCrash(
                    "write", path,
                    f"torn at byte {torn.truncate_at} of {len(data)}",
                )
            return
        self.inner.write(path, data)
        self._raise_crashes(fired, "write", path)

    def read(self, path: str) -> bytes:
        fired = self._fired_rules("read", path)
        self._raise_errors(fired, "read", path)
        self._raise_crash_before(fired, "read", path)
        self._park_stalls(fired)
        data = self.inner.read(path)
        corruptors = [r for r in fired if r.kind == "corrupt-read"]
        if corruptors and len(data):
            mutable = bytearray(data)
            with self._lock:
                for rule in corruptors:
                    for idx, mask in self.plan.corruption_positions(
                        len(mutable), rule.flip_bits
                    ):
                        mutable[idx] ^= mask
            data = bytes(mutable)
        self._raise_crashes(fired, "read", path)
        return data

    def exists(self, path: str) -> bool:
        fired = self._fired_rules("exists", path)
        self._raise_errors(fired, "exists", path)
        self._raise_crash_before(fired, "exists", path)
        found = self.inner.exists(path)
        self._raise_crashes(fired, "exists", path)
        return found

    def delete(self, path: str) -> None:
        fired = self._fired_rules("delete", path)
        self._raise_errors(fired, "delete", path)
        self._raise_crash_before(fired, "delete", path)
        self.inner.delete(path)
        self._raise_crashes(fired, "delete", path)

    def listdir(self, prefix: str) -> List[str]:
        fired = self._fired_rules("listdir", prefix)
        self._raise_errors(fired, "listdir", prefix)
        listing = self.inner.listdir(prefix)
        self._raise_crashes(fired, "listdir", prefix)
        return listing

    # -- delegated accounting ---------------------------------------------

    @property
    def bytes_written(self) -> int:
        return self.inner.bytes_written

    @property
    def bytes_read(self) -> int:
        return self.inner.bytes_read

    def reset_counters(self) -> None:
        self.inner.reset_counters()

    def faults_fired(self, kind: Optional[str] = None) -> int:
        with self._lock:
            if kind is None:
                return len(self.fault_log)
            return sum(1 for entry in self.fault_log if entry[0] == kind)
