"""Immutable columnar segments (paper Sec. 2.3/2.4).

"Both index and data are stored in the same segment.  Thus, the
segment is the basic unit of searching, scheduling, and buffering."

A segment stores, for ``n`` entities:

* ``row_ids`` — sorted int64 global row ids;
* one columnar vector matrix per vector field, in row-id order (the
  paper: "all the vectors are sorted by row IDs ... Milvus can
  directly access the corresponding vector");
* one :class:`AttributeColumn` per numeric attribute;
* optionally one :class:`VectorIndex` per vector field, built lazily
  for large segments.

Segments serialize to a single object (npz + JSON header) on any
:class:`FileSystem`; indexes are rebuilt on load rather than
serialized, mirroring Milvus's asynchronous index building.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exec.normcache import NormCache
from repro.index import create_index
from repro.index.base import SearchResult, VectorIndex
from repro.metrics import get_metric
from repro.metrics.dense import cosine_pairwise, l2_squared_pairwise
from repro.obs import get_obs
from repro.obs.profile import current_node
from repro.storage.attributes import AttributeColumn, merge_columns
from repro.storage.bloom import BloomFilter
from repro.storage.categorical import CategoricalColumn
from repro.utils import topk_from_scores

#: vector fields spec: name -> (dim, metric_name)
VectorSpecs = Dict[str, Tuple[int, str]]


class Segment:
    """One immutable sealed segment."""

    def __init__(
        self,
        segment_id: int,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Dict[str, AttributeColumn],
        vector_specs: VectorSpecs,
        version: int = 0,
        categoricals: Optional[Dict[str, "CategoricalColumn"]] = None,
        bloom: Optional[BloomFilter] = None,
    ):
        self.segment_id = int(segment_id)
        self.version = int(version)
        self.row_ids = np.asarray(row_ids, dtype=np.int64)
        if not np.all(np.diff(self.row_ids) > 0):
            raise ValueError("segment row_ids must be strictly increasing")
        self.vectors = {name: np.asarray(v, dtype=np.float32) for name, v in vectors.items()}
        for name, mat in self.vectors.items():
            if len(mat) != len(self.row_ids):
                raise ValueError(f"vector field {name!r} row count mismatch")
        self.attributes = dict(attributes)
        self.categoricals = dict(categoricals or {})
        self.vector_specs = dict(vector_specs)
        self.indexes: Dict[str, VectorIndex] = {}
        # Row-id membership filter: built at seal time (deterministic
        # from row_ids, so rebuild == deserialize), consulted by
        # contains_mask before the exact searchsorted probe.
        self.bloom = bloom if bloom is not None else BloomFilter.build(self.row_ids)
        # Data-side kernel precomputations (|x|^2 norms, unit rows).
        # Segments are immutable after sealing, so the cache is never
        # invalidated — it lives and dies with the segment object.
        self.kernel_cache = NormCache()

    # -- basic properties ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.row_ids)

    @property
    def num_rows(self) -> int:
        return len(self.row_ids)

    def memory_bytes(self) -> int:
        total = self.row_ids.nbytes
        total += sum(v.nbytes for v in self.vectors.values())
        total += sum(c.memory_bytes() for c in self.attributes.values())
        total += sum(c.memory_bytes() for c in self.categoricals.values())
        total += sum(ix.memory_bytes() for ix in self.indexes.values())
        total += self.kernel_cache.memory_bytes()
        total += self.bloom.memory_bytes()
        return total

    # -- row access -----------------------------------------------------------

    def positions_of(self, row_ids: np.ndarray) -> np.ndarray:
        """Positions of ``row_ids`` within this segment; -1 when absent."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        pos = np.searchsorted(self.row_ids, row_ids)
        pos_clipped = np.minimum(pos, len(self.row_ids) - 1)
        hit = (len(self.row_ids) > 0) & (self.row_ids[pos_clipped] == row_ids)
        return np.where(hit, pos_clipped, -1)

    def vectors_for(self, field: str, row_ids: np.ndarray) -> np.ndarray:
        """Random access to vectors by global row id (rows must exist)."""
        pos = self.positions_of(row_ids)
        if np.any(pos < 0):
            raise KeyError("row id not present in segment")
        return self.vectors[field][pos]

    def contains_mask(self, row_ids: np.ndarray) -> np.ndarray:
        """Membership mask, bloom-accelerated.

        The filter has no false negatives, so a bloom "no" is final and
        skips the binary search entirely; only the "maybe" rows fall
        through to :meth:`positions_of`.  Delete-dedup scans and
        tombstone checks probe every sealed segment for ids that live
        in at most one of them, so most probes resolve in the filter.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return np.zeros(0, dtype=bool)
        maybe = self.bloom.might_contain(row_ids)
        registry = get_obs().registry
        n_maybe = int(maybe.sum())
        if n_maybe < len(row_ids):
            registry.counter("bloom_negatives_total").inc(len(row_ids) - n_maybe)
        if n_maybe:
            registry.counter("bloom_hits_total").inc(n_maybe)
        mask = np.zeros(len(row_ids), dtype=bool)
        if n_maybe:
            mask[maybe] = self.positions_of(row_ids[maybe]) >= 0
        return mask

    # -- indexing ----------------------------------------------------------------

    def build_index(self, field: str, index_type: str = "IVF_FLAT", **params) -> None:
        """Build (or rebuild) the per-field vector index.

        By default Milvus indexes only large segments; the LSM manager
        decides when to call this (Sec. 2.3).
        """
        dim, metric = self.vector_specs[field]
        data = self.vectors[field]
        index = create_index(index_type, dim, metric=metric, **params)
        if index.requires_training:
            index.train(data)
        index.add(data, ids=self.row_ids)
        index.warm()
        self.indexes[field] = index

    def has_index(self, field: str) -> bool:
        return field in self.indexes

    # -- search ----------------------------------------------------------------

    def search(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        exclude: Optional[np.ndarray] = None,
        row_filter: Optional[np.ndarray] = None,
        brute_force: bool = False,
        **search_params,
    ) -> SearchResult:
        """Top-k within this segment.

        Args:
            exclude: sorted row ids to hide (delete tombstones).
            row_filter: sorted row ids that are admissible (attribute
                filtering); ``None`` admits everything.
            brute_force: bypass the index and scan exactly — strategy A
                of Sec. 4.1, chosen by the planner at high selectivity.
            search_params: forwarded to the index (``nprobe``, ``ef``...).
        """
        metric = get_metric(self.vector_specs[field][1])
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries[np.newaxis, :]

        index = None if brute_force else self.indexes.get(field)
        node = current_node()
        if node is not None:
            node.set_attr(
                "plan",
                f"index:{index.index_type}" if index is not None else "brute_force",
            )
        if index is not None:
            return self._search_with_index(
                index, queries, k, exclude, row_filter, **search_params
            )
        return self._brute_force(metric, field, queries, k, exclude, row_filter)

    def _admissible_mask(self, exclude, row_filter) -> Optional[np.ndarray]:
        mask = None
        if exclude is not None and len(exclude):
            mask = ~_sorted_isin(self.row_ids, exclude)
        if row_filter is not None:
            allow = _sorted_isin(self.row_ids, row_filter)
            mask = allow if mask is None else (mask & allow)
        return mask

    def _pairwise_scores(self, metric, field, queries, data, mask) -> np.ndarray:
        """``metric.pairwise`` with the data-side term from the cache.

        Norms/unit rows are cached for the *full* field matrix and
        sliced by ``mask`` — both are row-wise, so slicing the cached
        result is bit-identical to computing it on the sliced rows.
        """
        if metric.name == "l2":
            norms = self.kernel_cache.squared_norms(field, self.vectors[field])
            if mask is not None:
                norms = norms[mask]
            return l2_squared_pairwise(queries, data, data_sq_norms=norms)
        if metric.name == "cosine":
            unit = self.kernel_cache.unit_rows(field, self.vectors[field])
            if mask is not None:
                unit = unit[mask]
            return cosine_pairwise(queries, data, data_unit=unit)
        return metric.pairwise(queries, data)

    def _brute_force(self, metric, field, queries, k, exclude, row_filter) -> SearchResult:
        mask = self._admissible_mask(exclude, row_filter)
        data = self.vectors[field]
        ids = self.row_ids
        if mask is not None:
            data = data[mask]
            ids = ids[mask]
        result = SearchResult.empty(len(queries), k, metric)
        node = current_node()
        if node is not None:
            node.count("rows_scanned", len(data))
            node.count("distance_evals", len(queries) * len(data))
            if mask is not None:
                node.count("candidates_pruned", len(self.row_ids) - len(data))
        if len(data) == 0:
            return result
        scores = self._pairwise_scores(metric, field, queries, data, mask)
        for qi in range(len(queries)):
            top_ids, top_scores = topk_from_scores(
                scores[qi], k, metric.higher_is_better, ids=ids
            )
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        return result

    def _search_with_index(
        self, index, queries, k, exclude, row_filter, **search_params
    ) -> SearchResult:
        metric = index.metric
        n_excluded = 0 if exclude is None else len(exclude)
        # Oversearch so post-filtering tombstones still yields k rows.
        k_eff = min(k + n_excluded, index.ntotal) if n_excluded else k
        if row_filter is not None:
            # IVF indexes support pushdown; others fall back to brute force.
            try:
                raw = index.search(queries, k_eff, row_filter=row_filter, **search_params)
            except TypeError:
                return self._brute_force(metric, _field_of(self, index), queries, k, exclude, row_filter)
        else:
            raw = index.search(queries, k_eff, **search_params)
        if not n_excluded:
            if raw.k == k:
                return raw
            return SearchResult(raw.ids[:, :k], raw.scores[:, :k])
        out = SearchResult.empty(len(queries), k, metric)
        tombstoned = 0
        for qi in range(len(queries)):
            kept = 0
            for item_id, score in zip(raw.ids[qi], raw.scores[qi]):
                if item_id < 0 or kept >= k:
                    break
                if _sorted_contains(exclude, item_id):
                    tombstoned += 1
                    continue
                out.ids[qi, kept] = item_id
                out.scores[qi, kept] = score
                kept += 1
        node = current_node()
        if node is not None and tombstoned:
            node.count("candidates_pruned", tombstoned)
        return out

    # -- attribute access ---------------------------------------------------------

    def attribute_range(self, name: str, low: float, high: float) -> np.ndarray:
        """Row ids in this segment whose attribute falls in [low, high]."""
        return self.attributes[name].range_query(low, high)

    def categorical_in(self, name: str, codes) -> np.ndarray:
        """Row ids whose categorical field matches any of ``codes``."""
        return self.categoricals[name].rows_in(codes)

    # -- merge ------------------------------------------------------------------------

    @classmethod
    def merge(
        cls,
        segment_id: int,
        segments: Sequence["Segment"],
        drop_ids: Optional[np.ndarray] = None,
        version: int = 0,
    ) -> "Segment":
        """Merge segments, dropping tombstoned rows (out-of-place deletes).

        Paper Sec. 2.3: "the obsoleted vectors are removed during
        segment merge."
        """
        if not segments:
            raise ValueError("cannot merge zero segments")
        specs = segments[0].vector_specs
        all_ids = np.concatenate([s.row_ids for s in segments])
        order = np.argsort(all_ids, kind="stable")
        merged_ids = all_ids[order]
        keep = np.ones(len(merged_ids), dtype=bool)
        if drop_ids is not None and len(drop_ids):
            keep &= ~_sorted_isin(merged_ids, np.asarray(drop_ids, dtype=np.int64))
        merged_ids = merged_ids[keep]

        vectors = {}
        for field in specs:
            stacked = np.concatenate([s.vectors[field] for s in segments])
            vectors[field] = stacked[order][keep]

        attributes = {}
        attr_names = segments[0].attributes.keys()
        if drop_ids is not None and len(drop_ids):
            dropset = np.asarray(drop_ids, dtype=np.int64)
        else:
            dropset = None
        for name in attr_names:
            merged_col = merge_columns([s.attributes[name] for s in segments])
            if dropset is not None and len(merged_col):
                keep_attr = ~_sorted_isin_unsorted(merged_col.row_ids, dropset)
                merged_col = AttributeColumn.from_sorted(
                    merged_col.keys[keep_attr], merged_col.row_ids[keep_attr]
                )
            attributes[name] = merged_col

        categoricals = {}
        for name in segments[0].categoricals:
            all_codes = np.concatenate([s.categoricals[name].codes for s in segments])
            categoricals[name] = CategoricalColumn(
                all_codes[order][keep], merged_ids
            )
        return cls(
            segment_id, merged_ids, vectors, attributes, specs,
            version=version, categoricals=categoricals,
        )

    # -- serialization ---------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to one npz blob with a JSON meta entry."""
        meta = {
            "segment_id": self.segment_id,
            "version": self.version,
            "vector_specs": {k: list(v) for k, v in self.vector_specs.items()},
            "attributes": sorted(self.attributes),
            "categoricals": sorted(self.categoricals),
            "bloom": {"k": self.bloom.k, "m": self.bloom.m},
        }
        arrays = {"row_ids": self.row_ids, "bloom_bits": self.bloom.bits}
        for name, mat in self.vectors.items():
            arrays[f"vec__{name}"] = mat
        for name, col in self.attributes.items():
            arrays[f"attr_keys__{name}"] = col.keys
            arrays[f"attr_rows__{name}"] = col.row_ids
        for name, col in self.categoricals.items():
            arrays[f"cat__{name}"] = col.codes
        buf = io.BytesIO()
        np.savez_compressed(buf, meta=np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        ), **arrays)
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Segment":
        with np.load(io.BytesIO(blob)) as archive:
            meta = json.loads(bytes(archive["meta"]).decode())
            row_ids = archive["row_ids"]
            specs = {k: (int(v[0]), str(v[1])) for k, v in meta["vector_specs"].items()}
            vectors = {name: archive[f"vec__{name}"] for name in specs}
            attributes = {
                name: AttributeColumn.from_sorted(
                    archive[f"attr_keys__{name}"], archive[f"attr_rows__{name}"]
                )
                for name in meta["attributes"]
            }
            categoricals = {
                name: CategoricalColumn(archive[f"cat__{name}"], row_ids)
                for name in meta.get("categoricals", [])
            }
            bloom = None
            if "bloom" in meta and "bloom_bits" in archive:
                bloom = BloomFilter(
                    archive["bloom_bits"], meta["bloom"]["k"], meta["bloom"]["m"]
                )
        return cls(
            meta["segment_id"], row_ids, vectors, attributes, specs,
            version=meta["version"], categoricals=categoricals, bloom=bloom,
        )


def _field_of(segment: Segment, index: VectorIndex) -> str:
    for name, ix in segment.indexes.items():
        if ix is index:
            return name
    raise KeyError("index not attached to segment")


def _sorted_isin(values: np.ndarray, sorted_ref: np.ndarray) -> np.ndarray:
    """Membership of sorted ``values`` in sorted ``sorted_ref``."""
    if len(sorted_ref) == 0 or len(values) == 0:
        return np.zeros(len(values), dtype=bool)
    pos = np.searchsorted(sorted_ref, values)
    pos = np.minimum(pos, len(sorted_ref) - 1)
    return sorted_ref[pos] == values


def _sorted_isin_unsorted(values: np.ndarray, sorted_ref: np.ndarray) -> np.ndarray:
    """Membership of arbitrary-order ``values`` in sorted ``sorted_ref``."""
    return _sorted_isin(values, sorted_ref)


def _sorted_contains(sorted_arr: np.ndarray, value: int) -> bool:
    pos = int(np.searchsorted(sorted_arr, value))
    return pos < len(sorted_arr) and sorted_arr[pos] == value
