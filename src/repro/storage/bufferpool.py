"""Segment-granular LRU buffer manager (paper Sec. 2.4).

"Milvus assumes that most (if not all) data and index are resident in
memory for high performance.  If not, it relies on an LRU-based
buffer manager.  In particular, the caching unit is a segment."

Thread-safety: concurrent searches and the write path share the pool,
so every mutation of the cache/pin state happens under ``self._lock``
(enforced by reprolint's lock-discipline rule via ``_GUARDED_BY``).
``*_locked`` helpers run with the lock already held by the caller.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from repro.obs import get_obs
from repro.obs.profile import profile_count
from repro.storage.segment import Segment
from repro.utils import ensure_positive
from repro.utils.sanitizer import assert_guarded, maybe_sanitize


class BufferPool:
    """LRU cache of segments with pin counting.

    ``loader(segment_id) -> Segment`` is invoked on a miss; pinned
    segments are never evicted (a search holds a pin while scanning).
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_cache": "_lock",
        "_pins": "_lock",
        "_bytes": "_lock",
        "_dead_pending": "_lock",
        "hits": "_lock",
        "misses": "_lock",
        "evictions": "_lock",
    }

    def __init__(
        self,
        capacity_bytes: int,
        loader: Callable[[int], Segment],
    ):
        self.capacity_bytes = ensure_positive(capacity_bytes, "capacity_bytes")
        self._loader = loader
        self._lock = maybe_sanitize(threading.Lock(), "bufferpool")
        self._cache: "OrderedDict[int, Segment]" = OrderedDict()
        self._pins: Dict[int, int] = {}
        self._dead_pending: set = set()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- core ops ----------------------------------------------------------

    def get(self, segment_id: int, pin: bool = False) -> Segment:
        """Fetch a segment, loading it on a miss (possibly evicting).

        Misses load *outside* the pool lock: the loader reads segment
        files and may build indexes, and serializing that behind the
        lock would stall every other thread's cache hits (and nest
        fs / index-spec locks under ``bufferpool``, inverting the
        documented hierarchy).  Two threads missing on the same
        segment may both load it; the second re-check under the lock
        keeps exactly one copy and discards the duplicate — segment
        loads are idempotent reads, so this is the classic
        double-checked cache-fill pattern.
        """
        with self._lock:
            hit = segment_id in self._cache
            if hit:
                self.hits += 1
                self._cache.move_to_end(segment_id)
                segment = self._cache[segment_id]
                if pin:
                    self._pins[segment_id] = self._pins.get(segment_id, 0) + 1
                resident = self._bytes
            else:
                self.misses += 1
        if not hit:
            loaded = self._loader(segment_id)
            with self._lock:
                if segment_id in self._cache:
                    # another thread won the race; keep its copy
                    self._cache.move_to_end(segment_id)
                    segment = self._cache[segment_id]
                else:
                    segment = loaded
                    self._insert_locked(segment_id, segment)
                if pin:
                    self._pins[segment_id] = self._pins.get(segment_id, 0) + 1
                resident = self._bytes
        registry = get_obs().registry
        if hit:
            registry.counter("bufferpool_hits_total").inc()
            profile_count("cache_hits")
        else:
            registry.counter("bufferpool_misses_total").inc()
            profile_count("cache_misses")
        registry.gauge("bufferpool_resident_bytes").set(resident)
        return segment

    def put(self, segment: Segment, pin: bool = False) -> None:
        """Install a freshly created segment (e.g. right after flush)."""
        with self._lock:
            if segment.segment_id in self._cache:
                self._bytes -= self._cache[segment.segment_id].memory_bytes()
                self._cache[segment.segment_id] = segment
                self._bytes += segment.memory_bytes()
                self._cache.move_to_end(segment.segment_id)
            else:
                self._insert_locked(segment.segment_id, segment)
            if pin:
                self._pins[segment.segment_id] = self._pins.get(segment.segment_id, 0) + 1

    def unpin(self, segment_id: int) -> None:
        with self._lock:
            count = self._pins.get(segment_id, 0)
            if count <= 0:
                raise RuntimeError(f"segment {segment_id} is not pinned")
            if count == 1:
                del self._pins[segment_id]
                if segment_id in self._dead_pending:
                    # a deferred invalidation was waiting on this pin
                    self._dead_pending.discard(segment_id)
                    segment = self._cache.pop(segment_id, None)
                    if segment is not None:
                        self._bytes -= segment.memory_bytes()
            else:
                self._pins[segment_id] = count - 1

    def peek(self, segment_id: int) -> Optional[Segment]:
        """Resident segment or None — never loads, never touches LRU.

        Compaction planning uses this to decide whether tombstone-purge
        work would cause I/O, without perturbing hit/miss counters.
        """
        with self._lock:
            return self._cache.get(segment_id)

    def invalidate(self, segment_id: int, defer: bool = False) -> None:
        """Drop a dead segment (after GC).

        Pinned segments raise by default; with ``defer=True`` the drop
        is queued and happens at the final ``unpin`` instead — the
        background GC path uses this so a compaction finishing while a
        reader still scans the merged-away segment never throws.
        """
        with self._lock:
            if self._pins.get(segment_id, 0) > 0:
                if defer:
                    self._dead_pending.add(segment_id)
                    return
                raise RuntimeError(f"cannot invalidate pinned segment {segment_id}")
            self._dead_pending.discard(segment_id)
            segment = self._cache.pop(segment_id, None)
            if segment is not None:
                self._bytes -= segment.memory_bytes()

    # -- internals (caller holds the lock) ---------------------------------

    def _insert_locked(self, segment_id: int, segment: Segment) -> None:
        assert_guarded(self._lock, "BufferPool", "_cache")
        needed = segment.memory_bytes()
        self._evict_until_locked(needed)
        self._cache[segment_id] = segment
        self._bytes += needed

    def _evict_until_locked(self, incoming_bytes: int) -> None:
        """Evict LRU unpinned segments until the incoming one fits.

        If everything remaining is pinned, the pool is allowed to
        overflow — correctness over strict capacity, like a real
        buffer manager under pin pressure.
        """
        assert_guarded(self._lock, "BufferPool", "_cache")
        while self._bytes + incoming_bytes > self.capacity_bytes and self._cache:
            victim = None
            for seg_id in self._cache:  # OrderedDict: LRU first
                if self._pins.get(seg_id, 0) == 0:
                    victim = seg_id
                    break
            if victim is None:
                break
            segment = self._cache.pop(victim)
            self._bytes -= segment.memory_bytes()
            self.evictions += 1
            # "obs" is a leaf lock role: safe under the pool lock.
            get_obs().registry.counter("bufferpool_evictions_total").inc()

    # -- introspection -----------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    @property
    def resident_segments(self) -> int:
        return len(self._cache)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, segment_id: int) -> bool:
        return segment_id in self._cache
