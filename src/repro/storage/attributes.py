"""Attribute column storage (paper Sec. 2.4).

"Each attribute column is stored as an array of (key, value) pairs
where the key is the attribute value and value is the row ID, sorted
by the key.  Besides that, we build skip pointers (i.e., min/max
values) following Snowflake as indexing for the data pages on disk.
This allows efficient point query and range query in that column."
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils import ensure_positive

DEFAULT_PAGE_ROWS = 1024


class AttributeColumn:
    """Sorted (key, row-id) pairs with per-page min/max skip pointers.

    Immutable once constructed — attribute columns live inside sealed
    segments.
    """

    def __init__(
        self,
        values: np.ndarray,
        row_ids: np.ndarray,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ):
        values = np.asarray(values, dtype=np.float64)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if values.ndim != 1 or values.shape != row_ids.shape:
            raise ValueError("values and row_ids must be equal-length 1-D arrays")
        self.page_rows = ensure_positive(page_rows, "page_rows")
        order = np.argsort(values, kind="stable")
        self.keys = values[order]
        self.row_ids = row_ids[order]
        self._build_skip_pointers()

    def _build_skip_pointers(self) -> None:
        n = len(self.keys)
        n_pages = max(1, (n + self.page_rows - 1) // self.page_rows)
        mins = np.empty(n_pages, dtype=np.float64)
        maxs = np.empty(n_pages, dtype=np.float64)
        for page in range(n_pages):
            start = page * self.page_rows
            stop = min(start + self.page_rows, n)
            if start >= n:
                mins[page] = np.inf
                maxs[page] = -np.inf
            else:
                mins[page] = self.keys[start]
                maxs[page] = self.keys[stop - 1]
        self.page_mins = mins
        self.page_maxs = maxs

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def min_value(self) -> float:
        return float(self.keys[0]) if len(self.keys) else np.inf

    @property
    def max_value(self) -> float:
        return float(self.keys[-1]) if len(self.keys) else -np.inf

    # -- queries ---------------------------------------------------------

    def range_query(self, low: float, high: float) -> np.ndarray:
        """Row ids with ``low <= value <= high`` via binary search."""
        if high < low or len(self.keys) == 0:
            return np.empty(0, dtype=np.int64)
        lo = int(np.searchsorted(self.keys, low, side="left"))
        hi = int(np.searchsorted(self.keys, high, side="right"))
        return self.row_ids[lo:hi].copy()

    def point_query(self, value: float) -> np.ndarray:
        """Row ids whose attribute equals ``value`` exactly."""
        return self.range_query(value, value)

    def count_in_range(self, low: float, high: float) -> int:
        """Cardinality of :meth:`range_query` without materializing ids."""
        if high < low or len(self.keys) == 0:
            return 0
        lo = int(np.searchsorted(self.keys, low, side="left"))
        hi = int(np.searchsorted(self.keys, high, side="right"))
        return hi - lo

    def pages_overlapping(self, low: float, high: float) -> np.ndarray:
        """Page indexes whose [min, max] overlaps [low, high].

        This is the skip-pointer pruning path used when the column is
        paged out to disk: only overlapping pages need to be fetched.
        """
        mask = (self.page_maxs >= low) & (self.page_mins <= high)
        return np.flatnonzero(mask)

    def selectivity(self, low: float, high: float) -> float:
        """Fraction of rows *passing* the range predicate."""
        if len(self.keys) == 0:
            return 0.0
        return self.count_in_range(low, high) / len(self.keys)

    # -- (de)serialization --------------------------------------------------

    def to_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return self.keys, self.row_ids

    def memory_bytes(self) -> int:
        return (
            self.keys.nbytes
            + self.row_ids.nbytes
            + self.page_mins.nbytes
            + self.page_maxs.nbytes
        )

    @classmethod
    def from_sorted(
        cls,
        keys: np.ndarray,
        row_ids: np.ndarray,
        page_rows: int = DEFAULT_PAGE_ROWS,
    ) -> "AttributeColumn":
        """Rebuild from already-sorted arrays (deserialization path)."""
        col = cls.__new__(cls)
        col.page_rows = ensure_positive(page_rows, "page_rows")
        col.keys = np.asarray(keys, dtype=np.float64)
        col.row_ids = np.asarray(row_ids, dtype=np.int64)
        col._build_skip_pointers()
        return col


def merge_columns(columns, page_rows: int = DEFAULT_PAGE_ROWS) -> AttributeColumn:
    """k-way merge of sorted attribute columns (used by segment merge)."""
    columns = [c for c in columns if len(c)]
    if not columns:
        return AttributeColumn(np.empty(0), np.empty(0, dtype=np.int64), page_rows)
    keys = np.concatenate([c.keys for c in columns])
    row_ids = np.concatenate([c.row_ids for c in columns])
    order = np.argsort(keys, kind="stable")
    return AttributeColumn.from_sorted(keys[order], row_ids[order], page_rows)
