"""Per-segment bloom filters for row-id membership.

Sealed segments answer "is row id X here?" constantly — tombstone
masking, delete-dedup scans at compaction, point fetches — and most of
those probes miss (a row lives in exactly one segment).  A bloom
filter over the segment's sorted ``row_ids`` turns the common miss
into an O(k) bit probe with **no false negatives**: a negative answer
is definitive, a positive answer ("maybe") falls through to the exact
``searchsorted`` check.

The filter is a flat ``uint64`` bit array with classic double hashing
(`g_i(x) = h1(x) + i*h2(x) mod m`, Kirsch–Mitzenmacher), both halves
derived from one splitmix64 pass over the id.  Everything is
vectorized over numpy arrays so batch probes cost a few fused ops.

Filters serialize with their segment (``bloom_bits`` array + ``k``/
``m`` meta in the npz blob, see :mod:`repro.storage.segment`) so a
reload gets membership pruning without rebuilding anything.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["BloomFilter", "DEFAULT_BITS_PER_KEY"]

#: ~1% false-positive rate at the matching k below.
DEFAULT_BITS_PER_KEY = 10

_U64 = np.uint64
_MASK64 = _U64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer: one well-mixed 64-bit hash per id."""
    z = (x + _U64(0x9E3779B97F4A7C15)) & _MASK64
    z = ((z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)) & _MASK64
    z = ((z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)) & _MASK64
    return z ^ (z >> _U64(31))


class BloomFilter:
    """Immutable bloom filter over a fixed set of int64 row ids."""

    def __init__(self, bits: np.ndarray, k: int, m: int):
        self.bits = np.ascontiguousarray(bits, dtype=np.uint64)
        self.k = int(k)
        self.m = int(m)
        if self.m != len(self.bits) * 64:
            raise ValueError(
                f"bit-array length {len(self.bits)} words != m={self.m} bits"
            )

    @classmethod
    def build(
        cls, row_ids: np.ndarray, bits_per_key: int = DEFAULT_BITS_PER_KEY
    ) -> "BloomFilter":
        """Build a filter sized for ``row_ids`` (m rounded up to 64 bits)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        n = max(len(row_ids), 1)
        m = ((n * bits_per_key + 63) // 64) * 64
        # k = ln(2) * bits-per-key minimizes the false-positive rate.
        k = max(1, int(round(0.6931 * bits_per_key)))
        bits = np.zeros(m // 64, dtype=np.uint64)
        if len(row_ids):
            word, bit = cls._positions(row_ids, k, m)
            np.bitwise_or.at(bits, word.ravel(), _U64(1) << bit.ravel())
        return cls(bits, k, m)

    @staticmethod
    def _positions(row_ids: np.ndarray, k: int, m: int):
        """(word index, bit offset) arrays of shape (len(ids), k)."""
        h = _splitmix64(row_ids.astype(np.uint64))
        h1 = h & _U64(0xFFFFFFFF)
        h2 = (h >> _U64(32)) | _U64(1)  # odd => full-period stepping
        i = np.arange(k, dtype=np.uint64)
        idx = (h1[:, None] + i[None, :] * h2[:, None]) % _U64(m)
        return (idx >> _U64(6)).astype(np.int64), idx & _U64(63)

    def might_contain(self, row_ids: np.ndarray) -> np.ndarray:
        """Boolean mask: False is definitive absence, True means "check".

        Vectorized: one hash pass and ``k`` gathers for the whole batch.
        """
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return np.zeros(0, dtype=bool)
        word, bit = self._positions(row_ids, self.k, self.m)
        probed = (self.bits[word] >> bit) & _U64(1)
        return probed.all(axis=1)

    def memory_bytes(self) -> int:
        return int(self.bits.nbytes)

    def __contains__(self, row_id: int) -> bool:
        return bool(self.might_contain(np.array([row_id], dtype=np.int64))[0])


def maybe_restore(
    bits: Optional[np.ndarray], k: Optional[int], m: Optional[int]
) -> Optional[BloomFilter]:
    """Rebuild a filter from serialized pieces; None when absent."""
    if bits is None or k is None or m is None:
        return None
    return BloomFilter(bits, int(k), int(m))
