"""Categorical attribute indexes: inverted lists and bitmaps.

Paper Sec. 2.1: "In the current version of Milvus, we only support
numerical attributes ... in the future, we plan to support categorical
attributes with indexes like inverted lists or bitmaps."  This module
implements that future work.

Categorical values are stored as int64 *codes* (the collection keeps
the string dictionary).  Two interchangeable index structures:

* :class:`InvertedIndex` — code -> sorted row-id array; best for high
  cardinality.
* :class:`BitmapIndex` — code -> packed bitset over segment positions;
  best for low cardinality, supports bitwise AND/OR composition.

:func:`choose_index` applies the classic cardinality heuristic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.utils import ensure_positive


class CategoricalColumn:
    """Per-segment categorical storage: codes in row order + an index."""

    def __init__(
        self,
        codes: np.ndarray,
        row_ids: np.ndarray,
        index_kind: str = "auto",
    ):
        self.codes = np.asarray(codes, dtype=np.int64)
        self.row_ids = np.asarray(row_ids, dtype=np.int64)
        if self.codes.shape != self.row_ids.shape or self.codes.ndim != 1:
            raise ValueError("codes and row_ids must be matching 1-D arrays")
        self.index = choose_index(self.codes, self.row_ids, index_kind)

    def __len__(self) -> int:
        return len(self.codes)

    def rows_equal(self, code: int) -> np.ndarray:
        return self.index.rows_equal(int(code))

    def rows_in(self, codes: Iterable[int]) -> np.ndarray:
        return self.index.rows_in([int(c) for c in codes])

    def values_for(self, row_ids: np.ndarray) -> np.ndarray:
        """Codes for specific rows (rows must exist in this column)."""
        order = np.argsort(self.row_ids)
        sorted_rows = self.row_ids[order]
        pos = np.searchsorted(sorted_rows, row_ids)
        pos = np.minimum(pos, len(sorted_rows) - 1)
        if len(sorted_rows) == 0 or not (sorted_rows[pos] == row_ids).all():
            raise KeyError("row id not present in categorical column")
        return self.codes[order][pos]

    def memory_bytes(self) -> int:
        return self.codes.nbytes + self.row_ids.nbytes + self.index.memory_bytes()


class InvertedIndex:
    """code -> sorted row ids."""

    kind = "inverted"

    def __init__(self, codes: np.ndarray, row_ids: np.ndarray):
        self._lists: Dict[int, np.ndarray] = {}
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        sorted_rows = row_ids[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        starts = np.concatenate([[0], boundaries])
        stops = np.concatenate([boundaries, [len(sorted_codes)]])
        for start, stop in zip(starts, stops):
            if stop > start:
                self._lists[int(sorted_codes[start])] = np.sort(
                    sorted_rows[start:stop]
                )

    def rows_equal(self, code: int) -> np.ndarray:
        return self._lists.get(code, np.empty(0, dtype=np.int64)).copy()

    def rows_in(self, codes: Sequence[int]) -> np.ndarray:
        parts = [self._lists[c] for c in set(codes) if c in self._lists]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def cardinality(self) -> int:
        return len(self._lists)

    def memory_bytes(self) -> int:
        return sum(arr.nbytes for arr in self._lists.values())


class BitmapIndex:
    """code -> packed bitset over segment positions.

    Positions map back to row ids through the stored ``row_ids``
    array; bitsets compose with numpy bitwise ops, which is the whole
    point of bitmaps for multi-value predicates.
    """

    kind = "bitmap"

    def __init__(self, codes: np.ndarray, row_ids: np.ndarray):
        self.row_ids = row_ids
        n = len(codes)
        self._nbits = n
        self._bitmaps: Dict[int, np.ndarray] = {}
        for code in np.unique(codes):
            mask = np.zeros(n, dtype=np.uint8)
            mask[codes == code] = 1
            self._bitmaps[int(code)] = np.packbits(mask)

    def _to_rows(self, packed: np.ndarray) -> np.ndarray:
        mask = np.unpackbits(packed)[: self._nbits].astype(bool)
        return np.sort(self.row_ids[mask])

    def rows_equal(self, code: int) -> np.ndarray:
        packed = self._bitmaps.get(code)
        if packed is None:
            return np.empty(0, dtype=np.int64)
        return self._to_rows(packed)

    def rows_in(self, codes: Sequence[int]) -> np.ndarray:
        combined: Optional[np.ndarray] = None
        for code in set(codes):
            packed = self._bitmaps.get(code)
            if packed is None:
                continue
            combined = packed.copy() if combined is None else (combined | packed)
        if combined is None:
            return np.empty(0, dtype=np.int64)
        return self._to_rows(combined)

    def cardinality(self) -> int:
        return len(self._bitmaps)

    def memory_bytes(self) -> int:
        return self.row_ids.nbytes + sum(b.nbytes for b in self._bitmaps.values())


#: cardinality at or below which bitmaps win (bitset bytes < id lists).
BITMAP_CARDINALITY_LIMIT = 64


def choose_index(codes: np.ndarray, row_ids: np.ndarray, kind: str = "auto"):
    """Pick the index structure (or honor an explicit choice)."""
    if kind == "inverted":
        return InvertedIndex(codes, row_ids)
    if kind == "bitmap":
        return BitmapIndex(codes, row_ids)
    if kind != "auto":
        raise ValueError(f"unknown categorical index kind {kind!r}")
    cardinality = len(np.unique(codes)) if len(codes) else 0
    if cardinality and cardinality <= BITMAP_CARDINALITY_LIMIT:
        return BitmapIndex(codes, row_ids)
    return InvertedIndex(codes, row_ids)


class CategoryDictionary:
    """Collection-level string <-> code dictionary."""

    def __init__(self):
        self._code_of: Dict[str, int] = {}
        self._value_of: List[str] = []

    def encode(self, values: Iterable) -> np.ndarray:
        out: List[int] = []
        for value in values:
            key = str(value)
            code = self._code_of.get(key)
            if code is None:
                code = len(self._value_of)
                self._code_of[key] = code
                self._value_of.append(key)
            out.append(code)
        return np.array(out, dtype=np.int64)

    def encode_existing(self, values: Iterable) -> np.ndarray:
        """Encode without creating new codes; unknown values -> -1."""
        return np.array(
            [self._code_of.get(str(v), -1) for v in values], dtype=np.int64
        )

    def decode(self, codes: Iterable[int]) -> List[str]:
        return [self._value_of[int(c)] for c in codes]

    def __len__(self) -> int:
        return len(self._value_of)

    def __contains__(self, value) -> bool:
        return str(value) in self._code_of
