"""LSM manager: the write path of the storage engine (paper Sec. 2.3).

Ties together the WAL, MemTable, segments, tiered merging, the
manifest (snapshot isolation), and the bufferpool:

* inserts/deletes land in the WAL, then the MemTable / tombstone set;
* the MemTable seals into an immutable segment on size threshold or
  explicit flush (the paper also seals once per second; callers drive
  that clock via :meth:`tick`);
* a tiered policy merges small segments, physically dropping deleted
  rows ("the obsoleted vectors are removed during segment merge");
* segments above a row threshold get vector indexes built
  ("by default, Milvus builds indexes only for large segments");
* every search runs against an acquired snapshot.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec import QueryExecutor
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.obs import get_obs
from repro.obs.profile import profile_count, profile_stage
from repro.storage.bufferpool import BufferPool
from repro.storage.filesystem import FileSystem, InMemoryObjectStore
from repro.storage.manifest import Manifest, Snapshot
from repro.storage.memtable import MemTable
from repro.storage.merge import TieredMergePolicy
from repro.storage.segment import Segment, VectorSpecs
from repro.storage.wal import WriteAheadLog
from repro.utils import merge_topk_batch
from repro.utils.sanitizer import assert_guarded, maybe_sanitize


@dataclass
class LSMConfig:
    """Tunables for the LSM write path."""

    memtable_flush_bytes: int = 8 << 20
    flush_interval_seconds: float = 1.0
    index_build_min_rows: int = 4096
    index_type: str = "IVF_FLAT"
    index_params: Dict[str, object] = field(default_factory=dict)
    auto_merge: bool = True
    merge_policy: TieredMergePolicy = field(default_factory=TieredMergePolicy)
    bufferpool_bytes: int = 1 << 30
    enable_wal: bool = True
    #: build indexes on a background thread ("Milvus builds indexes
    #: asynchronously", Sec. 5.1); searches fall back to brute force on
    #: a segment until its index is attached.
    async_index_build: bool = False


class LSMManager:
    """Dynamic data management for one collection's worth of rows.

    Thread-safety: the write path (insert/delete/flush/merge) is
    serialized by the reentrant ``self._lock``; searches never take it
    — they read through manifest snapshots and the bufferpool, each of
    which has its own internal lock.  ``self._index_lock`` is a leaf
    lock for the index-spec catalog, which is also mutated from the
    manifest's GC callback (taking the main lock there would invert
    the lsm -> manifest order).  Lock order: lsm -> {manifest, wal} ->
    {bufferpool, index-specs, fs}; the fault-injection wrapper's
    bookkeeping lock ("faults") sits just above fs and is never held
    across an inner filesystem call; the observability instruments
    ("obs") are a strict leaf — any engine lock may be held while an
    instrument updates, and an instrument never acquires anything
    else.  reprolint's lock-discipline rule enforces the
    ``_GUARDED_BY`` map below.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_memtable": "_lock",
        "_pending_deletes": "_lock",
        "_next_segment_id": "_lock",
        "_last_flush_time": "_lock",
        "flush_count": "_lock",
        "merge_count": "_lock",
        "_flushed_lsn": "_lock",
        "_manifest_seq": "_lock",
        "_index_specs": "_index_lock",
    }

    def __init__(
        self,
        vector_specs: VectorSpecs,
        attribute_names: Sequence[str] = (),
        config: Optional[LSMConfig] = None,
        fs: Optional[FileSystem] = None,
        categorical_names: Sequence[str] = (),
        categorical_kinds: Optional[Dict[str, str]] = None,
    ):
        self.vector_specs = dict(vector_specs)
        self.attribute_names = tuple(attribute_names)
        self.categorical_names = tuple(categorical_names)
        self.categorical_kinds = dict(categorical_kinds or {})
        self.config = config or LSMConfig()
        self.fs = fs if fs is not None else InMemoryObjectStore()
        self.wal = WriteAheadLog(self.fs) if self.config.enable_wal else None
        self.manifest = Manifest(on_segment_dead=self._segment_dead)
        self.bufferpool = BufferPool(self.config.bufferpool_bytes, self._load_segment)
        # Reentrant: flush -> maybe_merge and insert -> flush nest.
        self._lock = maybe_sanitize(threading.RLock(), "lsm")
        self._index_lock = maybe_sanitize(threading.Lock(), "lsm-index-specs")
        self._memtable = self._new_memtable()
        self._pending_deletes: List[np.ndarray] = []
        self._next_segment_id = 0
        self._last_flush_time = 0.0
        self._flushed_lsn = -1
        self._manifest_seq = 0
        self.flush_count = 0
        self.merge_count = 0
        #: segment id -> {field: (index_type, params)} for segments
        #: whose indexes must be rebuilt after bufferpool eviction
        #: (indexes are not serialized; Milvus also rebuilds them
        #: asynchronously).
        self._index_specs: Dict[int, Dict[str, tuple]] = {}
        self._index_queue: Optional["queue.Queue"] = None
        if self.config.async_index_build:
            import queue

            self._index_queue = queue.Queue()
            worker = threading.Thread(
                target=self._index_builder_loop, name="index-builder", daemon=True
            )
            worker.start()

    def _new_memtable(self) -> MemTable:
        return MemTable(
            self.vector_specs, self.attribute_names, self.categorical_names,
            self.categorical_kinds,
        )

    # -- write path ------------------------------------------------------

    def insert(
        self,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Optional[Dict[str, np.ndarray]] = None,
        categoricals: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Log and buffer an insert batch; may trigger an auto-flush."""
        obs = get_obs()
        with obs.tracer.span("lsm.insert", rows=len(row_ids)):
            started = time.perf_counter()
            with self._lock:
                if self.wal is not None:
                    self.wal.append_insert(
                        row_ids, vectors, attributes, categoricals
                    )
                self._memtable.insert(row_ids, vectors, attributes, categoricals)
                if self._memtable.approx_bytes >= self.config.memtable_flush_bytes:
                    self.flush()
            elapsed = time.perf_counter() - started
        obs.registry.counter("lsm_insert_rows_total").inc(len(row_ids))
        obs.registry.histogram("lsm_insert_seconds").observe(elapsed)

    def delete(self, row_ids: np.ndarray) -> None:
        """Log and buffer deletes (out-of-place: tombstones only)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return
        with self._lock:
            if self.wal is not None:
                self.wal.append_delete(row_ids)
            self._pending_deletes.append(row_ids)

    def tick(self, now_seconds: float) -> bool:
        """Time-based flush driver ("once every second"); returns True on flush."""
        with self._lock:
            if (
                now_seconds - self._last_flush_time >= self.config.flush_interval_seconds
                and (len(self._memtable) or self._pending_deletes)
            ):
                self.flush(now_seconds=now_seconds)
                return True
            return False

    def flush(self, now_seconds: Optional[float] = None) -> Optional[int]:
        """Seal the MemTable into a segment and commit a new version.

        Returns the new segment id, or None when only deletes (or
        nothing) were pending.
        """
        obs = get_obs()
        with obs.tracer.span("lsm.flush"):
            started = time.perf_counter()
            segment_id = self._flush_locked(now_seconds)
            elapsed = time.perf_counter() - started
        if segment_id is not None:
            obs.registry.counter("lsm_flushes_total").inc()
            obs.registry.histogram("lsm_flush_seconds").observe(elapsed)
        return segment_id

    def _flush_locked(self, now_seconds: Optional[float] = None) -> Optional[int]:
        with self._lock:
            new_tombstones = (
                np.unique(np.concatenate(self._pending_deletes))
                if self._pending_deletes
                else None
            )
            self._pending_deletes = []
            new_segment_id: Optional[int] = None

            if len(self._memtable):
                self._memtable.seal()
                seg_id = self._next_segment_id
                self._next_segment_id += 1
                segment = self._memtable.to_segment(seg_id)
                self._persist_segment(segment)
                self.bufferpool.put(segment)
                self.manifest.commit(add=[seg_id], new_tombstones=new_tombstones)
                new_segment_id = seg_id
            elif new_tombstones is not None:
                self.manifest.commit(new_tombstones=new_tombstones)
            else:
                return None
            # Durable ordering for crash safety: record the flushed LSN
            # in the manifest *before* truncating the WAL.  A crash
            # between the two replays records <= _flushed_lsn as no-ops
            # (recover() skips them), so flush is idempotent under any
            # crash point.
            if self.wal is not None:
                self._flushed_lsn = self.wal.next_lsn - 1
            self._persist_manifest_locked()

            self._memtable = self._new_memtable()
            self.flush_count += 1
            if now_seconds is not None:
                self._last_flush_time = now_seconds
            if self.wal is not None:
                self.wal.truncate_through(self._flushed_lsn)
            if self.config.auto_merge:
                self.maybe_merge()
            self._maybe_build_indexes()
            return new_segment_id

    # -- merging -----------------------------------------------------------

    def maybe_merge(self) -> int:
        """Run all merge tasks the tiered policy proposes; returns count."""
        merged = 0
        with self._lock:
            while True:
                live = self.manifest.live_segment_ids()
                sizes = []
                for seg_id in live:
                    segment = self.bufferpool.get(seg_id)
                    sizes.append((seg_id, segment.memory_bytes()))
                tasks = self.config.merge_policy.plan(sizes)
                if not tasks:
                    return merged
                for task in tasks:
                    self._execute_merge_locked(task.segment_ids)
                    merged += 1

    def _execute_merge_locked(self, segment_ids: Tuple[int, ...]) -> int:
        assert_guarded(self._lock, "LSMManager", "_next_segment_id")
        obs = get_obs()
        with obs.tracer.span("lsm.merge", inputs=len(segment_ids)):
            started = time.perf_counter()
            merged_id = self._merge_segments_locked(segment_ids)
            elapsed = time.perf_counter() - started
        obs.registry.counter("lsm_merges_total").inc()
        obs.registry.histogram("lsm_merge_seconds").observe(elapsed)
        return merged_id

    def _merge_segments_locked(self, segment_ids: Tuple[int, ...]) -> int:
        tombstones = self.manifest.current_tombstones()
        segments = [self.bufferpool.get(s, pin=True) for s in segment_ids]
        try:
            new_id = self._next_segment_id
            self._next_segment_id += 1
            merged = Segment.merge(new_id, segments, drop_ids=tombstones)
            self._persist_segment(merged)
            self.bufferpool.put(merged)
            # Tombstones covered by the merged inputs are now physical.
            covered = np.concatenate([s.row_ids for s in segments])
            cleared = np.intersect1d(tombstones, covered)
            self.manifest.commit(
                add=[new_id], remove=list(segment_ids), clear_tombstones=cleared
            )
            self._persist_manifest_locked()
            self.merge_count += 1
            return new_id
        finally:
            for seg_id in segment_ids:
                self.bufferpool.unpin(seg_id)

    # -- index building --------------------------------------------------------

    def _build_segment_index(
        self, segment: Segment, seg_id: int, fieldname: str, itype: str,
        params: dict,
    ) -> None:
        """Build and catalog one segment index, timed and counted."""
        obs = get_obs()
        with obs.tracer.span(
            "index.build", segment=seg_id, field=fieldname, index_type=itype
        ):
            started = time.perf_counter()
            segment.build_index(fieldname, itype, **params)
            elapsed = time.perf_counter() - started
        obs.registry.counter("index_builds_total", index_type=itype).inc()
        obs.registry.histogram("index_build_seconds").observe(elapsed)
        self._record_index(seg_id, fieldname, itype, params)

    def _maybe_build_indexes(self) -> None:
        for seg_id in self.manifest.live_segment_ids():
            segment = self.bufferpool.get(seg_id)
            if segment.num_rows < self.config.index_build_min_rows:
                continue
            for fieldname in self.vector_specs:
                if segment.has_index(fieldname):
                    continue
                if self._index_queue is not None:
                    self._index_queue.put((seg_id, fieldname))
                else:
                    self._build_segment_index(
                        segment, seg_id, fieldname, self.config.index_type,
                        dict(self.config.index_params),
                    )

    def _index_builder_loop(self) -> None:
        """Background index builder: attach indexes as they complete.

        Attaching is a single dict assignment on the live segment, so
        in-flight searches either see the index or brute-force — both
        correct (Sec. 5.1's asynchronous index building).
        """
        while True:
            seg_id, fieldname = self._index_queue.get()
            try:
                if seg_id not in self.manifest.live_segment_ids():
                    continue  # segment merged away while queued
                segment = self.bufferpool.get(seg_id)
                if segment.has_index(fieldname):
                    continue
                self._build_segment_index(
                    segment, seg_id, fieldname, self.config.index_type,
                    dict(self.config.index_params),
                )
            finally:
                self._index_queue.task_done()

    def wait_for_index_builds(self) -> None:
        """Block until the async builder drains (no-op when sync)."""
        if self._index_queue is not None:
            self._index_queue.join()

    def build_index(self, field: str, index_type: Optional[str] = None, **params) -> int:
        """Manually build indexes on every live segment (any size).

        The paper: "users are allowed to manually build indexes for
        segments of any size if necessary."  Returns segments indexed.
        """
        count = 0
        itype = index_type or self.config.index_type
        # Config defaults only apply to the config's own index type —
        # nlist would be a TypeError for, say, HNSW.
        if itype == self.config.index_type:
            merged_params = dict(self.config.index_params)
            merged_params.update(params)
        else:
            merged_params = dict(params)
        for seg_id in self.manifest.live_segment_ids():
            segment = self.bufferpool.get(seg_id)
            if segment.num_rows == 0:
                continue
            self._build_segment_index(segment, seg_id, field, itype, merged_params)
            count += 1
        return count

    def _record_index(self, seg_id: int, field: str, itype: str, params: dict) -> None:
        # Leaf lock only around the catalog write: touching the
        # bufferpool/fs under _index_lock would invert the
        # bufferpool -> index-specs order taken by _load_segment.
        with self._index_lock:
            self._index_specs.setdefault(seg_id, {})[field] = (itype, dict(params))
        # Persist serializable indexes so a reload skips the rebuild.
        from repro.index import SERIALIZABLE_TYPES, index_to_bytes

        if itype.upper() in SERIALIZABLE_TYPES:
            segment = self.bufferpool.get(seg_id)
            self.fs.write(
                self._index_path(seg_id, field),
                index_to_bytes(segment.indexes[field]),
            )

    def _index_path(self, seg_id: int, field: str) -> str:
        return f"indexes/{seg_id:012d}__{field}.idx"

    # -- read path ---------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return self.manifest.acquire()

    def release(self, snapshot: Snapshot) -> None:
        self.manifest.release(snapshot)

    def search(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        snapshot: Optional[Snapshot] = None,
        row_filter: Optional[np.ndarray] = None,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        **search_params,
    ) -> SearchResult:
        """Top-k over all segments visible in ``snapshot``.

        Acquires (and releases) a fresh snapshot when none is given.
        With ``parallel`` on (or ``REPRO_PARALLEL=1``), segment scans
        fan out over the shared worker pool; results are returned in
        segment order either way, so parallel output is bit-identical
        to serial (see ``repro.exec``).
        """
        obs = get_obs()
        metric = get_metric(self.vector_specs[field][1])
        owned = snapshot is None
        snap = self.snapshot() if owned else snapshot
        try:
            queries = np.asarray(queries, dtype=np.float32)
            if queries.ndim == 1:
                queries = queries[np.newaxis, :]
            with obs.tracer.span(
                "lsm.search", field=field, nq=len(queries), k=k,
                segments=len(snap.segment_ids),
            ), profile_stage(
                "lsm.search", field=field, segments=len(snap.segment_ids),
            ) as pstage:
                started = time.perf_counter()

                def scan(seg_id: int, stage) -> SearchResult:
                    # Pin inside the task so the segment stays resident
                    # for exactly the duration of its own scan.
                    segment = self.bufferpool.get(seg_id, pin=True)
                    try:
                        with stage, obs.tracer.span(
                            "segment.search", segment=seg_id
                        ):
                            return segment.search(
                                field, queries, k,
                                exclude=snap.tombstones,
                                row_filter=row_filter,
                                **search_params,
                            )
                    finally:
                        self.bufferpool.unpin(seg_id)

                executor = QueryExecutor(parallel=parallel, pool_size=pool_size)
                # Per-segment profile stages are pre-created here, in
                # submission order, and entered inside each task: child
                # order and counter placement are then identical for
                # serial and pooled execution (see repro.obs.profile).
                partials = executor.map_ordered(
                    [
                        lambda seg_id=s, stage=pstage.stage(
                            "segment.search", segment=s
                        ): scan(seg_id, stage)
                        for s in snap.segment_ids
                    ],
                    label="segment.search",
                )
                ids, scores = merge_topk_batch(
                    [(p.ids, p.scores) for p in partials],
                    k,
                    metric.higher_is_better,
                    nq=len(queries),
                    dtype=np.float64,
                )
                result = SearchResult(ids, scores)
                elapsed = time.perf_counter() - started
            obs.registry.counter("lsm_searches_total").inc()
            obs.registry.histogram("lsm_search_seconds").observe(elapsed)
            return result
        finally:
            if owned:
                self.release(snap)

    # -- introspection ---------------------------------------------------------------

    @property
    def num_live_rows(self) -> int:
        """Rows visible to a fresh snapshot (flushed minus tombstoned)."""
        snap = self.snapshot()
        try:
            total = 0
            for seg_id in snap.segment_ids:
                # Pin like the search path: an unpinned segment can be
                # evicted (and invalidated) by a concurrent flush/merge
                # mid-read.
                segment = self.bufferpool.get(seg_id, pin=True)
                try:
                    total += segment.num_rows - int(
                        segment.contains_mask(snap.tombstones).sum()
                    )
                finally:
                    self.bufferpool.unpin(seg_id)
            return total
        finally:
            self.release(snap)

    @property
    def unflushed_rows(self) -> int:
        return len(self._memtable)

    def live_segments(self) -> List[Segment]:
        return [self.bufferpool.get(s) for s in self.manifest.live_segment_ids()]

    def stats(self) -> Dict[str, object]:
        """Operational snapshot for monitoring."""
        segments = self.live_segments()
        return {
            "live_segments": len(segments),
            "live_rows": self.num_live_rows,
            "unflushed_rows": self.unflushed_rows,
            "tombstones": int(len(self.manifest.current_tombstones())),
            "flush_count": self.flush_count,
            "merge_count": self.merge_count,
            "manifest_version": self.manifest.current_version,
            "indexed_segments": sum(
                1 for s in segments if any(s.has_index(f) for f in self.vector_specs)
            ),
            "bufferpool": {
                "resident_bytes": self.bufferpool.resident_bytes,
                "resident_segments": self.bufferpool.resident_segments,
                "hit_rate": self.bufferpool.hit_rate(),
                "evictions": self.bufferpool.evictions,
            },
            "gc_count": self.manifest.gc_count,
        }

    # -- persistence helpers -----------------------------------------------------------

    def _segment_path(self, segment_id: int) -> str:
        return f"segments/{segment_id:012d}.seg"

    def _persist_segment(self, segment: Segment) -> None:
        self.fs.write(self._segment_path(segment.segment_id), segment.to_bytes())

    def _load_segment(self, segment_id: int) -> Segment:
        from repro.index import index_from_bytes

        blob = self.fs.read(self._segment_path(segment_id))
        profile_count("bytes_read", len(blob))
        segment = Segment.from_bytes(blob)
        # Restore this segment's indexes: load the persisted blob when
        # one exists (quantization indexes serialize), else rebuild
        # (graph/tree indexes reconstruct, as Milvus does).
        with self._index_lock:
            specs = dict(self._index_specs.get(segment_id, {}))
        for field, (itype, params) in specs.items():
            path = self._index_path(segment_id, field)
            if self.fs.exists(path):
                index_blob = self.fs.read(path)
                profile_count("bytes_read", len(index_blob))
                segment.indexes[field] = index_from_bytes(index_blob)
            else:
                segment.build_index(field, itype, **params)
        return segment

    def _segment_dead(self, segment_id: int) -> None:
        try:
            self.bufferpool.invalidate(segment_id)
        except RuntimeError:
            # Pinned by an in-flight search; the file is still deleted
            # and the cache entry ages out naturally.
            pass
        self.fs.delete(self._segment_path(segment_id))
        with self._index_lock:
            dead_fields = list(self._index_specs.pop(segment_id, {}))
        for field in dead_fields:
            self.fs.delete(self._index_path(segment_id, field))

    def _manifest_file(self, seq: int) -> str:
        return f"manifest/{seq:012d}.mf"

    def _manifest_versions(self) -> List[Tuple[int, str]]:
        """(seq, path) for every persisted manifest version, ascending."""
        versions = []
        for path in self.fs.listdir("manifest/"):
            try:
                seq = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            versions.append((seq, path))
        versions.sort()
        return versions

    def _persist_manifest_locked(self) -> None:
        """Write the durable catalog as a new checksummed version.

        Versions are append-only: the new file lands (checksummed)
        before any older version is deleted, so a crash — even one
        that tears this very write — always leaves a valid manifest to
        recover from.
        """
        assert_guarded(self._lock, "LSMManager", "_manifest_seq")
        self._manifest_seq += 1
        state = {
            "live_segments": list(self.manifest.live_segment_ids()),
            "tombstones": self.manifest.current_tombstones().tolist(),
            "next_segment_id": self._next_segment_id,
            "flushed_lsn": self._flushed_lsn,
            "seq": self._manifest_seq,
        }
        payload = json.dumps(state, sort_keys=True)
        blob = json.dumps(
            {"crc": zlib.crc32(payload.encode()), "state": state}, sort_keys=True
        ).encode()
        self.fs.write(self._manifest_file(self._manifest_seq), blob)
        for seq, path in self._manifest_versions():
            if seq < self._manifest_seq:
                self.fs.delete(path)

    def _load_manifest_state_locked(self) -> Optional[dict]:
        """Newest intact manifest state, dropping any torn/corrupt tail.

        Scans versions newest-first; a version whose JSON or CRC is
        broken (a write torn by a crash) is deleted and the previous
        version wins.  Falls back to the legacy un-checksummed
        ``MANIFEST`` object for pre-versioning filesystems.
        """
        versions = self._manifest_versions()
        if versions:
            # Never reuse a seq that has a (possibly torn) file on disk.
            self._manifest_seq = max(seq for seq, __ in versions)
        for seq, path in reversed(versions):
            try:
                doc = json.loads(self.fs.read(path).decode())
                state = doc["state"]
                payload = json.dumps(state, sort_keys=True)
                if zlib.crc32(payload.encode()) != doc["crc"]:
                    raise ValueError("manifest checksum mismatch")
            except (ValueError, KeyError, UnicodeDecodeError):
                # Torn by a crash mid-write: unacknowledged, discard.
                self.fs.delete(path)
                continue
            return state
        if self.fs.exists("MANIFEST"):
            return json.loads(self.fs.read("MANIFEST").decode())
        return None

    def recover(self) -> int:
        """Rebuild state from the filesystem after a crash.

        Re-registers persisted segments and tombstones from the newest
        intact manifest version, garbage-collects orphan segment/index
        files left by a crash mid-flush or mid-merge, re-runs the
        interrupted WAL checkpoint, and replays the WAL tail (records
        past the durable ``flushed_lsn``) into the MemTable.  Returns
        the number of WAL records replayed.  Idempotent: crashing
        during recovery and recovering again reaches the same state.
        Only meaningful on a freshly constructed manager pointed at an
        existing filesystem.
        """
        with self._lock:
            if self.manifest.current_version != 0 or len(self._memtable):
                raise RuntimeError("recover() must run on a freshly constructed manager")
            state = self._load_manifest_state_locked()
            if state is not None:
                self._next_segment_id = state["next_segment_id"]
                self._flushed_lsn = state.get("flushed_lsn", -1)
                tombs = np.array(state["tombstones"], dtype=np.int64)
                self.manifest.commit(
                    add=state["live_segments"],
                    new_tombstones=tombs if len(tombs) else None,
                )
            self._gc_orphans_locked()
            if self.wal is None:
                return 0
            # Finish the checkpoint a crash may have interrupted, then
            # replay only records the manifest does not already cover.
            self.wal.truncate_through(self._flushed_lsn)
            replayed = 0
            for record in self.wal.replay(from_lsn=self._flushed_lsn + 1):
                if record.kind == "insert":
                    self._memtable.insert(
                        record.row_ids, record.vectors, record.attributes,
                        record.categoricals,
                    )
                elif record.kind == "delete":
                    self._pending_deletes.append(
                        np.asarray(record.row_ids, dtype=np.int64)
                    )
                replayed += 1
            return replayed

    def _gc_orphans_locked(self) -> None:
        """Delete segment/index files not referenced by the manifest.

        A crash between persisting a segment and committing the
        manifest (flush or merge) leaves the file orphaned; its rows
        are still covered by the WAL / the merge inputs, so the file
        is garbage, and its id will be reused.
        """
        live = set(self.manifest.live_segment_ids())
        for path in self.fs.listdir("segments/"):
            try:
                seg_id = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            if seg_id not in live:
                self.fs.delete(path)
        for path in self.fs.listdir("indexes/"):
            try:
                seg_id = int(path.rsplit("/", 1)[-1].split("__")[0])
            except ValueError:
                continue
            if seg_id not in live:
                self.fs.delete(path)
