"""LSM manager: the write path of the storage engine (paper Sec. 2.3).

Ties together the WAL, MemTable, segments, tiered merging, the
manifest (snapshot isolation), and the bufferpool:

* inserts/deletes land in the WAL, then the MemTable / tombstone set —
  and nothing else happens under the writer lock;
* on the size/time threshold the active MemTable is *frozen*: sealed,
  pushed onto an immutable queue, and made reader-visible through the
  manifest, all O(1) under the writer lock ("the MemTable becomes
  immutable and then gets flushed");
* a flusher drains frozen memtables into sealed segments and runs
  tiered compaction — on a dedicated background thread when the
  engine runs in background mode (``REPRO_BG_FLUSH=1`` or
  ``LSMConfig.background=True``), or synchronously right after the
  freeze (still outside the writer lock) in inline mode;
* compaction physically drops deleted rows ("the obsoleted vectors
  are removed during segment merge") and additionally rewrites any
  single resident segment whose tombstoned fraction exceeds
  ``tombstone_purge_ratio`` (true reclamation for delete/upsert);
* segments above a row threshold get vector indexes built;
* every search runs against an acquired snapshot, which pins sealed
  segments *and* frozen memtables (MVCC over both).

Locking
-------
Three locks with strictly separated jobs:

* ``_lock`` (role ``lsm``, reentrant) — the writer lock.  Guards the
  active memtable, pending deletes, and the freeze counter.  Never
  held across filesystem I/O; the longest critical section is a
  memtable append or an O(1) freeze.
* ``_bg_lock`` (role ``lsm-bg``) — the maintenance lock.  Serializes
  flush processing, compaction, manifest persistence, and recovery.
  Filesystem I/O is *expected* under it (it is in reprolint's
  ``allow-blocking`` set); writers never take it.
* ``_frozen_lock`` (role ``lsm-frozen``, leaf) — guards the frozen-
  memtable registry and its lazily built read views.

Lock order: ``lsm -> lsm-bg -> {manifest, wal} -> {bufferpool} ->
{lsm-index-specs, fs, lsm-frozen} -> obs``.  Background crash safety:
a :class:`SimulatedCrash` (or any error) inside background work is
recorded and re-raised from the next write-path call, modelling the
process death the chaos harness expects; queued work drains inertly
so barriers never hang.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exec import QueryExecutor
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.obs import get_obs
from repro.obs import events as obs_events
from repro.obs.profile import profile_count, profile_stage
from repro.storage.bufferpool import BufferPool
from repro.storage.faults import SimulatedCrash
from repro.storage.filesystem import FileSystem, InMemoryObjectStore
from repro.storage.manifest import Manifest, Snapshot
from repro.storage.memtable import MemTable
from repro.storage.merge import TieredMergePolicy
from repro.storage.segment import Segment, VectorSpecs
from repro.storage.wal import WriteAheadLog
from repro.utils import merge_topk_batch
from repro.utils.sanitizer import assert_guarded, maybe_sanitize


def _env_background_default() -> bool:
    return os.environ.get("REPRO_BG_FLUSH", "0").lower() not in ("", "0", "false")


@dataclass
class LSMConfig:
    """Tunables for the LSM write path."""

    memtable_flush_bytes: int = 8 << 20
    flush_interval_seconds: float = 1.0
    index_build_min_rows: int = 4096
    index_type: str = "IVF_FLAT"
    index_params: Dict[str, object] = field(default_factory=dict)
    auto_merge: bool = True
    merge_policy: TieredMergePolicy = field(default_factory=TieredMergePolicy)
    bufferpool_bytes: int = 1 << 30
    enable_wal: bool = True
    #: build indexes on a background thread ("Milvus builds indexes
    #: asynchronously", Sec. 5.1); searches fall back to brute force on
    #: a segment until its index is attached.
    async_index_build: bool = False
    #: run flush/compaction on a background thread; None resolves from
    #: the REPRO_BG_FLUSH environment variable at construction.
    background: Optional[bool] = None
    #: rewrite a resident segment once this fraction of its rows is
    #: tombstoned (0 disables the purge pass).
    tombstone_purge_ratio: float = 0.25


@dataclass
class FrozenMemtable:
    """One sealed memtable awaiting background flush.

    Reader-visible from the moment of the freeze (via manifest
    ``frozen_ids``) until the flush commit swaps it for its segment.
    ``tombstones`` are the deletes pending at freeze time: visible to
    reads immediately, made durable-in-manifest by the flush commit.
    """

    fid: int
    memtable: MemTable
    tombstones: Optional[np.ndarray]
    wal_upto: int       #: highest LSN this freeze covers (-1 = no WAL)
    rows: int
    done: bool = False  #: set once the flush commit lands
    wal_from: int = -1  #: highest LSN of the *previous* freeze: this
                        #: entry owns WAL records (wal_from, wal_upto]
    queued: bool = True  #: currently on the work queue (False after a
                         #: failed attempt, until a barrier re-queues it)
    seg_id: Optional[int] = None  #: allocated once; a retried flush
                                  #: rewrites the same path (no orphans)
    committed: bool = False  #: in-memory manifest commit landed — a
                             #: retry must not apply it a second time


class LSMManager:
    """Dynamic data management for one collection's worth of rows.

    See the module docstring for the threading model.  reprolint's
    lock-discipline rule enforces the ``_GUARDED_BY`` map below.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_memtable": "_lock",
        "_pending_deletes": "_lock",
        "_next_frozen_id": "_lock",
        "_last_flush_time": "_lock",
        "_bg_crash": "_lock",
        "_bg_error": "_lock",
        "_next_segment_id": "_bg_lock",
        "_flushed_lsn": "_bg_lock",
        "_manifest_seq": "_bg_lock",
        "_planner_state": "_bg_lock",
        "flush_count": "_bg_lock",
        "merge_count": "_bg_lock",
        "purge_count": "_bg_lock",
        "_frozen": "_frozen_lock",
        "_frozen_views": "_frozen_lock",
        "_frozen_wal_high": "_frozen_lock",
        "_flush_results": "_frozen_lock",
        "_awaited": "_frozen_lock",
        "_index_specs": "_index_lock",
    }

    _SHUTDOWN = object()

    def __init__(
        self,
        vector_specs: VectorSpecs,
        attribute_names: Sequence[str] = (),
        config: Optional[LSMConfig] = None,
        fs: Optional[FileSystem] = None,
        categorical_names: Sequence[str] = (),
        categorical_kinds: Optional[Dict[str, str]] = None,
    ):
        self.vector_specs = dict(vector_specs)
        self.attribute_names = tuple(attribute_names)
        self.categorical_names = tuple(categorical_names)
        self.categorical_kinds = dict(categorical_kinds or {})
        self.config = config or LSMConfig()
        self.background = (
            _env_background_default()
            if self.config.background is None
            else bool(self.config.background)
        )
        self.fs = fs if fs is not None else InMemoryObjectStore()
        self.wal = WriteAheadLog(self.fs) if self.config.enable_wal else None
        self.manifest = Manifest(
            on_segment_dead=self._segment_dead,
            on_frozen_dead=self._frozen_dead,
        )
        self.bufferpool = BufferPool(self.config.bufferpool_bytes, self._load_segment)
        # Reentrant: tick -> freeze and insert -> freeze nest.
        self._lock = maybe_sanitize(threading.RLock(), "lsm")
        self._bg_lock = maybe_sanitize(threading.Lock(), "lsm-bg")
        self._frozen_lock = maybe_sanitize(threading.Lock(), "lsm-frozen")
        self._index_lock = maybe_sanitize(threading.Lock(), "lsm-index-specs")
        self._memtable = self._new_memtable()
        self._pending_deletes: List[np.ndarray] = []
        self._next_frozen_id = 0
        self._last_flush_time = 0.0
        self._bg_crash: Optional[BaseException] = None
        self._bg_error: Optional[Exception] = None
        self._next_segment_id = 0
        self._flushed_lsn = -1
        self._manifest_seq = 0
        #: query-planner calibration (JSON-safe dict), carried in every
        #: manifest version so calibration survives restarts.
        self._planner_state: Optional[dict] = None
        self.flush_count = 0
        self.merge_count = 0
        self.purge_count = 0
        #: fid -> FrozenMemtable, alive while any snapshot can see it
        self._frozen: Dict[int, FrozenMemtable] = {}
        #: highest WAL LSN any freeze has ever covered
        self._frozen_wal_high = -1
        #: fid -> lazily built read view (a Segment sharing no files)
        self._frozen_views: Dict[int, Segment] = {}
        #: fid -> resulting segment id, recorded only for awaited fids
        self._flush_results: Dict[int, Optional[int]] = {}
        self._awaited: set = set()
        #: dead segments whose files await a durable manifest persist
        #: before physical deletion (see _segment_dead).
        self._dead_segment_files: "queue.SimpleQueue" = queue.SimpleQueue()
        #: FIFO hand-off queue; in inline mode the writer drains it
        #: itself right after releasing the writer lock.
        self._work: "queue.Queue" = queue.Queue()
        self._flusher: Optional[threading.Thread] = None
        if self.background:
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="lsm-flusher", daemon=True
            )
            self._flusher.start()
        #: segment id -> {field: (index_type, params)} for segments
        #: whose indexes must be rebuilt after bufferpool eviction
        #: (indexes are not serialized; Milvus also rebuilds them
        #: asynchronously).
        self._index_specs: Dict[int, Dict[str, tuple]] = {}
        self._index_queue: Optional["queue.Queue"] = None
        if self.config.async_index_build:
            self._index_queue = queue.Queue()
            worker = threading.Thread(
                target=self._index_builder_loop, name="index-builder", daemon=True
            )
            worker.start()

    def _new_memtable(self) -> MemTable:
        return MemTable(
            self.vector_specs, self.attribute_names, self.categorical_names,
            self.categorical_kinds,
        )

    # -- write path ------------------------------------------------------

    def insert(
        self,
        row_ids: np.ndarray,
        vectors: Dict[str, np.ndarray],
        attributes: Optional[Dict[str, np.ndarray]] = None,
        categoricals: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        """Log and buffer an insert batch; may trigger a freeze.

        The writer lock covers only the WAL append, the memtable
        append, and (at the threshold) the O(1) freeze — a writer is
        never stuck behind segment I/O, even in inline mode, where the
        drain happens after the lock is released.
        """
        obs = get_obs()
        with obs.tracer.span("lsm.insert", rows=len(row_ids)):
            started = time.perf_counter()
            with self._lock:
                self._raise_bg_crash_locked()
                if self.wal is not None:
                    self.wal.append_insert(
                        row_ids, vectors, attributes, categoricals
                    )
                self._memtable.insert(row_ids, vectors, attributes, categoricals)
                froze = (
                    self._memtable.approx_bytes >= self.config.memtable_flush_bytes
                )
                if froze:
                    self._freeze_locked()
            if froze and not self.background:
                self._drain_work()
            elapsed = time.perf_counter() - started
        obs.registry.counter("lsm_insert_rows_total").inc(len(row_ids))
        obs.registry.histogram("lsm_insert_seconds").observe(elapsed)

    def delete(self, row_ids: np.ndarray) -> None:
        """Log and buffer deletes (out-of-place: tombstones only)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if len(row_ids) == 0:
            return
        with self._lock:
            self._raise_bg_crash_locked()
            if self.wal is not None:
                self.wal.append_delete(row_ids)
            self._pending_deletes.append(row_ids)

    def tick(self, now_seconds: float) -> bool:
        """Time-based flush driver ("once every second"); returns True on freeze.

        In background mode the freeze is handed to the flusher thread
        and tick returns immediately; in inline mode the drain runs
        before returning (preserving the historical synchronous
        semantics for single-threaded callers).
        """
        with self._lock:
            self._raise_bg_crash_locked()
            due = (
                now_seconds - self._last_flush_time >= self.config.flush_interval_seconds
                and (len(self._memtable) or self._pending_deletes)
            )
            if due:
                self._freeze_locked(now_seconds=now_seconds)
        if due and not self.background:
            self._drain_work()
        return due

    def flush(self, now_seconds: Optional[float] = None) -> Optional[int]:
        """Freeze the MemTable and wait for its flush to commit.

        Returns the new segment id, or None when only deletes (or
        nothing) were pending.  Acts as a barrier: all previously
        frozen memtables are flushed when it returns, and any crash
        recorded by background work is re-raised here.
        """
        with self._lock:
            self._raise_bg_crash_locked()
            fid = self._freeze_locked(now_seconds=now_seconds)
            if fid is not None:
                with self._frozen_lock:
                    self._awaited.add(fid)
        self.wait_for_background()
        if fid is None:
            return None
        with self._frozen_lock:
            self._awaited.discard(fid)
            return self._flush_results.pop(fid, None)

    def _freeze_locked(self, now_seconds: Optional[float] = None) -> Optional[int]:
        """Seal the active memtable onto the frozen queue — O(1).

        Commits a manifest version carrying the frozen id, so the rows
        (and the deletes batched with them) become reader-visible at
        the freeze, not at the eventual flush.  Returns the frozen id,
        or None when there is nothing to freeze.
        """
        assert_guarded(self._lock, "LSMManager", "_memtable")
        if not len(self._memtable) and not self._pending_deletes:
            return None
        tombstones = (
            np.unique(np.concatenate(self._pending_deletes))
            if self._pending_deletes
            else None
        )
        self._pending_deletes = []
        memtable = self._memtable
        memtable.seal()
        self._memtable = self._new_memtable()
        fid = self._next_frozen_id
        self._next_frozen_id += 1
        wal_upto = self.wal.next_lsn - 1 if self.wal is not None else -1
        with self._frozen_lock:
            entry = FrozenMemtable(
                fid, memtable, tombstones, wal_upto, len(memtable),
                wal_from=self._frozen_wal_high,
            )
            self._frozen_wal_high = max(self._frozen_wal_high, wal_upto)
            self._frozen[fid] = entry
            backlog = sum(1 for e in self._frozen.values() if not e.done)
        self.manifest.commit(add_frozen=[fid])
        if now_seconds is not None:
            self._last_flush_time = now_seconds
        self._work.put(fid)
        obs = get_obs()
        obs.registry.gauge("lsm_frozen_memtables").set(backlog)
        obs.jobs.set_queue_depth("flush", backlog)
        obs.events.emit(obs_events.MEMTABLE_FREEZE,
                        fid=fid, rows=len(memtable), backlog=backlog)
        return fid

    # -- background engine -------------------------------------------------

    def _flusher_loop(self) -> None:
        """Single background worker: FIFO flushes, then compaction.

        One thread by design — frozen memtables must seal into
        segments in freeze order (the flushed-LSN checkpoint advances
        monotonically), and a deterministic op stream is what makes
        seeded chaos schedules replayable.
        """
        while True:
            item = self._work.get()
            try:
                if item is self._SHUTDOWN:
                    return
                if self._bg_crashed():
                    continue  # dead process: drain inertly, keep join() sound
                with self._bg_lock:
                    self._process_flush_locked(item)
            except BaseException as exc:  # noqa: BLE001 — recorded, re-raised on write path
                # A simulated crash (or anything that isn't a plain
                # Exception) is fatal: the "process" is dead, so the
                # record is sticky and every later write re-raises it.
                # An ordinary Exception (e.g. a transient injected
                # IOError) is an *operation* failure: report it once at
                # the next barrier and leave the entry re-queueable, so
                # a caller-level RetryPolicy can succeed.
                fatal = isinstance(exc, SimulatedCrash) or not isinstance(exc, Exception)
                with self._lock:
                    if fatal:
                        if self._bg_crash is None:
                            self._bg_crash = exc
                    elif self._bg_error is None:
                        self._bg_error = exc
                obs = get_obs()
                obs.events.emit(obs_events.BG_ERROR, worker="flusher",
                                error=type(exc).__name__, fatal=fatal)
                obs.health.note_bg_failure(
                    "flusher", f"{type(exc).__name__}: {exc}", fatal=fatal)
            finally:
                self._work.task_done()

    def _drain_work(self) -> None:
        """Inline mode: the writer flushes the queue itself.

        Runs with the writer lock *released*; ``_bg_lock`` serializes
        concurrent drainers so FIFO order is preserved.
        """
        with self._bg_lock:
            while True:
                try:
                    item = self._work.get_nowait()
                except queue.Empty:
                    return
                try:
                    if item is not self._SHUTDOWN:
                        self._process_flush_locked(item)
                finally:
                    self._work.task_done()

    def wait_for_background(self) -> None:
        """Barrier: block until all queued background work committed.

        Re-raises any crash recorded by the background worker, so
        callers observe background failures at a well-defined point.
        Frozen memtables whose flush *failed* (transient error on the
        worker) are re-queued first, so a retry of the barrier retries
        the flush instead of waiting on an empty queue.
        """
        self._requeue_unflushed()
        if self.background:
            self._work.join()
        else:
            self._drain_work()
        with self._lock:
            self._raise_bg_crash_locked()
            if self._bg_error is not None:
                error, self._bg_error = self._bg_error, None
                raise error

    def _requeue_unflushed(self) -> None:
        """Put frozen entries that fell off the queue back on it.

        An entry leaves the queue when the worker picks it up; if that
        flush fails, the entry is still pending (``done`` is False) but
        nothing will process it again.  Re-queueing in fid order keeps
        the FIFO seal order; entries already queued (or mid-flight on
        the worker, which re-checks ``done``) are skipped.
        """
        with self._frozen_lock:
            stranded = sorted(
                fid for fid, e in self._frozen.items()
                if not e.done and not e.queued
            )
            for fid in stranded:
                self._frozen[fid].queued = True
        for fid in stranded:
            self._work.put(fid)

    def quiesce_after_crash(self) -> None:
        """Chaos-harness hook: stop background mutation of the store.

        A real crash kills every thread at once; the simulated one is
        an exception on a single thread.  Before the harness recovers
        a fresh manager from the surviving filesystem, it must ensure
        this manager's flusher can no longer write — any in-flight
        item completes (its ops count as "landed before the crash")
        and everything still queued drains inertly.
        """
        with self._lock:
            if self._bg_crash is None:
                self._bg_crash = RuntimeError("halted by chaos harness")
        if self.background:
            self._work.join()

    def close(self) -> None:
        """Stop the background flusher (pending work is completed first)."""
        if self._flusher is not None:
            self._work.put(self._SHUTDOWN)
            self._flusher.join()
            self._flusher = None

    def _raise_bg_crash_locked(self) -> None:
        assert_guarded(self._lock, "LSMManager", "_bg_crash")
        if self._bg_crash is not None:
            raise self._bg_crash

    def _bg_crashed(self) -> bool:
        with self._lock:
            return self._bg_crash is not None

    def _process_flush_locked(self, fid: int) -> None:
        """Flush one frozen memtable into a sealed segment (``_bg_lock`` held).

        Crash ordering: segment file → manifest commit (carrying the
        new flushed LSN) → WAL truncate.  A crash before the manifest
        lands leaves an orphan segment file (GC'd by recover) and the
        WAL replays the rows; a crash after it leaves a WAL tail that
        recover's checkpoint finishes.  Either way, no acked write is
        lost and none is applied twice.

        Re-entrant after a transient failure: progress is checkpointed
        on the entry (``seg_id``, ``committed``), so a retried flush
        rewrites the same segment path and never re-applies its
        manifest commit.
        """
        assert_guarded(self._bg_lock, "LSMManager", "_flushed_lsn")
        with self._frozen_lock:
            entry = self._frozen.get(fid)
            if entry is not None:
                entry.queued = False
        if entry is None or entry.done:
            return
        obs = get_obs()
        job = obs.jobs.start("flush")
        with obs.tracer.span("lsm.flush", frozen=fid):
            started = time.perf_counter()
            obs.events.emit(obs_events.FLUSH_START, fid=fid, rows=entry.rows)
            try:
                if entry.rows:
                    job.advance(phase="encode", rows_total=entry.rows)
                    view = self._frozen_view(fid)
                    if not entry.committed:
                        if entry.seg_id is None:
                            entry.seg_id = self._next_segment_id
                            self._next_segment_id += 1
                        # Share the view's arrays (and bloom filter): the sealed
                        # segment is bit-identical to what readers saw frozen.
                        segment = Segment(
                            entry.seg_id, view.row_ids, view.vectors,
                            view.attributes, view.vector_specs,
                            categoricals=view.categoricals, bloom=view.bloom,
                        )
                        size = self._persist_segment(segment, job=job)
                        self.bufferpool.put(segment)
                        job.advance(phase="manifest-commit")
                        self.manifest.commit(
                            add=[entry.seg_id], remove_frozen=[fid],
                            new_tombstones=entry.tombstones,
                            sizes={entry.seg_id: size},
                        )
                        entry.committed = True
                elif not entry.committed:
                    self.manifest.commit(
                        remove_frozen=[fid], new_tombstones=entry.tombstones
                    )
                    entry.committed = True
                seg_id = entry.seg_id
                with self._frozen_lock:
                    entry.done = True
                    if fid in self._awaited:
                        self._flush_results[fid] = seg_id
                    pending = [e for e in self._frozen.values() if not e.done]
                    # The checkpoint may only pass LSNs every pending freeze
                    # has outgrown: a failed (or simply later) entry still
                    # owns records from wal_from + 1 on, and truncating them
                    # would lose acked writes if it never seals.
                    safe_lsn = (
                        min(e.wal_from for e in pending)
                        if pending else self._frozen_wal_high
                    )
                    backlog = len(pending)
                if self.wal is not None:
                    self._flushed_lsn = max(self._flushed_lsn, safe_lsn)
                job.advance(phase="checkpoint")
                self._persist_manifest_locked()
                self.flush_count += 1
                if self.wal is not None:
                    self.wal.truncate_through(self._flushed_lsn)
            except BaseException as exc:
                job.finish(error=f"{type(exc).__name__}: {exc}")
                raise
            elapsed = time.perf_counter() - started
        obs.registry.gauge("lsm_frozen_memtables").set(backlog)
        obs.jobs.set_queue_depth("flush", backlog)
        obs.events.emit(obs_events.FLUSH_COMMIT, fid=fid,
                        seg_id=-1 if seg_id is None else seg_id,
                        backlog=backlog)
        job.finish()
        obs.health.note_bg_ok("flusher")
        if seg_id is not None:
            obs.registry.counter("lsm_flushes_total").inc()
            obs.registry.histogram("lsm_flush_seconds").observe(elapsed)
        if self.config.auto_merge:
            self._maybe_merge_locked()
        self._maybe_build_indexes()

    # -- frozen visibility -------------------------------------------------

    def _frozen_view(self, fid: int) -> Segment:
        """Read view of a frozen memtable, built lazily and cached.

        The view is a normal (unpersisted) :class:`Segment` — sorted
        row ids, columnar layout, bloom filter — so every read path
        treats frozen data exactly like sealed data.  Negative segment
        ids keep views distinguishable from real segments.
        """
        with self._frozen_lock:
            view = self._frozen_views.get(fid)
            if view is None:
                view = self._frozen[fid].memtable.to_segment(-(fid + 1))
                self._frozen_views[fid] = view
            return view

    def frozen_view_segments(self, snapshot: Snapshot) -> List[Segment]:
        """Read views for every frozen memtable visible in ``snapshot``."""
        return [self._frozen_view(fid) for fid in snapshot.frozen_ids]

    def visible_tombstones(self, snapshot: Snapshot) -> np.ndarray:
        """All deletes visible in ``snapshot``: committed + frozen.

        Deletes batched into a frozen memtable mask reads from the
        moment of the freeze, atomically with the frozen rows — the
        manifest absorbs them only at the flush commit.
        """
        if not snapshot.frozen_ids:
            return snapshot.tombstones
        parts = [snapshot.tombstones]
        with self._frozen_lock:
            for fid in snapshot.frozen_ids:
                entry = self._frozen.get(fid)
                if entry is not None and entry.tombstones is not None:
                    parts.append(entry.tombstones)
        if len(parts) == 1:
            return snapshot.tombstones
        return np.unique(np.concatenate(parts))

    def unflushed_preview(self):
        """Raw rows of the *active* memtable (read-your-writes support).

        Returns ``(row_ids, vectors, attributes, categoricals)`` —
        categorical code columns included, consistent with sealed
        segments and frozen views.
        """
        with self._lock:
            return self._memtable.raw_rows()

    def _frozen_dead(self, fid: int) -> None:
        """Manifest GC callback: no snapshot can see this frozen id."""
        with self._frozen_lock:
            self._frozen.pop(fid, None)
            self._frozen_views.pop(fid, None)

    # -- merging -----------------------------------------------------------

    def maybe_merge(self) -> int:
        """Run all merge tasks the tiered policy proposes; returns count."""
        with self._bg_lock:
            return self._maybe_merge_locked()

    def _maybe_merge_locked(self) -> int:
        """Compaction pass (``_bg_lock`` held): tiered merges, then purge.

        Plans from the manifest's *persisted* segment sizes — catalog
        state, no buffer-pool faulting, no I/O — so planning is cheap
        enough to run after every flush.
        """
        assert_guarded(self._bg_lock, "LSMManager", "merge_count")
        obs = get_obs()
        merged = 0
        while True:
            sizes = self.manifest.live_segment_sizes()
            tasks = self.config.merge_policy.plan(sorted(sizes.items()))
            obs.registry.gauge("lsm_compaction_backlog").set(len(tasks))
            obs.jobs.set_queue_depth("compaction", len(tasks))
            if not tasks:
                break
            obs.events.emit(obs_events.COMPACTION_PLAN, tasks=len(tasks))
            for task in tasks:
                self._execute_merge_locked(task.segment_ids)
                merged += 1
        merged += self._maybe_purge_locked()
        obs.registry.gauge("lsm_compaction_backlog").set(0)
        obs.jobs.set_queue_depth("compaction", 0)
        return merged

    def _execute_merge_locked(self, segment_ids: Tuple[int, ...]) -> int:
        assert_guarded(self._bg_lock, "LSMManager", "_next_segment_id")
        obs = get_obs()
        job = obs.jobs.start("compaction")
        job.advance(phase="merge")
        with obs.tracer.span("lsm.merge", inputs=len(segment_ids)):
            started = time.perf_counter()
            try:
                merged_id = self._merge_segments_locked(segment_ids, job=job)
            except BaseException as exc:
                job.finish(error=f"{type(exc).__name__}: {exc}")
                raise
            elapsed = time.perf_counter() - started
        obs.registry.counter("lsm_merges_total").inc()
        obs.registry.histogram("lsm_merge_seconds").observe(elapsed)
        obs.registry.histogram("lsm_compaction_seconds").observe(elapsed)
        obs.events.emit(obs_events.COMPACTION_COMMIT, op="merge",
                        inputs=len(segment_ids), seg_id=merged_id)
        job.finish()
        return merged_id

    def _merge_segments_locked(self, segment_ids: Tuple[int, ...], job=None) -> int:
        tombstones = self.manifest.current_tombstones()
        segments = [self.bufferpool.get(s, pin=True) for s in segment_ids]
        try:
            new_id = self._next_segment_id
            self._next_segment_id += 1
            merged = Segment.merge(new_id, segments, drop_ids=tombstones)
            size = self._persist_segment(merged, job=job)
            self.bufferpool.put(merged)
            # Tombstones covered by the merged inputs are now physical.
            covered = np.concatenate([s.row_ids for s in segments])
            cleared = np.intersect1d(tombstones, covered)
            self.manifest.commit(
                add=[new_id], remove=list(segment_ids),
                clear_tombstones=cleared, sizes={new_id: size},
            )
            self._persist_manifest_locked()
            self.merge_count += 1
            return new_id
        finally:
            for seg_id in segment_ids:
                self.bufferpool.unpin(seg_id)

    def _maybe_purge_locked(self) -> int:
        """Rewrite resident segments dominated by tombstones.

        Sec. 2.3's merge is the only reclamation point for deleted
        rows; a segment that never qualifies for a tiered merge would
        otherwise carry its dead rows forever.  Only buffer-resident
        segments are considered (``peek`` — purging is an optimization
        and must not cause load I/O), and the tombstone overlap check
        rides the segment's bloom filter.
        """
        assert_guarded(self._bg_lock, "LSMManager", "purge_count")
        ratio = self.config.tombstone_purge_ratio
        if ratio <= 0:
            return 0
        tombstones = self.manifest.current_tombstones()
        if not len(tombstones):
            return 0
        purged = 0
        for seg_id in self.manifest.live_segment_ids():
            segment = self.bufferpool.peek(seg_id)
            if segment is None or not segment.num_rows:
                continue
            dead = int(segment.contains_mask(tombstones).sum())
            if not dead or dead < segment.num_rows * ratio:
                continue
            self._purge_segment_locked(seg_id, segment, tombstones)
            purged += 1
            tombstones = self.manifest.current_tombstones()
            if not len(tombstones):
                break
        return purged

    def _purge_segment_locked(
        self, seg_id: int, segment: Segment, tombstones: np.ndarray
    ) -> None:
        obs = get_obs()
        job = obs.jobs.start("compaction")
        job.advance(phase="purge", rows_total=segment.num_rows)
        with obs.tracer.span("lsm.purge", segment=seg_id):
            started = time.perf_counter()
            try:
                covered = np.intersect1d(tombstones, segment.row_ids)
                new_id = self._next_segment_id
                self._next_segment_id += 1
                rewritten = Segment.merge(new_id, [segment], drop_ids=tombstones)
                if rewritten.num_rows:
                    size = self._persist_segment(rewritten, job=job)
                    self.bufferpool.put(rewritten)
                    self.manifest.commit(
                        add=[new_id], remove=[seg_id],
                        clear_tombstones=covered, sizes={new_id: size},
                    )
                else:
                    # Every row was dead; the segment simply disappears.
                    self.manifest.commit(remove=[seg_id], clear_tombstones=covered)
                self._persist_manifest_locked()
                self.purge_count += 1
            except BaseException as exc:
                job.finish(error=f"{type(exc).__name__}: {exc}")
                raise
            elapsed = time.perf_counter() - started
        obs.registry.counter("lsm_purged_rows_total").inc(len(covered))
        obs.registry.histogram("lsm_compaction_seconds").observe(elapsed)
        obs.events.emit(obs_events.COMPACTION_COMMIT, op="purge",
                        inputs=1, seg_id=seg_id,
                        dropped_rows=int(len(covered)))
        job.finish()

    # -- index building --------------------------------------------------------

    def _build_segment_index(
        self, segment: Segment, seg_id: int, fieldname: str, itype: str,
        params: dict,
    ) -> None:
        """Build and catalog one segment index, timed and counted."""
        obs = get_obs()
        job = obs.jobs.start("index-build")
        job.advance(phase=itype, rows_total=segment.num_rows)
        with obs.tracer.span(
            "index.build", segment=seg_id, field=fieldname, index_type=itype
        ):
            started = time.perf_counter()
            try:
                segment.build_index(fieldname, itype, **params)
            except BaseException as exc:
                job.finish(error=f"{type(exc).__name__}: {exc}")
                raise
            elapsed = time.perf_counter() - started
        obs.registry.counter("index_builds_total", index_type=itype).inc()
        obs.registry.histogram("index_build_seconds").observe(elapsed)
        job.advance(rows_done=segment.num_rows)
        job.finish()
        self._record_index(seg_id, fieldname, itype, params)

    def _maybe_build_indexes(self) -> None:
        for seg_id in self.manifest.live_segment_ids():
            segment = self.bufferpool.get(seg_id)
            if segment.num_rows < self.config.index_build_min_rows:
                continue
            for fieldname in self.vector_specs:
                if segment.has_index(fieldname):
                    continue
                if self._index_queue is not None:
                    self._index_queue.put((seg_id, fieldname))
                else:
                    self._build_segment_index(
                        segment, seg_id, fieldname, self.config.index_type,
                        dict(self.config.index_params),
                    )

    def _index_builder_loop(self) -> None:
        """Background index builder: attach indexes as they complete.

        Attaching is a single dict assignment on the live segment, so
        in-flight searches either see the index or brute-force — both
        correct (Sec. 5.1's asynchronous index building).
        """
        while True:
            seg_id, fieldname = self._index_queue.get()
            try:
                if seg_id not in self.manifest.live_segment_ids():
                    continue  # segment merged away while queued
                segment = self.bufferpool.get(seg_id)
                if segment.has_index(fieldname):
                    continue
                self._build_segment_index(
                    segment, seg_id, fieldname, self.config.index_type,
                    dict(self.config.index_params),
                )
            except FileNotFoundError:
                # Background compaction merged the segment away (and GC'd
                # its file) between the liveness check and the load; the
                # index is moot, the merged output gets its own build.
                continue
            finally:
                self._index_queue.task_done()

    def wait_for_index_builds(self) -> None:
        """Block until the async builder drains (no-op when sync)."""
        if self._index_queue is not None:
            self._index_queue.join()

    def build_index(self, field: str, index_type: Optional[str] = None, **params) -> int:
        """Manually build indexes on every live segment (any size).

        The paper: "users are allowed to manually build indexes for
        segments of any size if necessary."  Returns segments indexed.
        """
        count = 0
        itype = index_type or self.config.index_type
        # Config defaults only apply to the config's own index type —
        # nlist would be a TypeError for, say, HNSW.
        if itype == self.config.index_type:
            merged_params = dict(self.config.index_params)
            merged_params.update(params)
        else:
            merged_params = dict(params)
        for seg_id in self.manifest.live_segment_ids():
            segment = self.bufferpool.get(seg_id)
            if segment.num_rows == 0:
                continue
            self._build_segment_index(segment, seg_id, field, itype, merged_params)
            count += 1
        return count

    def _record_index(self, seg_id: int, field: str, itype: str, params: dict) -> None:
        # Leaf lock only around the catalog write: touching the
        # bufferpool/fs under _index_lock would invert the
        # bufferpool -> index-specs order taken by _load_segment.
        with self._index_lock:
            self._index_specs.setdefault(seg_id, {})[field] = (itype, dict(params))
        # Persist serializable indexes so a reload skips the rebuild.
        from repro.index import SERIALIZABLE_TYPES, index_to_bytes

        if itype.upper() in SERIALIZABLE_TYPES:
            try:
                segment = self.bufferpool.get(seg_id)
                self.fs.write(
                    self._index_path(seg_id, field),
                    index_to_bytes(segment.indexes[field]),
                )
            except FileNotFoundError:
                pass  # segment merged away concurrently; index is moot

    def _index_path(self, seg_id: int, field: str) -> str:
        return f"indexes/{seg_id:012d}__{field}.idx"

    # -- read path ---------------------------------------------------------------

    def snapshot(self) -> Snapshot:
        return self.manifest.acquire()

    def release(self, snapshot: Snapshot) -> None:
        self.manifest.release(snapshot)
        # Deaths fired by this release belong to commits that were
        # persisted long ago — their files can go now.
        self._drain_dead_segment_files()

    # -- planner calibration ------------------------------------------------

    def planner_state(self) -> Optional[dict]:
        """The persisted query-planner calibration dict, if any.

        Returned as a deep copy (json round-trip — the state is
        JSON-safe by construction, it lives in the manifest) so the
        caller cannot mutate the guarded staging dict.
        """
        with self._bg_lock:
            if self._planner_state is None:
                return None
            return json.loads(json.dumps(self._planner_state))

    def set_planner_state(self, state: dict, persist: bool = False) -> None:
        """Stage planner calibration for the next manifest version.

        Cheap by default (in-memory; every subsequent flush/merge
        manifest write carries it).  ``persist=True`` writes a manifest
        version immediately — used when durability is wanted *now*,
        e.g. at collection flush, without waiting for the next
        compaction.
        """
        with self._bg_lock:
            self._planner_state = state
            if persist:
                self._persist_manifest_locked()

    def search(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        snapshot: Optional[Snapshot] = None,
        row_filter: Optional[np.ndarray] = None,
        brute_force: bool = False,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        **search_params,
    ) -> SearchResult:
        """Top-k over everything visible in ``snapshot``.

        Scans sealed segments *and* frozen memtable views — rows are
        searchable from the moment of the freeze, before the
        background flush lands.  Acquires (and releases) a fresh
        snapshot when none is given.  With ``parallel`` on (or
        ``REPRO_PARALLEL=1``), scans fan out over the shared worker
        pool; results are returned in scan order either way, so
        parallel output is bit-identical to serial (see ``repro.exec``).
        """
        obs = get_obs()
        metric = get_metric(self.vector_specs[field][1])
        owned = snapshot is None
        snap = self.snapshot() if owned else snapshot
        try:
            queries = np.asarray(queries, dtype=np.float32)
            if queries.ndim == 1:
                queries = queries[np.newaxis, :]
            exclude = self.visible_tombstones(snap)
            n_scans = len(snap.segment_ids) + len(snap.frozen_ids)
            with obs.tracer.span(
                "lsm.search", field=field, nq=len(queries), k=k,
                segments=n_scans,
            ), profile_stage(
                "lsm.search", field=field, segments=n_scans,
            ) as pstage:
                started = time.perf_counter()

                def scan(seg_id: int, stage) -> SearchResult:
                    # Pin inside the task so the segment stays resident
                    # for exactly the duration of its own scan.
                    segment = self.bufferpool.get(seg_id, pin=True)
                    try:
                        with stage, obs.tracer.span(
                            "segment.search", segment=seg_id
                        ):
                            return segment.search(
                                field, queries, k,
                                exclude=exclude,
                                row_filter=row_filter,
                                brute_force=brute_force,
                                **search_params,
                            )
                    finally:
                        self.bufferpool.unpin(seg_id)

                def scan_frozen(fid: int, stage) -> SearchResult:
                    # No pin: the snapshot's refcount keeps the frozen
                    # entry (and therefore the view) alive.
                    view = self._frozen_view(fid)
                    with stage, obs.tracer.span(
                        "segment.search", segment=view.segment_id
                    ):
                        return view.search(
                            field, queries, k,
                            exclude=exclude,
                            row_filter=row_filter,
                            brute_force=brute_force,
                            **search_params,
                        )

                executor = QueryExecutor(parallel=parallel, pool_size=pool_size)
                # Per-segment profile stages are pre-created here, in
                # submission order, and entered inside each task: child
                # order and counter placement are then identical for
                # serial and pooled execution (see repro.obs.profile).
                tasks = [
                    lambda seg_id=s, stage=pstage.stage(
                        "segment.search", segment=s
                    ): scan(seg_id, stage)
                    for s in snap.segment_ids
                ]
                tasks.extend(
                    lambda fid=f, stage=pstage.stage(
                        "segment.search", segment=-(f + 1)
                    ): scan_frozen(fid, stage)
                    for f in snap.frozen_ids
                )
                partials = executor.map_ordered(tasks, label="segment.search")
                ids, scores = merge_topk_batch(
                    [(p.ids, p.scores) for p in partials],
                    k,
                    metric.higher_is_better,
                    nq=len(queries),
                    dtype=np.float64,
                )
                result = SearchResult(ids, scores)
                elapsed = time.perf_counter() - started
            obs.registry.counter("lsm_searches_total").inc()
            obs.registry.histogram("lsm_search_seconds").observe(elapsed)
            return result
        finally:
            if owned:
                self.release(snap)

    # -- introspection ---------------------------------------------------------------

    @property
    def num_live_rows(self) -> int:
        """Rows visible to a fresh snapshot (sealed + frozen − tombstoned)."""
        snap = self.snapshot()
        try:
            exclude = self.visible_tombstones(snap)
            total = 0
            for seg_id in snap.segment_ids:
                # Pin like the search path: an unpinned segment can be
                # evicted (and invalidated) by a concurrent flush/merge
                # mid-read.
                segment = self.bufferpool.get(seg_id, pin=True)
                try:
                    total += segment.num_rows - int(
                        segment.contains_mask(exclude).sum()
                    )
                finally:
                    self.bufferpool.unpin(seg_id)
            for fid in snap.frozen_ids:
                view = self._frozen_view(fid)
                total += view.num_rows - int(view.contains_mask(exclude).sum())
            return total
        finally:
            self.release(snap)

    @property
    def unflushed_rows(self) -> int:
        """Rows not yet sealed into a segment: active + frozen-pending."""
        with self._frozen_lock:
            frozen = sum(e.rows for e in self._frozen.values() if not e.done)
        return len(self._memtable) + frozen

    def live_segments(self) -> List[Segment]:
        return [self.bufferpool.get(s) for s in self.manifest.live_segment_ids()]

    def stats(self) -> Dict[str, object]:
        """Operational snapshot for monitoring."""
        segments = self.live_segments()
        with self._frozen_lock:
            frozen_pending = sum(1 for e in self._frozen.values() if not e.done)
        return {
            "live_segments": len(segments),
            "live_rows": self.num_live_rows,
            "unflushed_rows": self.unflushed_rows,
            "frozen_memtables": frozen_pending,
            "background": self.background,
            "tombstones": int(len(self.manifest.current_tombstones())),
            "flush_count": self.flush_count,
            "merge_count": self.merge_count,
            "purge_count": self.purge_count,
            "manifest_version": self.manifest.current_version,
            "indexed_segments": sum(
                1 for s in segments if any(s.has_index(f) for f in self.vector_specs)
            ),
            "bufferpool": {
                "resident_bytes": self.bufferpool.resident_bytes,
                "resident_segments": self.bufferpool.resident_segments,
                "hit_rate": self.bufferpool.hit_rate(),
                "evictions": self.bufferpool.evictions,
            },
            "gc_count": self.manifest.gc_count,
        }

    # -- persistence helpers -----------------------------------------------------------

    def _segment_path(self, segment_id: int) -> str:
        return f"segments/{segment_id:012d}.seg"

    def _persist_segment(self, segment: Segment, job=None) -> int:
        blob = segment.to_bytes()
        if job is not None:
            # Rows are fully encoded before the write starts, so a job
            # parked on a stalled write still shows real progress.
            job.advance(phase="segment-write", rows_done=segment.num_rows,
                        bytes_total=len(blob))
        self.fs.write(self._segment_path(segment.segment_id), blob)
        if job is not None:
            job.advance(bytes_done=len(blob))
        return len(blob)

    def _load_segment(self, segment_id: int) -> Segment:
        from repro.index import index_from_bytes

        blob = self.fs.read(self._segment_path(segment_id))
        profile_count("bytes_read", len(blob))
        segment = Segment.from_bytes(blob)
        # Restore this segment's indexes: load the persisted blob when
        # one exists (quantization indexes serialize), else rebuild
        # (graph/tree indexes reconstruct, as Milvus does).
        with self._index_lock:
            specs = dict(self._index_specs.get(segment_id, {}))
        for field, (itype, params) in specs.items():
            path = self._index_path(segment_id, field)
            if self.fs.exists(path):
                index_blob = self.fs.read(path)
                profile_count("bytes_read", len(index_blob))
                segment.indexes[field] = index_from_bytes(index_blob)
            else:
                segment.build_index(field, itype, **params)
        return segment

    def _segment_dead(self, segment_id: int) -> None:
        """Manifest GC callback: drop caches now, delete files *later*.

        The in-memory part is immediate: a pinned (still-scanning)
        segment leaves the pool at its final unpin instead of raising.
        The *files* must outlive this call — when the death fires from
        the commit that removed the segment (a merge or purge), the
        manifest version dropping the reference is not durable yet, and
        deleting the inputs first would strand a recovered catalog
        pointing at missing files.  Deletions queue here and drain only
        after a manifest persist (or at snapshot release, by which time
        the removing version has long been durable).
        """
        self.bufferpool.invalidate(segment_id, defer=True)
        self._dead_segment_files.put(segment_id)
        get_obs().events.emit(
            obs_events.COMPACTION_DEFERRED_DELETE, seg_id=segment_id)

    def _drain_dead_segment_files(self) -> None:
        """Physically delete files whose removing commit is now durable."""
        while True:
            try:
                segment_id = self._dead_segment_files.get_nowait()
            except queue.Empty:
                return
            self.fs.delete(self._segment_path(segment_id))
            with self._index_lock:
                dead_fields = list(self._index_specs.pop(segment_id, {}))
            for field in dead_fields:
                self.fs.delete(self._index_path(segment_id, field))

    def _manifest_file(self, seq: int) -> str:
        return f"manifest/{seq:012d}.mf"

    def _manifest_versions(self) -> List[Tuple[int, str]]:
        """(seq, path) for every persisted manifest version, ascending."""
        versions = []
        for path in self.fs.listdir("manifest/"):
            try:
                seq = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            versions.append((seq, path))
        versions.sort()
        return versions

    def _persist_manifest_locked(self) -> None:
        """Write the durable catalog as a new checksummed version.

        Versions are append-only: the new file lands (checksummed)
        before any older version is deleted, so a crash — even one
        that tears this very write — always leaves a valid manifest to
        recover from.  Frozen memtables are deliberately absent: they
        are volatile, and their rows are covered by the WAL until the
        flush commit writes them here.
        """
        assert_guarded(self._bg_lock, "LSMManager", "_manifest_seq")
        self._manifest_seq += 1
        state = {
            "live_segments": list(self.manifest.live_segment_ids()),
            "tombstones": self.manifest.current_tombstones().tolist(),
            "sizes": {
                str(k): v for k, v in self.manifest.live_segment_sizes().items()
            },
            "next_segment_id": self._next_segment_id,
            "flushed_lsn": self._flushed_lsn,
            "seq": self._manifest_seq,
        }
        if self._planner_state is not None:
            state["planner"] = self._planner_state
        payload = json.dumps(state, sort_keys=True)
        blob = json.dumps(
            {"crc": zlib.crc32(payload.encode()), "state": state}, sort_keys=True
        ).encode()
        self.fs.write(self._manifest_file(self._manifest_seq), blob)
        for seq, path in self._manifest_versions():
            if seq < self._manifest_seq:
                self.fs.delete(path)
        # The new version is durable: files it stopped referencing (and
        # any queued by earlier versions) are now safe to delete.
        self._drain_dead_segment_files()

    def _load_manifest_state_locked(self) -> Optional[dict]:
        """Newest intact manifest state, dropping any torn/corrupt tail.

        Scans versions newest-first; a version whose JSON or CRC is
        broken (a write torn by a crash) is deleted and the previous
        version wins.  Falls back to the legacy un-checksummed
        ``MANIFEST`` object for pre-versioning filesystems.
        """
        assert_guarded(self._bg_lock, "LSMManager", "_manifest_seq")
        versions = self._manifest_versions()
        if versions:
            # Never reuse a seq that has a (possibly torn) file on disk.
            self._manifest_seq = max(seq for seq, __ in versions)
        for seq, path in reversed(versions):
            try:
                doc = json.loads(self.fs.read(path).decode())
                state = doc["state"]
                payload = json.dumps(state, sort_keys=True)
                if zlib.crc32(payload.encode()) != doc["crc"]:
                    raise ValueError("manifest checksum mismatch")
            except (ValueError, KeyError, UnicodeDecodeError):
                # Torn by a crash mid-write: unacknowledged, discard.
                self.fs.delete(path)
                continue
            return state
        if self.fs.exists("MANIFEST"):
            return json.loads(self.fs.read("MANIFEST").decode())
        return None

    def recover(self) -> int:
        """Rebuild state from the filesystem after a crash.

        Re-registers persisted segments, tombstones, and recorded
        segment sizes from the newest intact manifest version,
        garbage-collects orphan segment/index files left by a crash
        mid-flush or mid-merge (including half-written merge outputs
        from the background compactor), re-runs the interrupted WAL
        checkpoint, and replays the WAL tail (records past the durable
        ``flushed_lsn``) into the MemTable.  Returns the number of WAL
        records replayed.  Idempotent: crashing during recovery and
        recovering again reaches the same state.  Only meaningful on a
        freshly constructed manager pointed at an existing filesystem.

        Filesystem phases run under the maintenance lock; only the
        final replay-into-memtable step takes the writer lock — the
        writer lock is never held across I/O, even here.
        """
        with self._lock:
            if len(self._memtable) or self._pending_deletes:
                raise RuntimeError(
                    "recover() must run on a freshly constructed manager"
                )
        with self._bg_lock:
            if self.manifest.current_version != 0:
                raise RuntimeError(
                    "recover() must run on a freshly constructed manager"
                )
            state = self._load_manifest_state_locked()
            if state is not None:
                self._next_segment_id = state["next_segment_id"]
                self._flushed_lsn = state.get("flushed_lsn", -1)
                self._planner_state = state.get("planner")
                tombs = np.array(state["tombstones"], dtype=np.int64)
                sizes = {
                    int(k): int(v) for k, v in state.get("sizes", {}).items()
                }
                self.manifest.commit(
                    add=state["live_segments"],
                    new_tombstones=tombs if len(tombs) else None,
                    sizes=sizes,
                )
            self._gc_orphans_locked()
            flushed_lsn = self._flushed_lsn
            if self.wal is None:
                get_obs().events.emit(
                    obs_events.RECOVERY, replayed=0,
                    segments=len(self.manifest.live_segment_ids()),
                    flushed_lsn=flushed_lsn,
                )
                return 0
            # Finish the checkpoint a crash may have interrupted, then
            # replay only records the manifest does not already cover.
            self.wal.truncate_through(flushed_lsn)
            records = self.wal.replay(from_lsn=flushed_lsn + 1)
        with self._lock:
            for record in records:
                if record.kind == "insert":
                    self._memtable.insert(
                        record.row_ids, record.vectors, record.attributes,
                        record.categoricals,
                    )
                elif record.kind == "delete":
                    self._pending_deletes.append(
                        np.asarray(record.row_ids, dtype=np.int64)
                    )
        get_obs().events.emit(
            obs_events.RECOVERY,
            replayed=len(records),
            segments=len(self.manifest.live_segment_ids()),
            flushed_lsn=flushed_lsn,
        )
        return len(records)

    def _gc_orphans_locked(self) -> None:
        """Delete segment/index files not referenced by the manifest.

        A crash between persisting a segment and committing the
        manifest (background flush, merge, or purge) leaves the file
        orphaned; its rows are still covered by the WAL / the merge
        inputs, so the file is garbage, and its id will be reused.
        """
        live = set(self.manifest.live_segment_ids())
        for path in self.fs.listdir("segments/"):
            try:
                seg_id = int(path.rsplit("/", 1)[-1].split(".")[0])
            except ValueError:
                continue
            if seg_id not in live:
                self.fs.delete(path)
        for path in self.fs.listdir("indexes/"):
            try:
                seg_id = int(path.rsplit("/", 1)[-1].split("__")[0])
            except ValueError:
                continue
            if seg_id not in live:
                self.fs.delete(path)
