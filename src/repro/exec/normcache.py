"""Per-owner cache of data-side kernel precomputations.

The L2 kernel lowers onto one GEMM via the expansion
``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` (paper Sec. 3.2); the data-side
``|x|^2`` term depends only on the stored vectors, yet the serial
engine recomputed it for every query batch.  A :class:`NormCache`
hangs off each owner of immutable vector data — one per
:class:`~repro.storage.segment.Segment` and one per
:class:`~repro.index.ivf_flat.IVFFlatIndex` — and memoizes:

* ``squared_norms`` — the ``|x|^2`` row vector (L2 scans);
* ``unit_rows`` — unit-normalized rows (cosine scans).

Keys are caller-chosen (field name for segments, ``(bucket, size)``
for IVF inverted lists).  Invalidation rules (docs/INTERNALS.md §13):
segments are immutable after sealing, so a segment's cache lives and
dies with the segment object (merge produces a *new* segment, and a
bufferpool eviction drops cache and segment together); IVF indexes
call :meth:`invalidate` from ``_add`` because appends mutate bucket
contents in place.

Hit/miss counters land in the metrics registry
(``normcache_hits_total`` / ``normcache_misses_total``), so the cache
hit rate is readable from ``GET /metrics``.

Lock discipline: the internal lock (sanitizer role ``"normcache"``)
is a strict leaf — held only around dict reads/writes, never across
the numpy precomputation or any engine call.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Tuple

import numpy as np

from repro.metrics.dense import squared_norms as _squared_norms
from repro.metrics.dense import unit_rows as _unit_rows
from repro.obs import get_obs
from repro.obs.profile import profile_count
from repro.utils.sanitizer import maybe_sanitize

__all__ = ["NormCache"]


class NormCache:
    """Memoized data-side norms / unit rows for one immutable owner."""

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {"_entries": "_lock"}

    def __init__(self):
        self._lock = maybe_sanitize(threading.Lock(), "normcache")
        self._entries: Dict[Tuple[str, Hashable], np.ndarray] = {}

    def _get(
        self,
        kind: str,
        key: Hashable,
        compute: Callable[[], np.ndarray],
    ) -> np.ndarray:
        full_key = (kind, key)
        with self._lock:
            value = self._entries.get(full_key)
        registry = get_obs().registry
        if value is not None:
            registry.counter("normcache_hits_total", kind=kind).inc()
            profile_count("normcache_hits")
            return value
        # Compute outside the lock (it is a leaf); a concurrent miss on
        # the same key computes twice and last-write-wins — benign,
        # both values are identical functions of immutable data.
        value = compute()
        with self._lock:
            self._entries[full_key] = value
        registry.counter("normcache_misses_total", kind=kind).inc()
        profile_count("normcache_misses")
        return value

    def squared_norms(self, key: Hashable, data: np.ndarray) -> np.ndarray:
        """Cached ``|x|^2`` per row of ``data`` (L2 expansion term)."""
        return self._get("sqnorm", key, lambda: _squared_norms(data))

    def unit_rows(self, key: Hashable, data: np.ndarray) -> np.ndarray:
        """Cached unit-normalized rows of ``data`` (cosine kernel)."""
        return self._get("unit", key, lambda: _unit_rows(data))

    def invalidate(self) -> None:
        """Drop everything (owner's data mutated, e.g. IVF append)."""
        with self._lock:
            self._entries.clear()

    def memory_bytes(self) -> int:
        with self._lock:
            return sum(v.nbytes for v in self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
