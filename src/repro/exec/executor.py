"""QueryExecutor: ordered fan-out of scan tasks over the shared pool.

The one policy object between a query and the :class:`WorkerPool`.
Both read paths use it the same way:

* LSM search fans one task per visible segment
  (:meth:`~repro.storage.lsm.LSMManager.search`);
* the cluster fans one task per live reader
  (:meth:`~repro.distributed.cluster.MilvusCluster.search`).

Serial and pooled execution share one code path and one merge, and
pooled results are returned in submission order, so the two modes are
bit-identical — the equivalence tests in ``tests/test_exec.py`` pin
that down.

Serial fallback triggers when any of these hold:

* ``REPRO_PARALLEL=0`` (the kill switch overrides everything),
* the resolved ``parallel`` knob is off,
* the effective pool size is 1,
* fewer than 2 tasks (nothing to overlap),
* the caller is itself a pool worker (nested fan-out would deadlock a
  bounded pool).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.exec.pool import (
    default_pool_size,
    get_pool,
    in_worker_thread,
    parallel_enabled,
)

__all__ = ["QueryExecutor"]


class QueryExecutor:
    """Per-call execution policy: resolved knobs + fan-out helpers."""

    def __init__(
        self,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        self.pool_size = pool_size if pool_size is not None else default_pool_size()
        self.timeout = timeout
        self.parallel = (
            parallel_enabled(parallel)
            and self.pool_size > 1
            and not in_worker_thread()
        )

    def map_settled(
        self,
        fns: Sequence[Callable[[], object]],
        label: str = "task",
        catch: Tuple[type, ...] = (),
    ) -> List[Tuple[object, Optional[BaseException]]]:
        """Run every task; returns ordered ``(result, error)`` pairs.

        ``catch`` names the exception types captured per slot (the
        cluster's degraded-read semantics); anything else propagates.
        Timeouts surface as :class:`ExecTimeoutError` in the error slot
        when it is in ``catch``, else they raise.
        """
        if self.parallel and len(fns) > 1:
            settled = get_pool(self.pool_size).map_settled(
                fns, label=label, timeout=self.timeout
            )
            # Every task has settled by now (pins released, spans
            # closed), so raising the first fatal error is safe.
            for __, error in settled:
                if error is not None and not isinstance(error, catch):
                    raise error
            return settled
        settled = []
        for fn in fns:
            if catch:
                try:
                    settled.append((fn(), None))
                except catch as exc:
                    settled.append((None, exc))
            else:
                # No capture requested: let errors propagate
                # immediately, exactly like the pre-exec serial loops.
                settled.append((fn(), None))
        return settled

    def map_ordered(
        self, fns: Sequence[Callable[[], object]], label: str = "task"
    ) -> List[object]:
        """Run every task; ordered results, first error propagates."""
        return [result for result, __ in self.map_settled(fns, label=label)]
