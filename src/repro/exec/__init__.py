"""repro.exec — the shared query-execution layer.

The paper's query engine gets its throughput from multi-threaded,
cache-aware execution (Sec. 3.2.1): every working thread scans its
share of the data into a bounded per-(query, thread) heap and the
heaps are merged at the end.  This package is that execution substrate
for the whole read path:

* :class:`~repro.exec.pool.WorkerPool` — one process-wide, lazily
  created pool of daemon threads with a bounded task queue, per-task
  timeout, and a graceful serial fallback (``pool_size=1`` or
  ``REPRO_PARALLEL=0``).  Thread-based on purpose: the hot kernels are
  numpy/BLAS calls (GEMM, ``argpartition``) that release the GIL.
* :class:`~repro.exec.executor.QueryExecutor` — fans independent
  scan tasks (per-segment in LSM search, per-reader in the cluster
  fan-out) over the pool **in submission order**, so parallel results
  are bit-identical to serial ones.
* :class:`~repro.exec.normcache.NormCache` — per-owner cache of
  data-side kernel precomputations (``|x|^2`` norms for L2,
  unit-normalized rows for cosine), so repeated brute-force / IVF
  residual scans cost one GEMM plus cached adds.

Knobs (see README):

* ``REPRO_PARALLEL`` — ``1`` turns pooled execution on by default,
  ``0`` forces serial everywhere (overriding per-call ``parallel=``).
* ``REPRO_POOL_SIZE`` — worker count of the shared pool.
* per-call ``parallel=`` / ``pool_size=`` on ``Collection.search``,
  ``LSMManager.search``, ``MilvusCluster.search`` and the SDK/REST
  ``params``.
"""

from repro.exec.pool import (
    ExecTimeoutError,
    WorkerPool,
    default_pool_size,
    get_pool,
    in_worker_thread,
    parallel_enabled,
    shutdown_pool,
)
from repro.exec.executor import QueryExecutor
from repro.exec.normcache import NormCache

__all__ = [
    "ExecTimeoutError",
    "WorkerPool",
    "QueryExecutor",
    "NormCache",
    "default_pool_size",
    "get_pool",
    "in_worker_thread",
    "parallel_enabled",
    "shutdown_pool",
]
