"""Process-wide worker pool for intra-query parallelism.

One pool serves the whole process (the paper runs one thread pool per
node and multiplexes every query over it), created lazily on first
pooled search and grown on demand when a caller requests a larger
``pool_size``.  Tasks are plain callables; results come back in
submission order.

Design notes:

* **Threads, not processes.**  The hot kernels — GEMMs in
  :mod:`repro.metrics.dense`, ``argpartition`` in
  :mod:`repro.utils.topk` — are numpy/BLAS calls that release the
  GIL, so segment scans genuinely overlap.
* **Bounded queue.**  Submission blocks once ``queue_capacity`` tasks
  are pending — natural backpressure instead of unbounded memory.
* **Per-task timeout.**  ``map_settled(..., timeout=...)`` bounds the
  wait per task; an expired task yields :class:`ExecTimeoutError` (the
  worker still finishes it, its result is discarded — tasks must clean
  up their own resources, e.g. bufferpool pins, in ``finally``).
* **Context propagation.**  Each task runs inside a
  ``contextvars`` snapshot of its submitter, so observability spans
  opened in a worker parent to the submitting query's span and the
  whole fan-out stays one trace.
* **No nested fan-out.**  A task submitted from a worker thread runs
  serially in that worker (see :func:`in_worker_thread`); with a
  bounded pool, waiting on sub-tasks from inside a task can deadlock.

Lock discipline: the pool's bookkeeping lock (sanitizer role
``"exec"``) is a **strict leaf** like ``"obs"`` — it is never held
across a task execution or any engine call, and any engine lock may be
held while submitting.  Documented in docs/INTERNALS.md §13 alongside
the lsm → wal → fs hierarchy; reprolint's lock-discipline rule
enforces the ``_GUARDED_BY`` map below.
"""

from __future__ import annotations

import contextvars
import os
import queue
import threading
from typing import Callable, List, Optional, Sequence, Tuple

from repro.obs import get_obs
from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "ExecTimeoutError",
    "WorkerPool",
    "default_pool_size",
    "get_pool",
    "in_worker_thread",
    "parallel_enabled",
    "shutdown_pool",
]

#: cap on the auto-sized pool; REPRO_POOL_SIZE / pool_size override.
MAX_DEFAULT_WORKERS = 8


class ExecTimeoutError(TimeoutError):
    """A pooled task did not finish within its per-task timeout."""


def default_pool_size() -> int:
    """Worker count when none is requested explicitly.

    ``REPRO_POOL_SIZE`` wins; otherwise ``min(8, cpu_count)`` but at
    least 2, so enabling ``REPRO_PARALLEL=1`` exercises real pool
    threads even on single-core CI runners.
    """
    env = os.environ.get("REPRO_POOL_SIZE")
    if env:
        return max(1, int(env))
    return min(MAX_DEFAULT_WORKERS, max(2, os.cpu_count() or 1))


def parallel_enabled(override: Optional[bool] = None) -> bool:
    """Resolve the three-state ``parallel`` knob against the environment.

    ``REPRO_PARALLEL=0`` forces serial everywhere (the kill switch),
    an explicit per-call ``override`` wins next, and otherwise pooled
    execution is on only when ``REPRO_PARALLEL=1``.
    """
    env = os.environ.get("REPRO_PARALLEL")
    if env == "0":
        return False
    if override is not None:
        return bool(override)
    return env == "1"


_worker_flag = threading.local()


def in_worker_thread() -> bool:
    """True when called from one of the pool's worker threads."""
    return getattr(_worker_flag, "active", False)


class _Task:
    """One unit of pooled work plus its completion latch."""

    __slots__ = ("fn", "ctx", "label", "done", "result", "error")

    def __init__(self, fn: Callable[[], object], label: str):
        self.fn = fn
        # Snapshot the submitter's context so spans opened inside the
        # worker parent to the submitting query's active span.
        self.ctx = contextvars.copy_context()
        self.label = label
        self.done = threading.Event()
        self.result: object = None
        self.error: Optional[BaseException] = None


class WorkerPool:
    """Fixed set of daemon worker threads over one bounded queue.

    The pool can only grow (``ensure_size``); workers idle on the
    queue when there is nothing to do, so an oversized pool costs a
    few parked threads, not CPU.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_workers": "_lock",
        "tasks_submitted": "_lock",
        "tasks_completed": "_lock",
    }

    def __init__(self, size: int, queue_capacity: int = 0):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        # Leaf role "exec": never held across a task or engine call.
        self._lock = maybe_sanitize(threading.Lock(), "exec")
        self._queue: "queue.Queue[Optional[_Task]]" = queue.Queue(
            maxsize=queue_capacity or size * 8
        )
        self._workers: List[threading.Thread] = []
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self._shutdown = False
        with self._lock:
            self._spawn_locked(size)

    # -- lifecycle ---------------------------------------------------------

    def _spawn_locked(self, target_size: int) -> None:
        while len(self._workers) < target_size:
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"exec-worker-{len(self._workers)}",
                daemon=True,
            )
            self._workers.append(worker)
            worker.start()

    def ensure_size(self, size: int) -> None:
        """Grow the pool to at least ``size`` workers (never shrinks)."""
        with self._lock:
            self._spawn_locked(size)

    @property
    def size(self) -> int:
        return len(self._workers)

    def shutdown(self) -> None:
        """Stop all workers (used by tests; the global pool is immortal)."""
        self._shutdown = True
        for __ in range(len(self._workers)):
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=5.0)

    # -- execution ---------------------------------------------------------

    def _worker_loop(self) -> None:
        _worker_flag.active = True
        while True:
            task = self._queue.get()
            if task is None:
                return
            registry = get_obs().registry
            registry.gauge("exec_queue_depth").set(self._queue.qsize())
            registry.gauge("exec_active_workers").inc()
            try:
                task.result = task.ctx.run(self._run_traced, task)
            except Exception as exc:  # delivered to the waiter
                task.error = exc
            finally:
                registry.gauge("exec_active_workers").dec()
                with self._lock:
                    self.tasks_completed += 1
                task.done.set()

    @staticmethod
    def _run_traced(task: _Task) -> object:
        obs = get_obs()
        with obs.tracer.span("exec.task", label=task.label):
            return task.fn()

    def map_settled(
        self,
        fns: Sequence[Callable[[], object]],
        label: str = "task",
        timeout: Optional[float] = None,
    ) -> List[Tuple[object, Optional[BaseException]]]:
        """Run ``fns`` on the pool; per-slot ``(result, error)`` pairs.

        Results come back in submission order regardless of completion
        order — the property that makes pooled merges bit-identical to
        serial ones.  A task that raised reports ``(None, exc)``; a
        task that outlived ``timeout`` reports
        ``(None, ExecTimeoutError)``.
        """
        if self._shutdown:
            raise RuntimeError("worker pool is shut down")
        tasks = []
        obs = get_obs()
        registry = obs.registry
        for fn in fns:
            task = _Task(fn, label)
            with self._lock:
                self.tasks_submitted += 1
            self._queue.put(task)  # blocks at capacity: backpressure
            registry.gauge("exec_queue_depth").set(self._queue.qsize())
            tasks.append(task)
        # Mirror the saturation signal into the job registry's named
        # queues so /jobs and the health watchdog see pool pressure.
        obs.jobs.set_queue_depth("exec", self._queue.qsize())
        registry.counter("exec_tasks_total").inc(len(tasks))
        settled: List[Tuple[object, Optional[BaseException]]] = []
        for task in tasks:
            if not task.done.wait(timeout):
                settled.append((None, ExecTimeoutError(
                    f"exec task {task.label!r} exceeded {timeout}s"
                )))
                registry.counter("exec_task_timeouts_total").inc()
                continue
            settled.append((task.result, task.error))
        return settled

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": len(self._workers),
                "queue_depth": self._queue.qsize(),
                "tasks_submitted": self.tasks_submitted,
                "tasks_completed": self.tasks_completed,
            }


# -- module-level switchboard (mirrors repro.obs / repro.utils.sanitizer) ---

_pool: Optional[WorkerPool] = None
_state_lock = threading.Lock()


def get_pool(size: Optional[int] = None) -> WorkerPool:
    """The process-wide pool, created lazily; grows to ``size`` workers."""
    global _pool
    wanted = size if size is not None else default_pool_size()
    with _state_lock:
        if _pool is None:
            _pool = WorkerPool(wanted)
        else:
            _pool.ensure_size(wanted)
        return _pool


def shutdown_pool() -> None:
    """Tear down the global pool (tests); recreated on next use."""
    global _pool
    with _state_lock:
        if _pool is not None:
            _pool.shutdown()
            _pool = None
