"""The naive multi-vector baseline (paper Sec. 4.2).

"The naive solution is to issue an individual top-k query for each
vector q.v_i on D_i to produce a set of candidates, which are further
computed to obtain the final top-k results.  Although simple, it can
miss many true results leading to extremely low recall (e.g., 0.1)."
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.multivector.aggregate import WeightedSum, resolve_metric
from repro.multivector.iterative import FieldQueryFn


def naive_multi_vector_search(
    fields,
    query_fn: FieldQueryFn,
    queries: Dict[str, np.ndarray],
    k: int,
    exact_fn,
    metric: str = "l2",
    weights: Optional[Dict[str, float]] = None,
) -> List[Tuple[int, float]]:
    """Per-field top-k union + exact rerank of the candidates.

    Args:
        query_fn: per-field top-k search (ids, raw scores).
        exact_fn: ``exact_fn(candidate_ids) -> aggregated scores`` for
            the current query entity (random access for reranking).

    Returns top-k (id, aggregated score) in metric direction.
    """
    metric_obj = resolve_metric(metric)
    agg = WeightedSum(tuple(fields), weights)
    candidates = set()
    for f in agg.fields:
        ids, __ = query_fn(f, np.asarray(queries[f], dtype=np.float32), k)
        candidates.update(int(i) for i in ids if i >= 0)
    if not candidates:
        return []
    cand = np.array(sorted(candidates), dtype=np.int64)
    scores = np.asarray(exact_fn(cand), dtype=np.float64)
    order = np.argsort(-scores if metric_obj.higher_is_better else scores)[:k]
    return [(int(cand[i]), float(scores[i])) for i in order]
