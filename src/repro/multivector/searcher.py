"""Collection adapter for multi-vector search.

Binds the array-level algorithms (fusion / iterative merging / naive)
to a :class:`repro.core.Collection`: per-field queries run against the
collection's segments, and fusion builds its concatenated index from
the collection's live rows (cached per manifest version).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.multivector.aggregate import WeightedSum
from repro.multivector.fusion import DECOMPOSABLE_METRICS, VectorFusion
from repro.multivector.iterative import DEFAULT_K_THRESHOLD, IterativeMerging
from repro.multivector.naive import naive_multi_vector_search
from repro.obs import get_obs
from repro.obs.profile import QueryProfile, current_node, profile_stage


class MultiVectorSearcher:
    """Multi-vector query executor bound to one collection."""

    def __init__(self, collection, weights: Optional[Dict[str, float]] = None):
        self.collection = collection
        self.fields = tuple(f.name for f in collection.schema.vector_fields)
        if len(self.fields) < 2:
            raise ValueError("multi-vector search needs >= 2 vector fields")
        metrics = {f.metric for f in collection.schema.vector_fields}
        if len(metrics) != 1:
            raise ValueError(
                "multi-vector aggregation requires one metric across fields, "
                f"got {sorted(metrics)}"
            )
        self.metric_name = next(iter(metrics))
        self.agg = WeightedSum(self.fields, weights)
        self._fusion: Optional[VectorFusion] = None
        self._fusion_version = -1

    # -- public API ----------------------------------------------------------

    def search(
        self,
        queries: Dict[str, np.ndarray],
        k: int,
        method: str = "auto",
        k_threshold: int = DEFAULT_K_THRESHOLD,
        aggregation: str = "sum",
        **search_params,
    ) -> List[List[Tuple[int, float]]]:
        """Top-k entities per query entity.

        ``method``: "fusion" | "iterative" | "naive" | "auto" (fusion
        when the metric is decomposable, else iterative merging —
        matching the paper's guidance).  Non-sum aggregations are not
        decomposable, so they route to iterative merging.
        """
        if method == "auto":
            decomposable = (
                self.metric_name in DECOMPOSABLE_METRICS and aggregation == "sum"
            )
            method = "fusion" if decomposable else "iterative"
        if method == "fusion" and aggregation != "sum":
            raise ValueError(
                "vector fusion requires the (weighted) sum aggregation; "
                f"use method='iterative' for {aggregation!r}"
            )
        batches = self._to_batches(queries)
        obs = get_obs()
        profile = None
        if obs.profiler.enabled and current_node() is None:
            profile = QueryProfile(
                "multivector.search", method=method, aggregation=aggregation, k=int(k)
            )
        stage = (
            profile
            if profile is not None
            else profile_stage("multivector.search", method=method, aggregation=aggregation)
        )
        with obs.tracer.span("multivector.search", method=method) as span, stage:
            out = self._search_impl(
                batches, k, method, k_threshold, aggregation, **search_params
            )
        if profile is not None:
            obs.profiler.record(span.trace_id, profile)
        return out

    def _search_impl(
        self,
        batches: Dict[str, np.ndarray],
        k: int,
        method: str,
        k_threshold: int,
        aggregation: str,
        **search_params,
    ) -> List[List[Tuple[int, float]]]:
        nq = len(next(iter(batches.values())))
        if method == "fusion":
            fusion = self._get_fusion()
            return fusion.search(batches, k, **search_params)
        if method == "iterative":
            merger = IterativeMerging(
                self.fields,
                self._make_query_fn(**search_params),
                metric=self.metric_name,
                weights=self.agg.weights,
                k_threshold=k_threshold,
                aggregation=aggregation,
            )
            return [
                merger.search_one({f: batches[f][qi] for f in self.fields}, k)
                for qi in range(nq)
            ]
        if method == "naive":
            query_fn = self._make_query_fn(**search_params)
            out = []
            for qi in range(nq):
                one = {f: batches[f][qi] for f in self.fields}
                out.append(
                    naive_multi_vector_search(
                        self.fields, query_fn, one, k,
                        exact_fn=lambda ids, q=one: self._exact(q, ids),
                        metric=self.metric_name, weights=self.agg.weights,
                    )
                )
            return out
        raise ValueError(f"unknown multi-vector method {method!r}")

    # -- helpers ------------------------------------------------------------------

    def _to_batches(self, queries: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if set(queries) != set(self.fields):
            raise ValueError(
                f"queries must cover fields {sorted(self.fields)}, got {sorted(queries)}"
            )
        batches = {}
        nq = None
        for f in self.fields:
            q = np.asarray(queries[f], dtype=np.float32)
            if q.ndim == 1:
                q = q[np.newaxis, :]
            if nq is None:
                nq = len(q)
            elif len(q) != nq:
                raise ValueError("all query fields must have the same batch size")
            batches[f] = q
        return batches

    def _make_query_fn(self, **search_params):
        def query_fn(field: str, query: np.ndarray, k_prime: int):
            total = self.collection.num_entities
            k_eff = max(1, min(k_prime, total)) if total else k_prime
            result = self.collection.search(field, query, k_eff, **search_params)
            mask = result.ids[0] >= 0
            return result.ids[0][mask], result.scores[0][mask]

        return query_fn

    def _exact(self, queries: Dict[str, np.ndarray], candidate_ids: np.ndarray):
        from repro.metrics import get_metric

        metric = get_metric(self.metric_name)
        field_vectors = {
            f: self.collection.fetch_vectors(f, candidate_ids) for f in self.fields
        }
        return self.agg.exact_scores(queries, field_vectors, metric)

    def _get_fusion(self) -> VectorFusion:
        version = self.collection.lsm.manifest.current_version
        if self._fusion is None or self._fusion_version != version:
            ids, field_data = self._export_live_rows()
            self._fusion = VectorFusion(
                field_data, metric=self.metric_name,
                weights=self.agg.weights, ids=ids,
            )
            self._fusion_version = version
        return self._fusion

    def _export_live_rows(self):
        lsm = self.collection.lsm
        snap = lsm.snapshot()
        try:
            ids_parts = []
            data_parts = {f: [] for f in self.fields}
            for seg_id in snap.segment_ids:
                segment = lsm.bufferpool.get(seg_id)
                if len(snap.tombstones):
                    keep = ~np.isin(segment.row_ids, snap.tombstones)
                else:
                    keep = np.ones(len(segment), dtype=bool)
                ids_parts.append(segment.row_ids[keep])
                for f in self.fields:
                    data_parts[f].append(segment.vectors[f][keep])
            if not ids_parts:
                raise ValueError("collection has no flushed entities")
            ids = np.concatenate(ids_parts)
            field_data = {f: np.concatenate(data_parts[f]) for f in self.fields}
            return ids, field_data
        finally:
            lsm.release(snap)
