"""Vector fusion (paper Sec. 4.2).

"This approach stores for each entity its mu vectors as a concatenated
vector ... applies the aggregation function g to the mu vectors of q,
producing an aggregated query vector ... It is straightforward to
prove the correctness of vector fusion because the similarity function
of inner product is decomposable."

Decomposability here covers:

* **inner product** — ``ip(concat_w(q), concat(v)) = sum w_i ip(q_i, v_i)``
  with the query subvectors scaled by ``w_i``;
* **squared L2** — ``l2(concat(sqrt(w) q), concat(sqrt(w) v)) =
  sum w_i l2(q_i, v_i)`` with *both* sides scaled by ``sqrt(w_i)``.

Cosine over raw data is not decomposable; with normalized data it
reduces to inner product (exactly the paper's remark).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index import create_index
from repro.multivector.aggregate import WeightedSum, resolve_metric

DECOMPOSABLE_METRICS = ("ip", "l2")


class VectorFusion:
    """Single-search multi-vector answering over concatenated vectors.

    Args:
        field_data: per-field (n, d_f) matrices, row-aligned entities.
        metric: ``"ip"`` or ``"l2"``.
        weights: weighted-sum weights per field.
        ids: per-entity ids (default 0..n-1).
        index_type: index over the concatenated vectors (default FLAT;
            any registered dense index works).
    """

    def __init__(
        self,
        field_data: Dict[str, np.ndarray],
        metric: str = "ip",
        weights: Optional[Dict[str, float]] = None,
        ids: Optional[np.ndarray] = None,
        index_type: str = "FLAT",
        **index_params,
    ):
        self.metric = resolve_metric(metric)
        if self.metric.name not in DECOMPOSABLE_METRICS:
            raise ValueError(
                f"vector fusion needs a decomposable metric {DECOMPOSABLE_METRICS}, "
                f"got {self.metric.name!r}"
            )
        self.fields = tuple(sorted(field_data))
        self.agg = WeightedSum(self.fields, weights)
        mats = [np.asarray(field_data[f], dtype=np.float32) for f in self.fields]
        n = len(mats[0])
        if any(len(m) != n for m in mats):
            raise ValueError("all fields must have the same entity count")
        self.dims = {f: m.shape[1] for f, m in zip(self.fields, mats)}

        if self.metric.name == "l2":
            mats = [
                math.sqrt(self.agg.weights[f]) * m for f, m in zip(self.fields, mats)
            ]
        concatenated = np.concatenate(mats, axis=1)
        self.total_dim = concatenated.shape[1]
        self.index = create_index(
            index_type, self.total_dim, metric=self.metric.name, **index_params
        )
        if self.index.requires_training:
            self.index.train(concatenated)
        self.index.add(concatenated, ids=ids)

    def fuse_queries(self, queries: Dict[str, np.ndarray]) -> np.ndarray:
        """Build aggregated query vectors from per-field query batches."""
        parts = []
        for f in self.fields:
            q = np.asarray(queries[f], dtype=np.float32)
            if q.ndim == 1:
                q = q[np.newaxis, :]
            if q.shape[1] != self.dims[f]:
                raise ValueError(
                    f"query field {f!r} has dim {q.shape[1]}, expected {self.dims[f]}"
                )
            w = self.agg.weights[f]
            scale = math.sqrt(w) if self.metric.name == "l2" else w
            parts.append(scale * q)
        return np.concatenate(parts, axis=1)

    def search(
        self, queries: Dict[str, np.ndarray], k: int, **search_params
    ) -> List[List[Tuple[int, float]]]:
        """Top-k entities per query; scores are the aggregated values."""
        fused = self.fuse_queries(queries)
        result = self.index.search(fused, k, **search_params)
        return [result.row(i) for i in range(result.nq)]
