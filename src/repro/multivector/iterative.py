"""Iterative merging (paper Algorithm 2).

Issue a top-k' vector query per field, try NRA termination over the
result lists, and double k' until either the top-k is fully determined
or k' reaches a threshold (the query results are approximate anyway),
then fall back to the best-effort merge of everything retrieved.

Two deliberate deviations from textbook NRA, straight from the paper:
no per-access ``getNext()`` (vector indexes can't do it efficiently)
and no per-access heap maintenance — bounds are evaluated once per
round over whole result lists.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.index import create_index
from repro.multivector.aggregate import WeightedSum, resolve_metric
from repro.multivector.nra import RankedList, nra_best_effort_topk, nra_determined_topk

#: signature of a per-field vector query: (field, query_vector, k) -> (ids, raw_scores)
FieldQueryFn = Callable[[str, np.ndarray, int], Tuple[np.ndarray, np.ndarray]]

DEFAULT_K_THRESHOLD = 16384


class IterativeMerging:
    """Algorithm 2 over arbitrary per-field query backends.

    Args:
        fields: vector field names.
        query_fn: per-field top-k' search callback.
        metric: similarity used by every field.
        weights: weighted-sum weights.
        k_threshold: the paper's pre-defined cap on k'.
    """

    def __init__(
        self,
        fields: Sequence[str],
        query_fn: FieldQueryFn,
        metric: str = "l2",
        weights: Optional[Dict[str, float]] = None,
        k_threshold: int = DEFAULT_K_THRESHOLD,
        aggregation: str = "sum",
    ):
        self.fields = tuple(fields)
        self.query_fn = query_fn
        self.metric = resolve_metric(metric)
        self.agg = WeightedSum(self.fields, weights)
        #: monotone aggregation over keyed per-field scores: "sum"
        #: (weighted sum), "avg", "min" (rank by worst factor — AND-style
        #: matching, e.g. multi-factor authentication), "max" (best
        #: factor, OR-style), or a callable.
        self.aggregation = aggregation
        self.k_threshold = int(k_threshold)
        #: rounds executed by the last search (diagnostics/benchmarks)
        self.last_rounds = 0

    def search_one(
        self, queries: Dict[str, np.ndarray], k: int
    ) -> List[Tuple[int, float]]:
        """Top-k entities for one query entity; keyed scores returned
        in the metric's native direction (distances positive)."""
        k_prime = k
        self.last_rounds = 0
        lists: List[RankedList] = []
        while k_prime < self.k_threshold:
            self.last_rounds += 1
            lists = self._run_round(queries, k_prime)
            determined = nra_determined_topk(lists, k, agg=self.aggregation)
            if determined is not None:
                return self._unkey(determined)
            k_prime *= 2
        if not lists or self.last_rounds == 0:
            self.last_rounds += 1
            lists = self._run_round(queries, min(k_prime, self.k_threshold))
        return self._unkey(nra_best_effort_topk(lists, k, agg=self.aggregation))

    def _run_round(self, queries: Dict[str, np.ndarray], k_prime: int):
        lists = []
        for f in self.fields:
            ids, raw = self.query_fn(f, np.asarray(queries[f], dtype=np.float32), k_prime)
            lists.append(
                RankedList.from_metric_scores(
                    ids, raw, self.metric.higher_is_better, self.agg.weights[f]
                )
            )
        return lists

    def _unkey(self, keyed: List[Tuple[int, float]]) -> List[Tuple[int, float]]:
        if self.metric.higher_is_better:
            return keyed
        return [(item_id, -score) for item_id, score in keyed]

    @classmethod
    def over_arrays(
        cls,
        field_data: Dict[str, np.ndarray],
        metric: str = "l2",
        weights: Optional[Dict[str, float]] = None,
        ids: Optional[np.ndarray] = None,
        index_type: str = "IVF_FLAT",
        k_threshold: int = DEFAULT_K_THRESHOLD,
        search_params: Optional[dict] = None,
        aggregation: str = "sum",
        **index_params,
    ) -> "IterativeMerging":
        """Build a self-contained instance with one index per field.

        This is the benchmark configuration of Fig. 16: each D_i gets
        an IVF_FLAT index and VectorQuery(q.v_i, D_i, k') hits it.
        """
        metric_obj = resolve_metric(metric)
        search_params = search_params or {}
        indexes = {}
        for f, mat in field_data.items():
            mat = np.asarray(mat, dtype=np.float32)
            index = create_index(index_type, mat.shape[1], metric=metric_obj.name, **index_params)
            if index.requires_training:
                index.train(mat)
            index.add(mat, ids=ids)
            indexes[f] = index

        def query_fn(field: str, query: np.ndarray, k_prime: int):
            index = indexes[field]
            k_eff = min(k_prime, index.ntotal)
            result = index.search(query, k_eff, **search_params)
            mask = result.ids[0] >= 0
            return result.ids[0][mask], result.scores[0][mask]

        instance = cls(
            sorted(field_data), query_fn, metric=metric_obj.name,
            weights=weights, k_threshold=k_threshold, aggregation=aggregation,
        )
        instance.indexes = indexes
        return instance
