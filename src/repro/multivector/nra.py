"""Fagin's NRA (No Random Access) machinery for multi-vector top-k.

The termination rule backing line 5 of Algorithm 2 ("if k results are
fully determined with NRA on all R_i then return"): an entity's
aggregated score is exactly known once it appears in *every* ranked
list; entities missing from a list have an optimistic bound that uses
the worst score emitted by that list so far.  Top-k is determined when
k fully-seen entities beat every other entity's optimistic bound and
the frontier bound of entirely-unseen entities.

Everything here works in a *keyed* score space where higher is better
(distances are negated), so one implementation serves every metric.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class RankedList:
    """One field's ranked results: ids best-first with keyed scores.

    ``scores`` must be non-increasing (higher = better).  Build with
    :meth:`from_metric_scores` to get the keying right.
    """

    ids: np.ndarray
    scores: np.ndarray

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.scores = np.asarray(self.scores, dtype=np.float64)
        if self.ids.shape != self.scores.shape or self.ids.ndim != 1:
            raise ValueError("ids and scores must be matching 1-D arrays")
        if len(self.scores) > 1 and np.any(np.diff(self.scores) > 1e-9):
            raise ValueError("RankedList scores must be non-increasing (keyed)")

    def __len__(self) -> int:
        return len(self.ids)

    @property
    def worst_emitted(self) -> float:
        """Keyed score of the last (worst) emitted entry; +inf when empty.

        An empty list gives no pruning information, so unseen entities
        keep an unbounded optimistic contribution.
        """
        return float(self.scores[-1]) if len(self.scores) else np.inf

    @classmethod
    def from_metric_scores(
        cls, ids: np.ndarray, raw_scores: np.ndarray,
        higher_is_better: bool, weight: float = 1.0,
    ) -> "RankedList":
        """Key raw metric scores: weight them and flip distances."""
        keyed = weight * np.asarray(raw_scores, dtype=np.float64)
        if not higher_is_better:
            keyed = -keyed
        order = np.argsort(-keyed, kind="stable")
        return cls(np.asarray(ids, dtype=np.int64)[order], keyed[order])


#: named monotone aggregations over *keyed* per-field scores (higher =
#: better after RankedList keying).  With distance metrics, keyed
#: scores are negated distances, so ``"min"`` here means "rank by the
#: worst factor" — the conservative AND-style matching used by e.g.
#: multi-factor authentication — and ``"max"`` means "rank by the best
#: factor" (OR-style).
AGGREGATIONS: Dict[str, Callable] = {
    "sum": lambda values: float(np.sum(values)),
    "avg": lambda values: float(np.mean(values)),
    "min": lambda values: float(np.min(values)),
    "max": lambda values: float(np.max(values)),
}


def resolve_aggregation(agg) -> Callable:
    """Resolve a named or callable monotone aggregation."""
    if callable(agg):
        return agg
    try:
        return AGGREGATIONS[agg]
    except KeyError:
        raise KeyError(
            f"unknown aggregation {agg!r}; available: {sorted(AGGREGATIONS)}"
        ) from None


def _gather(lists: Sequence[RankedList]):
    """Collect per-entity seen contributions across lists.

    Returns (entity -> per-list keyed score dict, worst_emitted array).
    """
    seen: Dict[int, Dict[int, float]] = {}
    for li, ranked in enumerate(lists):
        for item_id, score in zip(ranked.ids.tolist(), ranked.scores.tolist()):
            if item_id < 0:
                continue
            seen.setdefault(item_id, {})[li] = score
    worst = np.array([r.worst_emitted for r in lists])
    return seen, worst


def _upper_bound(contribs: Dict[int, float], worst: np.ndarray, mu: int, g) -> float:
    """Optimistic aggregate: unseen fields take the list's worst emitted
    value (the best score the entity could still have there) — valid
    for any monotone non-decreasing g."""
    values = np.array([
        contribs.get(li, worst[li]) for li in range(mu)
    ])
    return g(values)


def nra_determined_topk(
    lists: Sequence[RankedList], k: int, agg="sum",
) -> Optional[List[Tuple[int, float]]]:
    """NRA termination check over complete ranked lists.

    Works for any monotone aggregation ``agg`` (name or callable over a
    keyed per-field score vector).  Returns the exact keyed top-k as
    (id, keyed_score) when fully determined, else ``None`` (the caller
    should deepen its lists — Algorithm 2 doubles k').
    """
    g = resolve_aggregation(agg)
    mu = len(lists)
    seen, worst = _gather(lists)
    frontier = g(worst) if np.all(np.isfinite(worst)) else np.inf

    exact: List[Tuple[float, int]] = []
    best_partial_upper = -np.inf
    for item_id, contribs in seen.items():
        if len(contribs) == mu:
            exact.append((g(np.array([contribs[li] for li in range(mu)])), item_id))
        else:
            best_partial_upper = max(
                best_partial_upper, _upper_bound(contribs, worst, mu, g)
            )

    if len(exact) < k:
        return None
    exact.sort(reverse=True)
    kth = exact[k - 1][0]
    threat = max(best_partial_upper, frontier)
    if kth >= threat:
        return [(item_id, score) for score, item_id in exact[:k]]
    return None


def nra_best_effort_topk(
    lists: Sequence[RankedList], k: int, agg="sum",
) -> List[Tuple[int, float]]:
    """Best-effort top-k when termination fails (the NRA-k baseline).

    Fully-seen entities rank by exact score; partially-seen entities
    fill remaining slots by optimistic bound.  This is what the
    paper's "NRA-50 is fast but the recall is only 0.1" baseline does:
    with shallow lists most entities are partial and the guesses are
    poor.
    """
    g = resolve_aggregation(agg)
    mu = len(lists)
    seen, worst = _gather(lists)
    finite_worst = np.where(np.isfinite(worst), worst, 0.0)
    scored: List[Tuple[float, int, int]] = []  # (key, fully_seen, id)
    for item_id, contribs in seen.items():
        full = len(contribs) == mu
        if full:
            key = g(np.array([contribs[li] for li in range(mu)]))
        else:
            key = _upper_bound(contribs, finite_worst, mu, g)
        scored.append((key, int(full), item_id))
    # Prefer fully-seen on ties, then higher key.
    scored.sort(key=lambda t: (t[0], t[1]), reverse=True)
    return [(item_id, key) for key, __, item_id in scored[:k]]


def streaming_nra(
    lists: Sequence[RankedList], k: int, max_depth: Optional[int] = None,
    agg="sum",
) -> Tuple[List[Tuple[int, float]], int]:
    """Classic depth-by-depth NRA with sorted access only.

    Consumes the lists one position at a time (round-robin), updating
    bounds after every access — the expensive heap-maintenance pattern
    the paper's iterative merging avoids.  Returns (top-k, depth
    consumed).  This exists as the faithful baseline for Fig. 16a.
    """
    g = resolve_aggregation(agg)
    mu = len(lists)
    depth_limit = max_depth or max(len(r) for r in lists)
    seen: Dict[int, Dict[int, float]] = {}
    worst = np.full(mu, np.inf)

    for depth in range(depth_limit):
        progressed = False
        for li, ranked in enumerate(lists):
            if depth < len(ranked):
                progressed = True
                item_id = int(ranked.ids[depth])
                score = float(ranked.scores[depth])
                worst[li] = score
                if item_id >= 0:
                    seen.setdefault(item_id, {})[li] = score
        if not progressed:
            break
        # Termination check after each round (this is the per-access
        # bookkeeping NRA is known to spend its time on).
        result = _check_determined(seen, worst, mu, k, g)
        if result is not None:
            return result, depth + 1
    best = nra_best_effort_topk(
        [RankedList(r.ids[: depth_limit], r.scores[: depth_limit]) for r in lists],
        k, agg=g,
    )
    return best, depth_limit


def _check_determined(seen, worst, mu, k, g):
    frontier = g(worst) if np.all(np.isfinite(worst)) else np.inf
    exact = []
    best_partial = -np.inf
    for item_id, contribs in seen.items():
        if len(contribs) == mu:
            exact.append((g(np.array([contribs[li] for li in range(mu)])), item_id))
        else:
            best_partial = max(best_partial, _upper_bound(contribs, worst, mu, g))
    if len(exact) < k:
        return None
    exact.sort(reverse=True)
    if exact[k - 1][0] >= max(best_partial, frontier):
        return [(item_id, score) for score, item_id in exact[:k]]
    return None
