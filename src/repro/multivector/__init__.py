"""Multi-vector query processing (paper Sec. 4.2).

Entities described by ``mu`` vectors are ranked by a monotonic
aggregation (weighted sum here) of per-vector similarities.  Three
algorithms:

* **naive** — per-field top-k union, then exact rerank (the widely
  used ML-style baseline; can miss many true results);
* **vector fusion** — concatenate per-entity vectors, aggregate the
  query, answer with a single search (needs a decomposable metric:
  inner product, or squared L2);
* **iterative merging** — Algorithm 2: per-field top-k' queries with
  doubling k', checked by Fagin's NRA termination rule.
"""

from repro.multivector.aggregate import WeightedSum
from repro.multivector.nra import (
    RankedList,
    nra_determined_topk,
    nra_best_effort_topk,
    streaming_nra,
)
from repro.multivector.fusion import VectorFusion
from repro.multivector.iterative import IterativeMerging
from repro.multivector.naive import naive_multi_vector_search
from repro.multivector.searcher import MultiVectorSearcher

__all__ = [
    "WeightedSum",
    "RankedList",
    "nra_determined_topk",
    "nra_best_effort_topk",
    "streaming_nra",
    "VectorFusion",
    "IterativeMerging",
    "naive_multi_vector_search",
    "MultiVectorSearcher",
]
