"""Monotonic aggregation functions for multi-vector scoring.

The paper assumes the aggregation ``g`` is monotonic (non-decreasing in
every per-field similarity) — weighted sum, average, min/max all
qualify.  Weighted sum is the one used in the evaluation (Sec. 7.6).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.metrics import Metric, get_metric


class WeightedSum:
    """g(f_0, ..., f_{mu-1}) = sum_i w_i * f_i with non-negative weights."""

    def __init__(self, fields: Sequence[str], weights: Optional[Dict[str, float]] = None):
        self.fields = tuple(fields)
        if not self.fields:
            raise ValueError("aggregation needs at least one field")
        weights = weights or {}
        self.weights = {f: float(weights.get(f, 1.0)) for f in self.fields}
        if any(w < 0 for w in self.weights.values()):
            raise ValueError("weighted-sum weights must be non-negative")

    def combine(self, per_field: Dict[str, np.ndarray]) -> np.ndarray:
        """Aggregate aligned per-field score arrays."""
        total = None
        for f in self.fields:
            contrib = self.weights[f] * np.asarray(per_field[f], dtype=np.float64)
            total = contrib if total is None else total + contrib
        return total

    def exact_scores(
        self,
        queries: Dict[str, np.ndarray],
        field_vectors: Dict[str, np.ndarray],
        metric: Metric,
    ) -> np.ndarray:
        """Aggregated scores of one query entity vs candidate entities.

        ``queries[f]`` is one vector; ``field_vectors[f]`` is the (n, d_f)
        matrix of candidate vectors, aligned across fields.
        """
        per_field = {}
        for f in self.fields:
            q = np.asarray(queries[f], dtype=np.float32)
            if q.ndim == 1:
                q = q[np.newaxis, :]
            per_field[f] = metric.pairwise(q, field_vectors[f])[0]
        return self.combine(per_field)


def resolve_metric(metric) -> Metric:
    """Shared helper so every multi-vector path validates the same way."""
    return get_metric(metric)
