"""Cost model for attribute-filtering strategy selection (strategy D).

Costs are measured in *equivalent vector-distance computations* — the
dominant term for all three strategies — plus small per-row overheads
for bitmap tests and attribute checks.  The shape matters, not the
absolute constants: A is linear in passing rows, B pays the index scan
plus bitmap testing, C pays the index scan plus theta*k attribute
checks but fails when the attribute constraint is too selective.

:class:`CalibratedCostModel` closes the loop: executed queries report
their exact work counters back (``distance_evals``, ``rows_scanned``,
``buckets_probed`` from :mod:`repro.obs.profile`), and a per-strategy
EWMA coefficient scales future analytical estimates toward measured
reality.  :class:`AdaptivePlanner` builds on that to pick the strategy
*and* the index knobs (``nprobe``, ``ef``/``search_l``) per query, and
round-trips its calibration state through a plain dict so the LSM
manifest can persist it across restarts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.obs import get_obs
from repro.obs import events as obs_events
from repro.utils import EwmaCalibrator


@dataclass(frozen=True)
class StrategyCosts:
    """Estimated costs (arbitrary units) for strategies A, B, C."""

    a: float
    b: float
    c: float

    def best(self) -> str:
        pairs = [("A", self.a), ("B", self.b), ("C", self.c)]
        return min(pairs, key=lambda p: p[1])[0]


@dataclass
class CostModel:
    """Analytical strategy cost estimates.

    Attributes:
        bitmap_test_cost: relative cost of one bitmap membership test
            vs one vector distance.
        attr_check_cost: relative cost of one attribute lookup+compare.
        infeasible: cost assigned to a strategy that cannot satisfy
            the query (e.g. C when passing rows < k).
    """

    #: calibrated against this substrate: a bitmap probe is a sorted
    #: membership test per scanned row, comparable in cost to one
    #: vectorized distance (in the paper's C++ engine it is far
    #: cheaper, which is why B wins more often there).
    bitmap_test_cost: float = 0.8
    attr_check_cost: float = 0.05
    infeasible: float = float("inf")

    def estimate(
        self,
        n: int,
        passing_fraction: float,
        k: int,
        scanned_fraction: float,
        theta: float = 1.1,
    ) -> StrategyCosts:
        """Costs for one query.

        Args:
            n: rows in the dataset/partition.
            passing_fraction: fraction of rows satisfying ``C_A``.
            k: requested result count.
            scanned_fraction: fraction of rows the vector index scans
                (for IVF: roughly nprobe/nlist, bucket-size weighted).
            theta: strategy C's over-search factor.
        """
        passing = passing_fraction * n
        scanned = scanned_fraction * n

        cost_a = passing  # full distance computation per passing row
        # B scans the index's buckets but only computes distances for
        # rows passing the bitmap; every scanned row pays a bitmap test.
        cost_b = scanned * passing_fraction + scanned * self.bitmap_test_cost
        if passing < k:
            cost_c = self.infeasible
        else:
            # C's selectivity-aware fetch requests theta*k/p candidates
            # in one round: index scan plus per-candidate attribute
            # checks and top-k' maintenance.
            fetch = theta * k / max(passing_fraction, 1e-9)
            cost_c = scanned + fetch * (self.attr_check_cost + 0.02)
        return StrategyCosts(cost_a, cost_b, cost_c)


def weighted_scanned_fraction(
    nprobe: int, bucket_sizes: Optional[Sequence[int]], nlist: Optional[int] = None
) -> float:
    """Fraction of rows an IVF probe of ``nprobe`` buckets scans.

    Buckets are chosen by centroid proximity, which size-biases the
    expectation: a query is more likely to land near the centroid of a
    heavy bucket, so with bucket masses ``s_i`` the expected scanned
    mass per probe is ``sum(s_i^2) / total`` rows — the size-biased
    mean — not the naive ``total / nlist``.  For balanced buckets this
    reduces to exactly ``nprobe / nlist``; under skew (the common case
    after k-means on clustered data) it is strictly larger, which is
    why the unweighted ratio systematically underestimated strategy B
    and C costs.  Falls back to ``nprobe / nlist`` when sizes are
    unavailable, and to 1.0 for non-IVF (full-scan-equivalent) indexes.
    """
    if bucket_sizes is None or len(bucket_sizes) == 0:
        if not nlist:
            return 1.0
        return min(1.0, nprobe / nlist)
    sizes = np.asarray(bucket_sizes, dtype=np.float64)
    total = float(sizes.sum())
    if total <= 0.0:
        return 1.0
    if nprobe >= len(sizes):
        return 1.0
    biased_mean = float((sizes * sizes).sum()) / total
    return min(1.0, nprobe * biased_mean / total)


class CalibratedCostModel(CostModel):
    """Analytical costs corrected by online execution feedback.

    Keeps :class:`CostModel`'s closed-form shapes but learns one
    multiplicative coefficient per strategy from the exact work
    counters of executed queries:

        measured = distance_evals + attr_check_cost * rows_scanned
        coef_S  <- EWMA(coef_S, measured / raw_estimate_S)

    The coefficient absorbs everything the analytical form gets wrong
    on this substrate — numpy batching effects, bucket skew the
    estimator missed, graph traversal overshoot — without changing the
    model's structure.  Updates are deterministic (see
    :class:`~repro.utils.calibrate.EwmaCalibrator`), and the whole
    state round-trips through :meth:`to_dict` / :meth:`from_dict` so
    the LSM manifest can persist calibration across restarts.
    """

    def __init__(
        self,
        calibrator: Optional[EwmaCalibrator] = None,
        bitmap_test_cost: float = 0.8,
        attr_check_cost: float = 0.05,
    ):
        super().__init__(
            bitmap_test_cost=bitmap_test_cost, attr_check_cost=attr_check_cost
        )
        self.calibrator = calibrator or EwmaCalibrator()

    # -- estimation --------------------------------------------------------

    def raw_estimate(self, *args, **kwargs) -> StrategyCosts:
        """The uncorrected analytical estimate (calibration baseline)."""
        return CostModel.estimate(self, *args, **kwargs)

    def estimate(self, *args, **kwargs) -> StrategyCosts:
        raw = self.raw_estimate(*args, **kwargs)
        return StrategyCosts(
            a=self._corrected("A", raw.a),
            b=self._corrected("B", raw.b),
            c=self._corrected("C", raw.c),
        )

    def _corrected(self, strategy: str, raw: float) -> float:
        if not math.isfinite(raw):
            return raw
        return self.calibrator.correct(strategy, raw)

    # -- feedback ----------------------------------------------------------

    def measured_work(self, counters: Dict[str, int]) -> float:
        """Collapse exact work counters into the model's cost unit."""
        return float(counters.get("distance_evals", 0)) + self.attr_check_cost * float(
            counters.get("rows_scanned", 0)
        )

    def observe(
        self, strategy: str, raw_estimate: float, counters: Dict[str, int]
    ) -> float:
        """Fold one executed query's counters into ``strategy``'s coefficient.

        ``raw_estimate`` must be the *uncorrected* analytical cost so
        the coefficient converges to measured/analytical rather than
        chasing its own corrections.  Returns the updated coefficient.
        """
        if not math.isfinite(raw_estimate):
            return self.calibrator.coefficient(strategy)
        return self.calibrator.observe(
            strategy, raw_estimate, self.measured_work(counters)
        )

    def is_calibrated(self, strategy: str) -> bool:
        return self.calibrator.is_calibrated(strategy)

    def residuals(self) -> Dict[str, Dict[str, object]]:
        return self.calibrator.residuals()

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "bitmap_test_cost": self.bitmap_test_cost,
            "attr_check_cost": self.attr_check_cost,
            "calibration": self.calibrator.to_dict(),
        }

    @classmethod
    def from_dict(cls, state: Optional[Dict[str, object]]) -> "CalibratedCostModel":
        if not state:
            return cls()
        return cls(
            calibrator=EwmaCalibrator.from_dict(state.get("calibration")),
            bitmap_test_cost=float(state.get("bitmap_test_cost", 0.8)),
            attr_check_cost=float(state.get("attr_check_cost", 0.05)),
        )


#: graph beam search visits roughly this many nodes per admitted result
#: (average out-degree effect); the calibration coefficient absorbs the
#: per-dataset error in this constant.
_GRAPH_EXPANSION = 8.0

#: candidate nprobe values, probed smallest-first.
_NPROBE_GRID = (1, 2, 4, 8, 16, 32, 64, 128, 256)

_EF_MIN = 16
_EF_MAX = 512

#: emit a planner.calibration journal event on the first and then
#: every Nth observation of a strategy (count-keyed: deterministic).
_CALIBRATION_EVENT_EVERY = 32


@dataclass
class QueryPlan:
    """One query's plan: chosen strategy, knobs, and cost estimates.

    ``estimated`` is the calibrated cost per strategy (what the choice
    was made on); ``raw`` is the uncorrected analytical cost (what
    feedback is measured against).  EXPLAIN renders both next to the
    executed counters so estimation error is visible per query.
    """

    strategy: str
    nprobe: Optional[int]
    ef: Optional[int]
    search_l: Optional[int]
    theta: float
    estimated: StrategyCosts
    raw: StrategyCosts
    passing_fraction: float
    scanned_fraction: float
    n: int
    k: int
    #: bytes of stored code the index reads per scanned row
    #: (:meth:`repro.index.base.VectorIndex.row_code_bytes`); drives the
    #: ``bytes_read`` counter prediction that separates quantized scans
    #: (1 byte/dim SQ8, m bytes/row PQ) from full-width flat scans.
    row_bytes: Optional[int] = None

    def knobs(self) -> Dict[str, int]:
        """The index search params this plan injects, by knob name."""
        out: Dict[str, int] = {}
        if self.nprobe is not None:
            out["nprobe"] = self.nprobe
        if self.ef is not None:
            out["ef"] = self.ef
        if self.search_l is not None:
            out["search_l"] = self.search_l
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "knobs": self.knobs(),
            "theta": self.theta,
            "passing_fraction": self.passing_fraction,
            "scanned_fraction": self.scanned_fraction,
            "estimated_cost": {
                "A": self.estimated.a, "B": self.estimated.b, "C": self.estimated.c,
            },
            "analytical_cost": {
                "A": self.raw.a, "B": self.raw.b, "C": self.raw.c,
            },
        }


class AdaptivePlanner:
    """Feedback-calibrated per-query strategy and knob selection.

    Strategy D from the paper (Sec. 4.1) picks among A/B/C with an
    analytical cost model; this planner adds two things on top:

    * **knob selection** — ``nprobe`` (IVF) is the smallest grid value
      whose expected *admissible* scanned rows reach ``theta * k``;
      ``ef``/``search_l`` (graph) is ``theta * k / p`` clamped to
      ``[max(16, k), 512]`` — both sized so the index surfaces enough
      filter-passing candidates in one pass;
    * **calibration** — estimates are corrected by per-strategy EWMA
      coefficients learned from executed queries' exact counters
      (:meth:`observe`), so the A/B/C break-even points drift toward
      where this machine actually lands rather than where the
      analytical constants put them.

    Thread-safety: the underlying calibrator is locked; planning reads
    are unlocked snapshots, which is fine — a stale coefficient costs
    at most one suboptimal plan.
    """

    def __init__(
        self,
        model: Optional[CalibratedCostModel] = None,
        theta: float = 1.1,
    ):
        self.model = model or CalibratedCostModel()
        self.theta = float(theta)

    # -- knob selection ----------------------------------------------------

    def select_nprobe(
        self,
        n: int,
        passing_fraction: float,
        k: int,
        nlist: int,
        bucket_sizes: Optional[Sequence[int]] = None,
    ) -> int:
        """Smallest grid ``nprobe`` expected to surface ``theta*k`` admissible rows."""
        target = self.theta * k
        p = max(passing_fraction, 1e-9)
        best = min(nlist, _NPROBE_GRID[-1])
        for cand in _NPROBE_GRID:
            if cand > nlist:
                break
            frac = weighted_scanned_fraction(cand, bucket_sizes, nlist)
            if frac * n * p >= target:
                return cand
            best = cand
        return best

    def select_ef(self, k: int, passing_fraction: float) -> int:
        """Admissible-result beam width for in-traversal filtered search.

        ``ef`` counts *admissible* entries in the result heap, so the
        1/p traversal widening through filtered-out territory happens
        automatically — sizing ``ef`` by ``theta*k/p`` would multiply
        that widening a second time (measured: ~6x slower at p=0.1
        with no recall gain).  ``2*theta*k`` keeps recall at exact
        levels across the fig14 selectivity sweep.
        """
        del passing_fraction  # widening is traversal-side, not beam-side
        ef = int(math.ceil(2.0 * self.theta * k))
        return max(min(ef, _EF_MAX), _EF_MIN, k)

    # -- planning ----------------------------------------------------------

    def plan(
        self,
        n: int,
        passing_fraction: float,
        k: int,
        index_type: str = "IVF_FLAT",
        nlist: Optional[int] = None,
        bucket_sizes: Optional[Sequence[int]] = None,
        supports_pushdown: bool = True,
        row_bytes: Optional[int] = None,
    ) -> QueryPlan:
        """Choose strategy + knobs for one query from calibrated costs."""
        n = max(n, 1)
        index_type = (index_type or "").upper()
        graph = index_type in ("HNSW", "NSG")
        nprobe = ef = search_l = None
        if graph:
            width = self.select_ef(k, passing_fraction)
            if index_type == "HNSW":
                ef = width
            else:
                search_l = width
            # The beam visits ~expansion nodes per admitted result and
            # traverses through ~1/p filtered-out nodes to find each.
            p = max(passing_fraction, 1e-9)
            scanned_fraction = min(1.0, width * _GRAPH_EXPANSION / (n * p))
        elif nlist:
            nprobe = self.select_nprobe(n, passing_fraction, k, nlist, bucket_sizes)
            scanned_fraction = weighted_scanned_fraction(nprobe, bucket_sizes, nlist)
        else:
            scanned_fraction = 1.0
        raw = self.model.raw_estimate(
            n, passing_fraction, k, scanned_fraction, self.theta
        )
        estimated = self.model.estimate(
            n, passing_fraction, k, scanned_fraction, self.theta
        )
        if not supports_pushdown:
            estimated = StrategyCosts(estimated.a, float("inf"), estimated.c)
        return QueryPlan(
            strategy=estimated.best(),
            nprobe=nprobe,
            ef=ef,
            search_l=search_l,
            theta=self.theta,
            estimated=estimated,
            raw=raw,
            passing_fraction=passing_fraction,
            scanned_fraction=scanned_fraction,
            n=n,
            k=k,
            row_bytes=row_bytes,
        )

    # -- feedback ----------------------------------------------------------

    @staticmethod
    def _raw_counters(plan: QueryPlan, strategy: str) -> Dict[str, float]:
        """Analytical per-query counter predictions for one strategy."""
        n, p, scanned = plan.n, plan.passing_fraction, plan.scanned_fraction
        if strategy == "A":
            rows = dist = p * n
        elif strategy == "B":
            rows = scanned * n
            dist = scanned * n * p
        else:
            rows = scanned * n
            dist = scanned * n
        out = {"rows_scanned": rows, "distance_evals": dist}
        if plan.row_bytes and strategy in ("B", "C"):
            # Index-scan strategies walk the stored codes; A touches the
            # raw float vectors directly, outside the index's code path.
            out["bytes_read"] = rows * plan.row_bytes
        return out

    def observe(self, plan: QueryPlan, counters: Dict[str, int], nq: int = 1) -> None:
        """Report one executed plan's exact counters back to the model.

        ``counters`` covers the whole batch; ``nq`` normalizes to
        per-query so batch size never leaks into the coefficients.
        Two things are calibrated: the scalar cost (drives strategy
        choice) and each work counter individually (drives EXPLAIN's
        estimated-vs-actual view).
        """
        strategy = plan.strategy.rsplit("->", 1)[-1]
        raw = {"A": plan.raw.a, "B": plan.raw.b, "C": plan.raw.c}.get(strategy)
        if raw is None:
            return
        nq = max(int(nq), 1)
        scaled = {key: value / nq for key, value in counters.items()}
        self.model.observe(strategy, raw, scaled)
        for name, predicted in self._raw_counters(plan, strategy).items():
            self.model.calibrator.observe(
                f"{strategy}:{name}", predicted, scaled.get(name, 0.0)
            )
        # Snapshot the coefficient every Nth observation of a strategy:
        # the cadence keys off the calibrator's own observation count,
        # so seeded runs emit identical event sequences.
        count = self.model.calibrator.observations(strategy)
        if count == 1 or count % _CALIBRATION_EVENT_EVERY == 0:
            get_obs().events.emit(
                obs_events.PLANNER_CALIBRATION,
                strategy=strategy,
                observations=count,
                coefficient=round(self.model.calibrator.coefficient(strategy), 6),
            )

    def estimated_counters(self, plan: QueryPlan) -> Dict[str, float]:
        """Calibrated per-query counter predictions (EXPLAIN's estimate side)."""
        strategy = plan.strategy.rsplit("->", 1)[-1]
        return {
            name: self.model.calibrator.correct(f"{strategy}:{name}", raw)
            for name, raw in self._raw_counters(plan, strategy).items()
        }

    def residuals(self) -> Dict[str, Dict[str, object]]:
        return self.model.residuals()

    # -- persistence -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"theta": self.theta, "model": self.model.to_dict()}

    @classmethod
    def from_dict(cls, state: Optional[Dict[str, object]]) -> "AdaptivePlanner":
        if not state:
            return cls()
        return cls(
            model=CalibratedCostModel.from_dict(state.get("model")),
            theta=float(state.get("theta", 1.1)),
        )
