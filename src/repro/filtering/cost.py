"""Cost model for attribute-filtering strategy selection (strategy D).

Costs are measured in *equivalent vector-distance computations* — the
dominant term for all three strategies — plus small per-row overheads
for bitmap tests and attribute checks.  The shape matters, not the
absolute constants: A is linear in passing rows, B pays the index scan
plus bitmap testing, C pays the index scan plus theta*k attribute
checks but fails when the attribute constraint is too selective.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StrategyCosts:
    """Estimated costs (arbitrary units) for strategies A, B, C."""

    a: float
    b: float
    c: float

    def best(self) -> str:
        pairs = [("A", self.a), ("B", self.b), ("C", self.c)]
        return min(pairs, key=lambda p: p[1])[0]


@dataclass
class CostModel:
    """Analytical strategy cost estimates.

    Attributes:
        bitmap_test_cost: relative cost of one bitmap membership test
            vs one vector distance.
        attr_check_cost: relative cost of one attribute lookup+compare.
        infeasible: cost assigned to a strategy that cannot satisfy
            the query (e.g. C when passing rows < k).
    """

    #: calibrated against this substrate: a bitmap probe is a sorted
    #: membership test per scanned row, comparable in cost to one
    #: vectorized distance (in the paper's C++ engine it is far
    #: cheaper, which is why B wins more often there).
    bitmap_test_cost: float = 0.8
    attr_check_cost: float = 0.05
    infeasible: float = float("inf")

    def estimate(
        self,
        n: int,
        passing_fraction: float,
        k: int,
        scanned_fraction: float,
        theta: float = 1.1,
    ) -> StrategyCosts:
        """Costs for one query.

        Args:
            n: rows in the dataset/partition.
            passing_fraction: fraction of rows satisfying ``C_A``.
            k: requested result count.
            scanned_fraction: fraction of rows the vector index scans
                (for IVF: roughly nprobe/nlist, bucket-size weighted).
            theta: strategy C's over-search factor.
        """
        passing = passing_fraction * n
        scanned = scanned_fraction * n

        cost_a = passing  # full distance computation per passing row
        # B scans the index's buckets but only computes distances for
        # rows passing the bitmap; every scanned row pays a bitmap test.
        cost_b = scanned * passing_fraction + scanned * self.bitmap_test_cost
        if passing < k:
            cost_c = self.infeasible
        else:
            # C's selectivity-aware fetch requests theta*k/p candidates
            # in one round: index scan plus per-candidate attribute
            # checks and top-k' maintenance.
            fetch = theta * k / max(passing_fraction, 1e-9)
            cost_c = scanned + fetch * (self.attr_check_cost + 0.02)
        return StrategyCosts(cost_a, cost_b, cost_c)
