"""Strategy E: partition-based attribute filtering (the paper's new one).

"It partitions the dataset based on the frequently searched attribute
and applies the cost-based approach for each partition ... if the
range of a specific partition is covered by the query range, then this
strategy does not need to check the attribute constraint anymore and
only focuses on vector query processing in that partition."

Partitions are equal-frequency slices of the attribute's sorted order,
built offline from historical data; the paper recommends roughly 1M
vectors per partition (configurable here).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.filtering.cost import CostModel
from repro.filtering.engine import AttributeFilterEngine, FilterResult
from repro.utils import ensure_positive, merge_topk


class PartitionedFilterEngine:
    """Equal-frequency attribute partitions, each with its own engine."""

    def __init__(
        self,
        vectors: np.ndarray,
        attr_values: np.ndarray,
        n_partitions: int,
        metric: str = "l2",
        ids: Optional[np.ndarray] = None,
        index_type: str = "IVF_FLAT",
        theta: float = 1.1,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
    ):
        vectors = np.asarray(vectors, dtype=np.float32)
        attr_values = np.asarray(attr_values, dtype=np.float64)
        n = len(vectors)
        self.n_partitions = min(ensure_positive(n_partitions, "n_partitions"), n)
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)

        order = np.argsort(attr_values, kind="stable")
        bounds = np.linspace(0, n, self.n_partitions + 1).astype(int)
        self.partitions: List[AttributeFilterEngine] = []
        #: inclusive attribute ranges per partition
        self.ranges: List[Tuple[float, float]] = []
        for p in range(self.n_partitions):
            lo, hi = bounds[p], bounds[p + 1]
            if hi <= lo:
                continue
            sel = order[lo:hi]
            engine = AttributeFilterEngine(
                vectors[sel], attr_values[sel], metric=metric, ids=ids[sel],
                index_type=index_type, theta=theta, cost_model=cost_model,
                seed=seed + p,
            )
            self.partitions.append(engine)
            self.ranges.append((float(attr_values[sel].min()), float(attr_values[sel].max())))
        self.metric = self.partitions[0].metric
        #: how many partitions the last query pruned / covered (diagnostics)
        self.last_pruned = 0
        self.last_covered = 0

    def search(
        self, query: np.ndarray, low: float, high: float, k: int, **search_params
    ) -> FilterResult:
        """Route the query to overlapping partitions only.

        Fully covered partitions skip C_A entirely (pure vector
        search); partially overlapping partitions run strategy D.
        """
        parts = []
        self.last_pruned = 0
        self.last_covered = 0
        used = []
        total = len(self)
        for engine, (pmin, pmax) in zip(self.partitions, self.ranges):
            if pmax < low or pmin > high:
                self.last_pruned += 1
                continue
            # Scale nprobe to the partition so the *scan fraction*
            # matches what the caller asked for on the whole dataset.
            params = dict(search_params)
            if "nprobe" in params and getattr(engine.index, "nlist", None):
                global_fraction = min(1.0, params["nprobe"] / max(
                    np.sqrt(total), engine.index.nlist
                ))
                params["nprobe"] = max(
                    1, int(np.ceil(global_fraction * engine.index.nlist))
                )
            if low <= pmin and pmax <= high:
                self.last_covered += 1
                result = engine.vector_only(query, k, **params)
            else:
                result = engine.strategy_d(query, low, high, k, **params)
            parts.append((result.ids, result.scores))
            used.append(result.strategy)
        ids, scores = merge_topk(parts, k, self.metric.higher_is_better)
        label = "E[" + ",".join(sorted(set(used))) + "]" if used else "E[]"
        return FilterResult(ids, scores, label, exact=False)

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    @classmethod
    def with_rows_per_partition(
        cls, vectors, attr_values, rows_per_partition: int = 1_000_000, **kwargs
    ) -> "PartitionedFilterEngine":
        """Paper guidance: "each partition contains roughly 1 million
        vectors" — scaled down via ``rows_per_partition`` here."""
        n = len(vectors)
        n_partitions = max(1, n // ensure_positive(rows_per_partition, "rows_per_partition"))
        return cls(vectors, attr_values, n_partitions, **kwargs)
