"""Attribute filtering (paper Sec. 4.1).

A hybrid query combines an attribute range constraint ``C_A`` (``a >=
p1 && a <= p2``) with a vector top-k constraint ``C_V``.  Five
strategies, exactly as the paper lays out (Figure 4):

* **A** — attribute-first, vector full scan (exact).
* **B** — attribute-first bitmap, vector search with pushdown.
* **C** — vector-first (search theta*k), attribute post-filter.
* **D** — cost-based choice among A/B/C (the AnalyticDB-V approach).
* **E** — partition-based: partition by the frequently-filtered
  attribute, run D per overlapping partition, and skip the attribute
  check entirely in partitions fully covered by the query range.
"""

from repro.filtering.cost import (
    AdaptivePlanner,
    CalibratedCostModel,
    CostModel,
    QueryPlan,
    StrategyCosts,
    weighted_scanned_fraction,
)
from repro.filtering.engine import AttributeFilterEngine, FilterResult
from repro.filtering.partition import PartitionedFilterEngine
from repro.filtering.frequency import AttributeUsageTracker

__all__ = [
    "AdaptivePlanner",
    "CalibratedCostModel",
    "CostModel",
    "QueryPlan",
    "StrategyCosts",
    "weighted_scanned_fraction",
    "AttributeFilterEngine",
    "FilterResult",
    "PartitionedFilterEngine",
    "AttributeUsageTracker",
]
