"""Strategies A–D over one dataset (or one partition).

The engine owns the vectors, one attribute column, and a vector index;
each strategy is a method so benchmarks can time them head-to-head
(Fig. 14) and strategy E can reuse D per partition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.filtering.cost import (
    CalibratedCostModel,
    CostModel,
    weighted_scanned_fraction,
)
from repro.index import create_index
from repro.index.base import VectorIndex
from repro.metrics import get_metric
from repro.obs.profile import (
    current_node,
    measurement_stage,
    profile_attr,
    profile_stage,
)
from repro.storage.attributes import AttributeColumn
from repro.utils import topk_from_scores


@dataclass
class FilterResult:
    """Outcome of one filtered query."""

    ids: np.ndarray
    scores: np.ndarray
    strategy: str
    exact: bool

    def __len__(self) -> int:
        return len(self.ids)


class AttributeFilterEngine:
    """Strategies A, B, C, D over one vector dataset + one attribute."""

    def __init__(
        self,
        vectors: np.ndarray,
        attr_values: np.ndarray,
        metric: str = "l2",
        ids: Optional[np.ndarray] = None,
        index: Optional[VectorIndex] = None,
        index_type: str = "IVF_FLAT",
        nlist: Optional[int] = None,
        theta: float = 1.1,
        cost_model: Optional[CostModel] = None,
        seed: int = 0,
    ):
        self.vectors = np.asarray(vectors, dtype=np.float32)
        self.metric = get_metric(metric)
        n = len(self.vectors)
        self.ids = (
            np.arange(n, dtype=np.int64) if ids is None else np.asarray(ids, dtype=np.int64)
        )
        order = np.argsort(self.ids)
        self.ids = self.ids[order]
        self.vectors = self.vectors[order]
        attr_values = np.asarray(attr_values, dtype=np.float64)[order]
        self.column = AttributeColumn(attr_values, self.ids)
        #: attribute values aligned with self.ids (row order) for O(1)
        #: post-filter checks in strategy C.
        self._attr_by_row = attr_values
        self.theta = float(theta)
        self.cost_model = cost_model or CostModel()

        if index is not None:
            self.index = index
        else:
            nlist = nlist or max(4, int(np.sqrt(max(n, 16))))
            self.index = create_index(
                index_type, self.vectors.shape[1], metric=self.metric.name,
                nlist=min(nlist, max(n, 1)), seed=seed,
            )
            if self.index.requires_training:
                self.index.train(self.vectors)
            self.index.add(self.vectors, ids=self.ids)

    # -- strategy A: attribute-first, vector full scan (exact) -------------

    def strategy_a(self, query: np.ndarray, low: float, high: float, k: int) -> FilterResult:
        candidates = self.column.range_query(low, high)
        if len(candidates) == 0:
            return self._empty("A", exact=True)
        node = current_node()
        if node is not None:
            node.count("rows_scanned", len(candidates))
            node.count("distance_evals", len(candidates))
            node.count("candidates_pruned", len(self.ids) - len(candidates))
        pos = np.searchsorted(self.ids, np.sort(candidates))
        cand_vectors = self.vectors[pos]
        scores = self.metric.pairwise(np.atleast_2d(query), cand_vectors)[0]
        top_ids, top_scores = topk_from_scores(
            scores, k, self.metric.higher_is_better, ids=self.ids[pos]
        )
        return FilterResult(top_ids, top_scores, "A", exact=True)

    # -- strategy B: attribute-first bitmap + vector search -------------------

    def strategy_b(
        self, query: np.ndarray, low: float, high: float, k: int, **search_params
    ) -> FilterResult:
        candidates = np.sort(self.column.range_query(low, high))
        if len(candidates) == 0:
            return self._empty("B", exact=False)
        result = self.index.search(
            np.atleast_2d(query), k, row_filter=candidates, **search_params
        )
        mask = result.ids[0] >= 0
        return FilterResult(result.ids[0][mask], result.scores[0][mask], "B", exact=False)

    # -- strategy C: vector-first, attribute post-check ------------------------

    def strategy_c(
        self, query: np.ndarray, low: float, high: float, k: int,
        max_rounds: int = 6, **search_params,
    ) -> FilterResult:
        """Search theta*k, keep passing rows; widen until k or exhausted.

        The initial fetch is selectivity-aware: expecting a fraction
        ``p`` of rows to pass, theta*k/p candidates are requested up
        front so the common case finishes in one round (the widening
        loop remains as the fallback for estimation error).
        """
        selectivity = max(self.column.selectivity(low, high), 1e-9)
        fetch = max(int(np.ceil(self.theta * k / selectivity)), k)
        found_ids = np.empty(0, dtype=np.int64)
        found_scores = np.empty(0, dtype=np.float64)
        last_pruned = 0
        for __ in range(max_rounds):
            fetch_eff = min(fetch, self.index.ntotal)
            result = self.index.search(np.atleast_2d(query), fetch_eff, **search_params)
            found_ids = result.ids[0]
            found_scores = result.scores[0]
            valid = found_ids >= 0
            found_ids, found_scores = found_ids[valid], found_scores[valid]
            last_pruned = 0
            if len(found_ids):
                pos = np.searchsorted(self.ids, found_ids)
                values = self._attr_by_row[pos]
                passing = (values >= low) & (values <= high)
                last_pruned = int((~passing).sum())
                found_ids, found_scores = found_ids[passing], found_scores[passing]
            if len(found_ids) >= k or fetch_eff >= self.index.ntotal:
                break
            fetch *= 2
        node = current_node()
        if node is not None and last_pruned:
            # Only the *final* round's prune count: each widening round
            # re-fetches a superset of the previous round's candidates,
            # so summing per-round prunes would bill every carried-over
            # candidate once per round it survived.
            node.count("candidates_pruned", last_pruned)
        return FilterResult(found_ids[:k], found_scores[:k], "C", exact=False)

    # -- strategy D: cost-based --------------------------------------------------

    def estimate_costs(self, low: float, high: float, k: int, nprobe: int = 8):
        n = max(len(self.ids), 1)
        passing_fraction = self.column.selectivity(low, high)
        scanned_fraction = self._scanned_fraction(nprobe)
        return self.cost_model.estimate(
            n, passing_fraction, k, scanned_fraction, self.theta
        )

    def _scanned_fraction(self, nprobe: int) -> float:
        """Bucket-size weighted fraction of rows an ``nprobe`` probe scans."""
        nlist = getattr(self.index, "nlist", None)
        if not nlist:
            return 1.0
        sizes = None
        if hasattr(self.index, "bucket_sizes"):
            sizes = self.index.bucket_sizes()
        return weighted_scanned_fraction(nprobe, sizes, nlist)

    def strategy_d(
        self, query: np.ndarray, low: float, high: float, k: int, **search_params
    ) -> FilterResult:
        nprobe = int(search_params.get("nprobe", 8))
        n = max(len(self.ids), 1)
        passing_fraction = self.column.selectivity(low, high)
        scanned_fraction = self._scanned_fraction(nprobe)
        costs = self.cost_model.estimate(
            n, passing_fraction, k, scanned_fraction, self.theta
        )
        choice = costs.best()
        profile_attr("cost_choice", choice)
        with measurement_stage("filter.exec", strategy=choice) as stage:
            if choice == "A":
                result = self.strategy_a(query, low, high, k)
            elif choice == "B":
                result = self.strategy_b(query, low, high, k, **search_params)
            else:
                result = self.strategy_c(query, low, high, k, **search_params)
        if isinstance(self.cost_model, CalibratedCostModel):
            raw = self.cost_model.raw_estimate(
                n, passing_fraction, k, scanned_fraction, self.theta
            )
            raw_cost = {"A": raw.a, "B": raw.b, "C": raw.c}[choice]
            self.cost_model.observe(choice, raw_cost, stage.total_counters())
        return FilterResult(result.ids, result.scores, f"D->{result.strategy}", result.exact)

    # -- uniform entry point ---------------------------------------------------------

    def search(
        self, query: np.ndarray, low: float, high: float, k: int,
        strategy: str = "D", **search_params,
    ) -> FilterResult:
        strategy = strategy.upper()
        with profile_stage("filter.search", requested=strategy) as stage:
            if strategy == "A":
                result = self.strategy_a(query, low, high, k)
            elif strategy == "B":
                result = self.strategy_b(query, low, high, k, **search_params)
            elif strategy == "C":
                result = self.strategy_c(query, low, high, k, **search_params)
            elif strategy == "D":
                result = self.strategy_d(query, low, high, k, **search_params)
            else:
                raise ValueError(f"unknown strategy {strategy!r} (A/B/C/D)")
            stage.set_attr("strategy", result.strategy)
        return result

    def vector_only(self, query: np.ndarray, k: int, **search_params) -> FilterResult:
        """Pure vector search — used by strategy E on covered partitions."""
        result = self.index.search(np.atleast_2d(query), k, **search_params)
        mask = result.ids[0] >= 0
        return FilterResult(result.ids[0][mask], result.scores[0][mask], "V", exact=False)

    # -- helpers -------------------------------------------------------------------------

    def _empty(self, strategy: str, exact: bool) -> FilterResult:
        return FilterResult(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64), strategy, exact
        )

    @property
    def attr_min(self) -> float:
        return self.column.min_value

    @property
    def attr_max(self) -> float:
        return self.column.max_value

    def __len__(self) -> int:
        return len(self.ids)
