"""Attribute usage tracking for offline partitioning decisions.

"We maintain the frequency of each searched attribute in a hash table
and increase the counter whenever a query refers to that attribute."
Strategy E partitions the data on the most frequently filtered
attribute.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple


class AttributeUsageTracker:
    """Hash-table counters over filtered attribute names."""

    def __init__(self):
        self._counts: Counter = Counter()
        #: recorded (low, high) ranges per attribute, for range-aware
        #: partitioning heuristics.
        self._ranges: Dict[str, List[Tuple[float, float]]] = {}

    def record(self, attribute: str, low: Optional[float] = None, high: Optional[float] = None) -> None:
        """Count one query touching ``attribute`` (optionally its range)."""
        self._counts[attribute] += 1
        if low is not None and high is not None:
            self._ranges.setdefault(attribute, []).append((float(low), float(high)))

    def count(self, attribute: str) -> int:
        return self._counts[attribute]

    def most_frequent(self) -> Optional[str]:
        """The attribute to partition on; None before any query."""
        if not self._counts:
            return None
        return self._counts.most_common(1)[0][0]

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def typical_range_width(self, attribute: str) -> Optional[float]:
        """Median queried range width (informs partition sizing)."""
        ranges = self._ranges.get(attribute)
        if not ranges:
            return None
        widths = sorted(high - low for low, high in ranges)
        return widths[len(widths) // 2]
