"""Consistent hashing for data sharding (paper Sec. 5.3).

"Data is sharded among the reader instances with consistent hashing."
Virtual nodes smooth the key distribution; adding or removing a node
only remaps the keys adjacent to its virtual positions.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Sequence

from repro.utils import ensure_positive


def _hash64(value: str) -> int:
    digest = hashlib.blake2b(value.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Hash ring with virtual nodes."""

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64):
        self.vnodes = ensure_positive(vnodes, "vnodes")
        self._ring: List[int] = []
        self._owner: Dict[int, str] = {}
        self._nodes: Dict[str, List[int]] = {}
        for node in nodes:
            self.add_node(node)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ValueError(f"node {node!r} already on the ring")
        positions = []
        for v in range(self.vnodes):
            pos = _hash64(f"{node}#{v}")
            # Collisions across nodes are astronomically unlikely with
            # 64-bit hashes but would silently corrupt ownership.
            if pos in self._owner:
                raise RuntimeError(f"hash collision at {pos}")
            bisect.insort(self._ring, pos)
            self._owner[pos] = node
            positions.append(pos)
        self._nodes[node] = positions

    def remove_node(self, node: str) -> None:
        positions = self._nodes.pop(node)
        for pos in positions:
            self._ring.remove(pos)
            del self._owner[pos]

    def route(self, key) -> str:
        """Owner node of ``key`` (clockwise successor on the ring)."""
        if not self._ring:
            raise RuntimeError("ring has no nodes")
        pos = _hash64(str(key))
        idx = bisect.bisect_right(self._ring, pos)
        if idx == len(self._ring):
            idx = 0
        return self._owner[self._ring[idx]]

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def load_distribution(self, keys) -> Dict[str, int]:
        """Keys per node — used to test balance."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
