"""The cluster facade: shared storage + coordinator + writer + readers.

Queries fan out to every reader (each owns one shard) and merge.  Two
timings are reported:

* wall-clock — honest in-process measurement (nodes run serially in
  one Python process);
* simulated parallel seconds — the max of per-node busy time for the
  batch, i.e. what an actual deployment with one node per machine
  would take.  Fig. 10b plots throughput from this value, which is
  where the near-linear scaling of the shared-storage design shows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import NodeNotFoundError, NoLiveReadersError
from repro.distributed.coordinator import Coordinator
from repro.distributed.node import ReaderNode, WriterNode
from repro.exec import ExecTimeoutError, QueryExecutor
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.obs import get_obs
from repro.obs import events as obs_events
from repro.obs.profile import QueryProfile, current_node, profile_stage
from repro.storage.filesystem import FileSystem, InMemoryObjectStore
from repro.utils import merge_topk_batch
from repro.utils.retry import RetryPolicy


@dataclass
class RespawnPolicy:
    """When/how the coordinator auto-replaces crashed readers.

    ``auto=True`` makes :meth:`MilvusCluster.search` respawn any dead
    reader (state rebuilt from shared storage) before fanning out,
    as long as the node is under ``max_respawns_per_node`` — the
    K8s-style crash-loop backoff cap.  With ``auto=False`` (default)
    dead readers are merely skipped and reported.
    """

    auto: bool = False
    max_respawns_per_node: int = 3


@dataclass
class ClusterSearchResult:
    """Merged results plus the two timings and degradation status.

    ``degraded`` is True when at least one shard did not answer;
    ``missing_shards`` names the readers whose shards are absent from
    the merged result — the client's signal that recall is partial,
    not a lie.

    ``per_node_seconds`` is each answering reader's serve time for
    *this* call (span-derived, so concurrent searches never
    double-count); ``simulated_parallel_seconds`` is its max.  Lazy
    index builds triggered by the query are reported separately as
    ``index_build_seconds`` instead of polluting node latency.
    ``trace_id`` links to the query's span tree when tracing is on.
    """

    result: SearchResult
    wall_seconds: float
    simulated_parallel_seconds: float
    degraded: bool = False
    missing_shards: List[str] = field(default_factory=list)
    per_node_seconds: Dict[str, float] = field(default_factory=dict)
    index_build_seconds: float = 0.0
    trace_id: Optional[str] = None
    #: per-shard work-counter profile; populated with ``explain=True``
    #: or when the profiler is enabled (see :mod:`repro.obs.profile`).
    profile: Optional[QueryProfile] = None


class MilvusCluster:
    """Single-writer / multi-reader shared-storage cluster."""

    def __init__(
        self,
        n_readers: int,
        dim: int,
        metric: str = "l2",
        index_type: str = "IVF_FLAT",
        index_params: Optional[dict] = None,
        shared: Optional[FileSystem] = None,
        respawn_policy: Optional[RespawnPolicy] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if n_readers <= 0:
            raise ValueError("need at least one reader")
        self.shared = shared or InMemoryObjectStore()
        self.coordinator = Coordinator()
        self.respawn_policy = respawn_policy or RespawnPolicy()
        self.writer = WriterNode(self.shared, retry=retry)
        self.metric = get_metric(metric)
        self.dim = dim
        self.readers: Dict[str, ReaderNode] = {}
        for i in range(n_readers):
            self.add_reader(
                ReaderNode(
                    f"reader-{i}", self.shared, dim, self.metric.name,
                    index_type, index_params,
                )
            )

    # -- membership -------------------------------------------------------

    def add_reader(self, reader: ReaderNode) -> None:
        self.coordinator.register_reader(reader.node_id)
        self.readers[reader.node_id] = reader

    def _reader_or_raise(self, node_id: str) -> ReaderNode:
        try:
            return self.readers[node_id]
        except KeyError:
            raise NodeNotFoundError(
                f"unknown reader node {node_id!r}; cluster has "
                f"{sorted(self.readers)}"
            ) from None

    def crash_reader(self, node_id: str) -> None:
        self._reader_or_raise(node_id).crash()

    def restart_reader(self, node_id: str) -> None:
        """K8s-style replacement: same identity, state from shared storage."""
        dead = self._reader_or_raise(node_id)
        self.readers[node_id] = ReaderNode.respawn(dead)

    def _auto_respawn(self) -> List[str]:
        """Respawn dead readers the policy allows; returns their ids."""
        obs = get_obs()
        respawned = []
        for node_id, reader in list(self.readers.items()):
            if reader.alive:
                continue
            if self.coordinator.respawns_of(node_id) >= (
                self.respawn_policy.max_respawns_per_node
            ):
                continue  # crash-looping node: leave it down, degrade
            self.coordinator.record_respawn(node_id)
            with obs.tracer.span("cluster.respawn", node=node_id):
                self.readers[node_id] = ReaderNode.respawn(reader)
            obs.registry.counter("cluster_respawns_total", node=node_id).inc()
            obs.events.emit(
                obs_events.READER_RESPAWN, node=node_id,
                respawns=self.coordinator.respawns_of(node_id))
            respawned.append(node_id)
        return respawned

    # -- write path -----------------------------------------------------------

    def insert(self, row_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Shard the batch by row id and ship per-shard logs."""
        obs = get_obs()
        row_ids = np.asarray(row_ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float32)
        with obs.tracer.span("cluster.insert", rows=len(row_ids)):
            owners = np.array([self.coordinator.route(int(r)) for r in row_ids])
            for shard in np.unique(owners):
                mask = owners == shard
                self.writer.append_shard_log(
                    str(shard), row_ids[mask], vectors[mask]
                )
        obs.registry.counter("cluster_insert_rows_total").inc(len(row_ids))

    def sync(self, build_indexes: bool = True) -> None:
        """Have every reader consume pending logs (and index)."""
        for reader in self.readers.values():
            reader.refresh()
            if build_indexes:
                reader.build_index()

    # -- read path ---------------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int,
        auto_refresh: bool = False,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        node_timeout: Optional[float] = None,
        explain: bool = False,
        **search_params,
    ) -> ClusterSearchResult:
        """Fan out to all live readers, merge, and report timings.

        Partial failure degrades instead of raising: crashed readers
        (whether found dead up front or dying mid-fan-out) are
        skipped, and the result carries ``degraded=True`` plus the
        list of ``missing_shards`` so callers know recall is partial.
        Only when *no* reader can answer does the call raise
        :class:`~repro.core.errors.NoLiveReadersError`.  When the
        cluster's :class:`RespawnPolicy` has ``auto=True``, dead
        readers under the respawn cap are replaced (state rebuilt from
        shared storage) before the fan-out.

        ``auto_refresh=True`` gives read-your-writes at the cluster
        level: every reader consumes pending shard logs before serving
        (at the cost of an extra shared-storage listing per query).

        Per-node latency is timed locally around each reader's call for
        *this* query (the old scheme diffed cumulative
        ``busy_seconds``, which double-counts whenever searches overlap
        and silently absorbed lazy index builds).  Builds are hoisted
        via :meth:`ReaderNode.ensure_index` and reported separately as
        ``index_build_seconds``.

        With ``parallel`` on (or ``REPRO_PARALLEL=1``) the fan-out runs
        readers concurrently on the shared worker pool (see
        :mod:`repro.exec`); per-reader results come back in reader
        order, so the merged result is bit-identical to the serial
        fan-out, and the degraded/missing-shards semantics above are
        unchanged (a task that raises or exceeds ``node_timeout``
        seconds just marks its shard missing).
        """
        obs = get_obs()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        injected0 = float(getattr(self.shared, "injected_latency_seconds", 0.0))
        profile = None
        if explain or (obs.profiler.enabled and current_node() is None):
            profile = QueryProfile("cluster.search", nq=len(queries), k=int(k))
        pstage = (
            profile.root
            if profile is not None
            else profile_stage("cluster.search", nq=len(queries), k=int(k))
        )
        with obs.tracer.span(
            "cluster.search", nq=len(queries), k=k
        ) as root, pstage:
            trace_id = root.trace_id
            if self.respawn_policy.auto:
                self._auto_respawn()
            live = [r for r in self.readers.values() if r.alive]
            missing = [n for n, r in self.readers.items() if not r.alive]
            if not live:
                raise NoLiveReadersError(
                    f"all {len(self.readers)} readers are down"
                )
            index_build_seconds = 0.0
            started = time.perf_counter()

            def serve(reader: ReaderNode, stage):
                # Each task returns (build_seconds, partial, node_seconds);
                # the timed window sits inside the fan-out wall window,
                # so max(per_node) <= wall holds in both modes.  The
                # refresh runs inside the task so a shared-storage read
                # failure degrades this shard instead of failing the
                # whole query.
                with stage:
                    if auto_refresh and reader.refresh():
                        reader.build_index()
                    build = reader.ensure_index()
                    node_started = time.perf_counter()
                    partial = reader.search(queries, k, **search_params)
                    return build, partial, time.perf_counter() - node_started

            executor = QueryExecutor(
                parallel=parallel, pool_size=pool_size, timeout=node_timeout
            )
            settled = executor.map_settled(
                # Per-shard stages are pre-created here, in submission
                # order on the coordinating thread (default args bind at
                # list-build time), and entered inside the worker — see
                # repro.obs.profile on fan-out determinism.
                [
                    lambda r=reader, stage=pstage.stage(
                        "shard.search", node=reader.node_id
                    ): serve(r, stage)
                    for reader in live
                ],
                label="reader.search",
                # Died between the liveness check and its turn in the
                # fan-out (or its shared-storage read failed, or it ran
                # past node_timeout): degrade, don't raise.
                catch=(RuntimeError, IOError, ExecTimeoutError),
            )
            partials = []
            per_node: Dict[str, float] = {}
            for reader, (value, error) in zip(live, settled):
                if error is not None:
                    missing.append(reader.node_id)
                    continue
                build, partial, node_seconds = value
                index_build_seconds += build
                partials.append(partial)
                per_node[reader.node_id] = node_seconds
            if not partials:
                raise NoLiveReadersError(
                    f"all {len(self.readers)} readers failed during fan-out"
                )
            wall = time.perf_counter() - started

            ids, scores = merge_topk_batch(
                [(p.ids, p.scores) for p in partials],
                k,
                self.metric.higher_is_better,
                nq=len(queries),
                dtype=np.float64,
            )
            merged = SearchResult(ids, scores)

        registry = obs.registry
        registry.counter("cluster_searches_total").inc()
        registry.histogram("cluster_search_seconds").observe(wall)
        if index_build_seconds:
            registry.histogram("cluster_lazy_index_build_seconds").observe(
                index_build_seconds
            )
        if missing:
            registry.counter("cluster_degraded_searches_total").inc()
            registry.counter("cluster_missing_shards_total").inc(len(missing))
        injected = (
            float(getattr(self.shared, "injected_latency_seconds", 0.0))
            - injected0
        )
        if profile is not None:
            obs.profiler.record(trace_id, profile)
        obs.slow_query_log.observe(
            "cluster.search",
            wall + max(0.0, injected),
            trace_id=trace_id,
            nq=len(queries),
            k=k,
            degraded=bool(missing),
            profile=profile,
        )
        return ClusterSearchResult(
            result=merged,
            wall_seconds=wall,
            simulated_parallel_seconds=(
                max(per_node.values()) if per_node else 0.0
            ),
            degraded=bool(missing),
            missing_shards=sorted(missing),
            per_node_seconds=per_node,
            index_build_seconds=index_build_seconds,
            trace_id=trace_id,
            profile=profile,
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def num_readers(self) -> int:
        return len(self.readers)

    def total_rows(self) -> int:
        return sum(r.num_rows for r in self.readers.values() if r.alive)

    def shard_sizes(self) -> Dict[str, int]:
        return {node_id: r.num_rows for node_id, r in self.readers.items()}
