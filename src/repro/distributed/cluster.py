"""The cluster facade: shared storage + coordinator + writer + readers.

Queries fan out to every reader (each owns one shard) and merge.  Two
timings are reported:

* wall-clock — honest in-process measurement (nodes run serially in
  one Python process);
* simulated parallel seconds — the max of per-node busy time for the
  batch, i.e. what an actual deployment with one node per machine
  would take.  Fig. 10b plots throughput from this value, which is
  where the near-linear scaling of the shared-storage design shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.distributed.coordinator import Coordinator
from repro.distributed.node import ReaderNode, WriterNode
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.storage.filesystem import FileSystem, InMemoryObjectStore
from repro.utils import merge_topk


@dataclass
class ClusterSearchResult:
    """Merged results plus the two timings."""

    result: SearchResult
    wall_seconds: float
    simulated_parallel_seconds: float


class MilvusCluster:
    """Single-writer / multi-reader shared-storage cluster."""

    def __init__(
        self,
        n_readers: int,
        dim: int,
        metric: str = "l2",
        index_type: str = "IVF_FLAT",
        index_params: Optional[dict] = None,
        shared: Optional[FileSystem] = None,
    ):
        if n_readers <= 0:
            raise ValueError("need at least one reader")
        self.shared = shared or InMemoryObjectStore()
        self.coordinator = Coordinator()
        self.writer = WriterNode(self.shared)
        self.metric = get_metric(metric)
        self.dim = dim
        self.readers: Dict[str, ReaderNode] = {}
        for i in range(n_readers):
            self.add_reader(
                ReaderNode(
                    f"reader-{i}", self.shared, dim, self.metric.name,
                    index_type, index_params,
                )
            )

    # -- membership -------------------------------------------------------

    def add_reader(self, reader: ReaderNode) -> None:
        self.coordinator.register_reader(reader.node_id)
        self.readers[reader.node_id] = reader

    def crash_reader(self, node_id: str) -> None:
        self.readers[node_id].crash()

    def restart_reader(self, node_id: str) -> None:
        """K8s-style replacement: same identity, state from shared storage."""
        dead = self.readers[node_id]
        self.readers[node_id] = ReaderNode.respawn(dead)

    # -- write path -----------------------------------------------------------

    def insert(self, row_ids: np.ndarray, vectors: np.ndarray) -> None:
        """Shard the batch by row id and ship per-shard logs."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float32)
        owners = np.array([self.coordinator.route(int(r)) for r in row_ids])
        for shard in np.unique(owners):
            mask = owners == shard
            self.writer.append_shard_log(str(shard), row_ids[mask], vectors[mask])

    def sync(self, build_indexes: bool = True) -> None:
        """Have every reader consume pending logs (and index)."""
        for reader in self.readers.values():
            reader.refresh()
            if build_indexes:
                reader.build_index()

    # -- read path ---------------------------------------------------------------

    def search(
        self, queries: np.ndarray, k: int, auto_refresh: bool = False, **search_params
    ) -> ClusterSearchResult:
        """Fan out to all live readers, merge, and report timings.

        ``auto_refresh=True`` gives read-your-writes at the cluster
        level: every reader consumes pending shard logs before serving
        (at the cost of an extra shared-storage listing per query).
        """
        import time

        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        live = [r for r in self.readers.values() if r.alive]
        if not live:
            raise RuntimeError("no live readers")
        if auto_refresh:
            for reader in live:
                if reader.refresh():
                    reader.build_index()
        started = time.perf_counter()
        before = {r.node_id: r.busy_seconds for r in live}
        partials = [r.search(queries, k, **search_params) for r in live]
        wall = time.perf_counter() - started
        per_node = [r.busy_seconds - before[r.node_id] for r in live]

        merged = SearchResult.empty(len(queries), k, self.metric)
        for qi in range(len(queries)):
            parts = [
                (p.ids[qi][p.ids[qi] >= 0], p.scores[qi][p.ids[qi] >= 0])
                for p in partials
            ]
            ids, scores = merge_topk(parts, k, self.metric.higher_is_better)
            merged.ids[qi, : len(ids)] = ids
            merged.scores[qi, : len(scores)] = scores
        return ClusterSearchResult(
            result=merged,
            wall_seconds=wall,
            simulated_parallel_seconds=max(per_node) if per_node else 0.0,
        )

    # -- introspection ----------------------------------------------------------------

    @property
    def num_readers(self) -> int:
        return len(self.readers)

    def total_rows(self) -> int:
        return sum(r.num_rows for r in self.readers.values() if r.alive)

    def shard_sizes(self) -> Dict[str, int]:
        return {node_id: r.num_rows for node_id, r in self.readers.items()}
