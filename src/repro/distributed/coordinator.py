"""Coordinator layer (paper Sec. 5.3).

"There is a coordinator layer to maintain the metadata of the system
such as sharding and load balancing information.  The coordinator
layer is highly available with three instances managed by Zookeeper."

The HA ensemble is simulated as three coordinator replicas sharing
state; killing the leader promotes a follower, and metadata survives
because it lives in the (shared) state object — the property that
matters to the rest of the system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.distributed.hashing import ConsistentHashRing


@dataclass
class ShardMap:
    """Sharding metadata: the ring plus the registered reader set."""

    ring: ConsistentHashRing
    readers: List[str] = field(default_factory=list)

    def owner_of(self, row_id: int) -> str:
        return self.ring.route(row_id)


class Coordinator:
    """HA coordinator ensemble (three replicas, one leader)."""

    ENSEMBLE_SIZE = 3

    def __init__(self):
        self._replicas = [f"coord-{i}" for i in range(self.ENSEMBLE_SIZE)]
        self._alive = {name: True for name in self._replicas}
        self._leader = self._replicas[0]
        self.shard_map = ShardMap(ring=ConsistentHashRing())
        self.metadata: Dict[str, object] = {}
        #: reader id -> times the coordinator respawned it (K8s-style
        #: restart accounting; the cluster's RespawnPolicy caps this).
        self.respawn_counts: Dict[str, int] = {}

    # -- HA behaviour -----------------------------------------------------

    @property
    def leader(self) -> str:
        return self._leader

    def alive_replicas(self) -> List[str]:
        return [name for name, alive in self._alive.items() if alive]

    def kill_replica(self, name: str) -> None:
        """Crash one replica; a follower takes over if it was leader."""
        if name not in self._alive:
            raise KeyError(name)
        self._alive[name] = False
        survivors = self.alive_replicas()
        if not survivors:
            raise RuntimeError("coordinator ensemble lost quorum entirely")
        if self._leader == name:
            self._leader = survivors[0]

    def restart_replica(self, name: str) -> None:
        self._alive[name] = True

    def has_quorum(self) -> bool:
        return len(self.alive_replicas()) > self.ENSEMBLE_SIZE // 2

    # -- sharding metadata --------------------------------------------------

    def register_reader(self, reader_id: str) -> None:
        if not self.has_quorum():
            raise RuntimeError("coordinator has no quorum; writes refused")
        self.shard_map.ring.add_node(reader_id)
        self.shard_map.readers.append(reader_id)

    def deregister_reader(self, reader_id: str) -> None:
        if not self.has_quorum():
            raise RuntimeError("coordinator has no quorum; writes refused")
        self.shard_map.ring.remove_node(reader_id)
        self.shard_map.readers.remove(reader_id)

    def route(self, row_id: int) -> str:
        return self.shard_map.owner_of(row_id)

    # -- reader lifecycle accounting ----------------------------------------

    def record_respawn(self, reader_id: str) -> int:
        """Count one auto-respawn of ``reader_id``; returns the new total.

        Respawning is a metadata write: it requires quorum, like every
        other coordinator mutation.
        """
        if not self.has_quorum():
            raise RuntimeError("coordinator has no quorum; respawn refused")
        total = self.respawn_counts.get(reader_id, 0) + 1
        self.respawn_counts[reader_id] = total
        return total

    def respawns_of(self, reader_id: str) -> int:
        return self.respawn_counts.get(reader_id, 0)

    def set_metadata(self, key: str, value) -> None:
        if not self.has_quorum():
            raise RuntimeError("coordinator has no quorum; writes refused")
        self.metadata[key] = value

    def get_metadata(self, key: str):
        return self.metadata.get(key)
