"""Compute-layer nodes (paper Sec. 5.3): one writer, many readers.

"The computing layer ... is stateless to achieve elasticity.  It
includes a single writer instance and multiple reader instances ...
The computing layer only sends logs (rather than the actual data) to
the storage layer, similar to Aurora."

The writer ships per-shard insert logs to shared storage; each reader
consumes the logs for its shard, materializes vectors, and serves
searches with a local index.  Readers are disposable: a restarted
reader rebuilds its entire state from shared storage.
"""

from __future__ import annotations

import io
import json
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.index import create_index
from repro.index.base import SearchResult, VectorIndex
from repro.metrics import get_metric
from repro.obs import get_obs
from repro.obs.profile import profile_count
from repro.storage.filesystem import FileSystem
from repro.utils.retry import RetryPolicy
from repro.utils.sanitizer import maybe_sanitize


class WriterNode:
    """The single writer: logs insert batches per shard to shared storage.

    Atomicity on crash comes from the log objects themselves: a batch
    is visible iff its log object was fully written (the WAL argument
    of Sec. 5.3).  A :class:`RetryPolicy` makes the append survive a
    flaky shared store: transient put failures are retried up to the
    policy's budget before the error reaches the caller.
    """

    def __init__(
        self,
        shared: FileSystem,
        node_id: str = "writer-0",
        retry: Optional[RetryPolicy] = None,
    ):
        self.shared = shared
        self.node_id = node_id
        self.retry = retry
        self._seq = self._recover_seq()

    def _recover_seq(self) -> int:
        seq = 0
        for path in self.shared.listdir("shardlog/"):
            try:
                seq = max(seq, int(path.split("/")[-1].split("-")[0]) + 1)
            except ValueError:
                continue
        return seq

    def append_shard_log(
        self, shard: str, row_ids: np.ndarray, vectors: np.ndarray
    ) -> str:
        """Write one insert-log object for ``shard``; returns its path."""
        obs = get_obs()
        with obs.tracer.span("writer.append_shard_log", shard=shard):
            started = time.perf_counter()
            buf = io.BytesIO()
            np.savez(
                buf,
                row_ids=np.asarray(row_ids, dtype=np.int64),
                vectors=np.asarray(vectors, dtype=np.float32),
            )
            path = f"shardlog/{self._seq:012d}-{shard}.log"
            self._seq += 1
            if self.retry is not None:
                self.retry.call(self.shared.write, path, buf.getvalue())
            else:
                self.shared.write(path, buf.getvalue())
            elapsed = time.perf_counter() - started
        registry = obs.registry
        registry.counter("writer_shardlog_appends_total").inc()
        registry.counter("writer_shardlog_rows_total").inc(len(row_ids))
        registry.histogram("writer_shardlog_append_seconds").observe(elapsed)
        return path


class ReaderNode:
    """One stateless reader: serves searches over its shard.

    ``refresh()`` pulls any unseen log objects for this shard from
    shared storage (read/write separation: the writer never talks to
    readers directly).  ``busy_seconds`` accumulates the node's own
    *successful* search compute time (introspection only; the cluster
    derives per-node latency from per-call span timings, since
    cumulative deltas double-count under concurrent searches).

    The serving counters are guarded by ``_stats_lock`` (leaf role
    ``"reader-stats"``): with pooled fan-out, two concurrent cluster
    searches can serve from the same reader on different worker
    threads, and unguarded ``+=`` on a float drops updates.
    """

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "busy_seconds": "_stats_lock",
        "queries_served": "_stats_lock",
    }

    def __init__(
        self,
        node_id: str,
        shared: FileSystem,
        dim: int,
        metric: str = "l2",
        index_type: str = "IVF_FLAT",
        index_params: Optional[dict] = None,
    ):
        self.node_id = node_id
        self.shared = shared
        self.dim = dim
        self.metric = get_metric(metric)
        self.index_type = index_type
        self.index_params = dict(index_params or {})
        self._vectors: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._consumed: set = set()
        self._index: Optional[VectorIndex] = None
        self._stats_lock = maybe_sanitize(threading.Lock(), "reader-stats")
        self.busy_seconds = 0.0
        self.queries_served = 0
        self.alive = True

    # -- log consumption -------------------------------------------------------

    def refresh(self) -> int:
        """Consume unseen shard-log objects; returns rows ingested."""
        self._check_alive()
        ingested = 0
        suffix = f"-{self.node_id}.log"
        for path in self.shared.listdir("shardlog/"):
            if not path.endswith(suffix) or path in self._consumed:
                continue
            blob = self.shared.read(path)
            profile_count("bytes_read", len(blob))
            with np.load(io.BytesIO(blob)) as archive:
                row_ids = archive["row_ids"]
                vectors = archive["vectors"]
            if self._vectors is None:
                self._vectors = vectors.copy()
                self._ids = row_ids.copy()
            else:
                self._vectors = np.concatenate([self._vectors, vectors])
                self._ids = np.concatenate([self._ids, row_ids])
            self._consumed.add(path)
            ingested += len(row_ids)
        if ingested:
            self._index = None  # invalidated; rebuilt lazily
        return ingested

    def build_index(self) -> None:
        self._check_alive()
        if self._vectors is None or not len(self._vectors):
            return
        params = dict(self.index_params)
        if self.index_type.startswith("IVF") and "nlist" not in params:
            params["nlist"] = max(4, int(np.sqrt(len(self._vectors))))
        index = create_index(self.index_type, self.dim, metric=self.metric.name, **params)
        if index.requires_training:
            index.train(self._vectors)
        index.add(self._vectors, ids=self._ids)
        self._index = index

    # -- query serving -----------------------------------------------------------

    def ensure_index(self) -> float:
        """Build the local index if data arrived without one; returns the
        seconds spent building (0.0 when already built or empty).

        Split out of :meth:`search` so lazy index construction is
        observable as its *own* cost: the cluster calls this before
        timing the fan-out, keeping per-node search latency free of
        build time (which used to pollute the Fig. 10b numbers
        whenever a reader built lazily inside ``search``).
        """
        self._check_alive()
        if self._index is not None or self._vectors is None or not len(self._vectors):
            return 0.0
        obs = get_obs()
        with obs.tracer.span("reader.index_build", node=self.node_id,
                             index_type=self.index_type):
            started = time.perf_counter()
            self.build_index()
            elapsed = time.perf_counter() - started
        obs.registry.counter("reader_lazy_index_builds_total").inc()
        obs.registry.histogram("reader_lazy_index_build_seconds").observe(elapsed)
        return elapsed

    def search(self, queries: np.ndarray, k: int, **search_params) -> SearchResult:
        """Shard-local top-k; accumulates this node's busy time.

        ``queries_served``/``busy_seconds`` are accounted **only on
        success**: a query that raises (reader crashed mid-fan-out, a
        shared-storage read failed) was not served and must not count
        — the cluster's degraded-read statistics rely on that.
        """
        self._check_alive()
        self.ensure_index()
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        obs = get_obs()
        started = time.perf_counter()
        with obs.tracer.span("reader.search", node=self.node_id, nq=len(queries)):
            if self._index is None:
                result = SearchResult.empty(len(queries), k, self.metric)
            else:
                with obs.tracer.span("index.search", node=self.node_id,
                                     index_type=self.index_type):
                    result = self._index.search(queries, k, **search_params)
        elapsed = time.perf_counter() - started
        with self._stats_lock:
            self.busy_seconds += elapsed
            self.queries_served += int(queries.shape[0])
        obs.registry.counter(
            "reader_queries_served_total", node=self.node_id
        ).inc(queries.shape[0])
        return result

    # -- lifecycle (K8s-style) ------------------------------------------------------

    def crash(self) -> None:
        """Simulate a crash: all local state is lost."""
        self.alive = False
        self._vectors = None
        self._ids = None
        self._index = None
        self._consumed = set()

    @classmethod
    def respawn(cls, dead: "ReaderNode") -> "ReaderNode":
        """K8s restart: a fresh instance with the same identity; state
        rebuilds entirely from shared storage (statelessness)."""
        node = cls(
            dead.node_id, dead.shared, dead.dim, dead.metric.name,
            dead.index_type, dead.index_params,
        )
        node.refresh()
        node.build_index()
        return node

    def _check_alive(self) -> None:
        if not self.alive:
            raise RuntimeError(f"reader {self.node_id} has crashed")

    @property
    def num_rows(self) -> int:
        return 0 if self._ids is None else len(self._ids)
