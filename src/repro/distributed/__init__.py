"""Distributed deployment (paper Sec. 5.3), simulated in-process.

The architecture is the paper's Figure 5: a shared storage layer
(simulated S3), a coordinator layer holding metadata (sharding, node
registry, leader election stand-in), and a stateless compute layer
with a single writer and many readers ("read/write separation,
single-writer-multi-reader").  Data shards across readers with
consistent hashing; the writer ships logs (not data) to shared
storage, Aurora-style; readers are disposable and rebuild from shared
storage on restart, K8s-style.

Nodes run real query code; the cluster reports both wall-clock and
*simulated parallel time* (per-node busy time, max over nodes), which
is what the Fig. 10b scalability bench plots.
"""

from repro.distributed.hashing import ConsistentHashRing
from repro.distributed.coordinator import Coordinator, ShardMap
from repro.distributed.node import ReaderNode, WriterNode
from repro.distributed.cluster import (
    MilvusCluster,
    ClusterSearchResult,
    RespawnPolicy,
)

__all__ = [
    "ConsistentHashRing",
    "Coordinator",
    "ShardMap",
    "ReaderNode",
    "WriterNode",
    "MilvusCluster",
    "ClusterSearchResult",
    "RespawnPolicy",
]
