"""Exception hierarchy for the system's public API."""

# Re-exported here so API users catch index-capability errors from one
# module; defined next to VectorIndex to keep the import DAG acyclic.
from repro.index.base import UnsupportedSearchParamError  # noqa: F401


class MilvusError(Exception):
    """Base class for every error raised by the system."""


class CollectionNotFoundError(MilvusError, KeyError):
    """The named collection does not exist."""


class CollectionExistsError(MilvusError, ValueError):
    """A collection with that name already exists."""


class SchemaError(MilvusError, ValueError):
    """Schema definition or data/schema mismatch."""


class InvalidQueryError(MilvusError, ValueError):
    """Malformed query (unknown field, bad parameters, bad filter)."""


class NodeNotFoundError(MilvusError, KeyError):
    """The named cluster node is not a member of this cluster."""


class NoLiveReadersError(MilvusError, RuntimeError):
    """Every reader in the cluster is down; not even a degraded answer."""
