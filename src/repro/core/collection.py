"""Collections: entity tables over the LSM storage engine.

Implements the paper's three primitive query types (Sec. 2.1):

* vector query — :meth:`Collection.search`;
* attribute filtering — :meth:`Collection.search` with ``filter=``;
* multi-vector query — :meth:`Collection.multi_vector_search`.

Writes follow Sec. 5.1's asynchronous processing: with
``async_writes=True`` inserts/deletes are acknowledged after the WAL
write and applied by a background thread; :meth:`flush` blocks until
every pending operation is applied and flushed, so "users may not
immediately see the inserted data" until they flush.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.errors import InvalidQueryError, SchemaError
from repro.core.schema import CollectionSchema
from repro.filtering.cost import AdaptivePlanner
from repro.index.base import SearchResult
from repro.metrics import get_metric
from repro.obs import get_obs
from repro.obs.explain import ExplainedResult, explain_search
from repro.obs.profile import (
    QueryProfile,
    current_node,
    measurement_stage,
    profile_attr,
    profile_stage,
)
from repro.storage import LSMConfig, LSMManager
from repro.storage.filesystem import FileSystem
from repro.storage.manifest import Snapshot
from repro.utils import sorted_membership
from repro.utils.sanitizer import maybe_sanitize

#: an attribute range filter: (attribute_name, low, high), inclusive.
AttributeFilter = Tuple[str, float, float]


class Collection:
    """One entity table: named vectors + numeric attributes per row."""

    def __init__(
        self,
        schema: CollectionSchema,
        lsm_config: Optional[LSMConfig] = None,
        fs: Optional[FileSystem] = None,
        async_writes: bool = False,
        adaptive: Optional[bool] = None,
    ):
        from repro.storage.categorical import CategoryDictionary

        self.schema = schema
        self._lsm = LSMManager(
            schema.vector_specs(),
            schema.attribute_names(),
            config=lsm_config,
            fs=fs,
            categorical_names=schema.categorical_names(),
            categorical_kinds={
                f.name: f.index_kind for f in schema.categorical_fields
            },
        )
        self._dictionaries = {
            name: CategoryDictionary() for name in schema.categorical_names()
        }
        # _next_row_id is guarded by _id_lock; declared in
        # [tool.reprolint.guarded-fields] rather than in-code, so both
        # declaration styles stay exercised.
        self._next_row_id = 0
        self._id_lock = maybe_sanitize(threading.Lock(), "collection-ids")
        # Feedback-calibrated filtered-search planning (paper Sec. 4.1
        # strategy D + online calibration); ``None`` defers to the
        # REPRO_ADAPTIVE env knob.  The planner itself is built lazily
        # so a recover() run after construction still seeds it from the
        # persisted manifest state.
        self._adaptive = (
            os.environ.get("REPRO_ADAPTIVE") == "1" if adaptive is None
            else bool(adaptive)
        )
        self._planner: Optional[AdaptivePlanner] = None
        self._async = async_writes
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        if async_writes:
            self._worker = threading.Thread(
                target=self._drain_forever, name=f"{schema.name}-writer", daemon=True
            )
            self._worker.start()

    # -- write path -----------------------------------------------------

    def insert(self, data: Dict[str, np.ndarray]) -> np.ndarray:
        """Insert a batch of entities; returns the assigned row ids.

        ``data`` maps every vector field and every attribute field of
        the schema to an array with one entry per entity.
        """
        vectors, attributes, categoricals, n = self._split_payload(data)
        with self._id_lock:
            row_ids = np.arange(self._next_row_id, self._next_row_id + n, dtype=np.int64)
            self._next_row_id += n
        if self._async:
            self._queue.put(("insert", row_ids, vectors, attributes, categoricals))
        else:
            self._lsm.insert(row_ids, vectors, attributes, categoricals)
        get_obs().usage.record_insert(self.schema.name, n)
        return row_ids

    def delete(self, row_ids: Sequence[int]) -> None:
        """Delete entities by row id (out-of-place; visible after flush)."""
        row_ids = np.asarray(row_ids, dtype=np.int64)
        if self._async:
            self._queue.put(("delete", row_ids, None, None, None))
        else:
            self._lsm.delete(row_ids)

    def update(self, row_ids: Sequence[int], data: Dict[str, np.ndarray]) -> np.ndarray:
        """Update = delete + insert (paper Sec. 2.3); returns new row ids."""
        new_ids = self.insert(data)
        self.delete(row_ids)
        return new_ids

    def flush(self) -> None:
        """Block until all pending writes are applied and flushed (Sec. 5.1)."""
        if self._async:
            self._queue.join()
        self._lsm.flush()
        # Calibration learned since the last flush rides the durable
        # manifest, so a restart + recover() resumes a warm planner.
        if self._planner is not None:
            self._lsm.set_planner_state(self._planner.to_dict(), persist=True)

    def _split_payload(self, data: Dict[str, np.ndarray]):
        specs = self.schema.vector_specs()
        attr_names = self.schema.attribute_names()
        cat_names = self.schema.categorical_names()
        expected = set(specs) | set(attr_names) | set(cat_names)
        if set(data) != expected:
            raise SchemaError(
                f"insert payload fields {sorted(data)} != schema fields {sorted(expected)}"
            )
        vectors = {}
        n = None
        for name, (dim, __) in specs.items():
            mat = np.asarray(data[name], dtype=np.float32)
            if mat.ndim == 1:
                mat = mat[np.newaxis, :]
            if mat.shape[1] != dim:
                raise SchemaError(
                    f"field {name!r}: dimension {mat.shape[1]} != schema dim {dim}"
                )
            if n is None:
                n = len(mat)
            elif len(mat) != n:
                raise SchemaError("all fields must have the same number of rows")
            vectors[name] = mat
        attributes = {}
        for name in attr_names:
            vals = np.asarray(data[name], dtype=np.float64).ravel()
            if len(vals) != n:
                raise SchemaError(
                    f"attribute {name!r}: {len(vals)} values for {n} entities"
                )
            attributes[name] = vals
        categoricals = {}
        for name in cat_names:
            raw = data[name]
            values = list(raw.tolist() if isinstance(raw, np.ndarray) else raw)
            if len(values) != n:
                raise SchemaError(
                    f"categorical {name!r}: {len(values)} values for {n} entities"
                )
            categoricals[name] = self._dictionaries[name].encode(values)
        return vectors, attributes, categoricals, int(n)

    def _drain_forever(self) -> None:
        while True:
            kind, row_ids, vectors, attributes, categoricals = self._queue.get()
            try:
                if kind == "insert":
                    self._lsm.insert(row_ids, vectors, attributes, categoricals)
                elif kind == "delete":
                    self._lsm.delete(row_ids)
            finally:
                self._queue.task_done()

    # -- read path ----------------------------------------------------------

    def search(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        filter: Optional[AttributeFilter] = None,
        snapshot: Optional[Snapshot] = None,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        explain: bool = False,
        **search_params,
    ) -> SearchResult:
        """Vector query, optionally with an attribute range filter.

        ``parallel`` / ``pool_size`` control intra-query parallelism:
        segment scans fan out over the shared worker pool (see
        :mod:`repro.exec`); ``None`` defers to ``REPRO_PARALLEL`` /
        ``REPRO_POOL_SIZE``.  Results are bit-identical either way.

        ``explain=True`` returns an :class:`ExplainedResult` instead:
        the same results plus the planner dump
        (:func:`~repro.obs.explain.explain_search`) and the executed
        :class:`~repro.obs.profile.QueryProfile` with exact work
        counters.  Works with observability off; with it on, every
        search is profiled and retained by trace id
        (``GET /profiles/{trace_id}``).

        With a filter the collection runs the attribute-first bitmap
        strategy per segment (strategy B of Sec. 4.1): the attribute
        column yields admissible row ids, which are pushed down into
        the per-segment vector search.  The standalone strategy
        benchmarks live in :mod:`repro.filtering`.

        Filter forms:

        * numeric range — ``("price", low, high)`` (inclusive);
        * categorical — ``("color", "==", "red")`` or
          ``("color", "in", ["red", "blue"])``, served from the
          inverted-list / bitmap categorical indexes.
        """
        obs = get_obs()
        # explain always gets its own profile; otherwise profile every
        # top-level search when observability is on (nested searches —
        # e.g. from the multi-vector searcher — land in the ambient
        # profile as stages instead of spawning their own).
        top_level = current_node() is None
        profile = None
        if explain or (obs.profiler.enabled and top_level):
            profile = QueryProfile(
                "collection.search",
                collection=self.schema.name, field=field, k=int(k),
            )
        with obs.tracer.span(
            "collection.search", collection=self.schema.name, field=field, k=k,
            filtered=filter is not None,
        ) as span:
            started = time.perf_counter()
            stage = profile if profile is not None else profile_stage(
                "collection.search", collection=self.schema.name, field=field,
            )
            with stage:
                result = self._search_impl(
                    field, queries, k, filter, snapshot,
                    parallel=parallel, pool_size=pool_size, **search_params
                )
            elapsed = time.perf_counter() - started
        if profile is not None:
            obs.profiler.record(span.trace_id, profile)
            # Exact usage accounting: the profile's integer counters are
            # deterministic (serial == pooled), so per-collection usage
            # equals the sum of the recorded query profiles.
            obs.usage.record_query(
                self.schema.name, elapsed, profile.total_counters())
        elif top_level:
            obs.usage.record_query(self.schema.name, elapsed, None)
        obs.registry.histogram("collection_search_seconds").observe(elapsed)
        obs.slow_query_log.observe(
            "collection.search", elapsed, trace_id=span.trace_id,
            profile=profile,
            collection=self.schema.name, field=field, k=k,
        )
        if explain:
            plan = explain_search(
                self, field, queries=queries, k=k, filter=filter,
                parallel=parallel, pool_size=pool_size, **search_params
            )
            return ExplainedResult(result=result, plan=plan, profile=profile)
        return result

    def _search_impl(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        filter: Optional[AttributeFilter],
        snapshot: Optional[Snapshot],
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        **search_params,
    ) -> SearchResult:
        self.schema.vector_field(field)
        if filter is None:
            return self._lsm.search(
                field, queries, k, snapshot=snapshot,
                parallel=parallel, pool_size=pool_size, **search_params
            )
        owned = snapshot is None
        snap = self._lsm.snapshot() if owned else snapshot
        try:
            with profile_stage("collection.filter", spec=str(filter)) as stage:
                admissible = self._filter_rows(filter, snap)
                stage.set_attr("admissible_rows", int(len(admissible)))
            if len(admissible) == 0:
                metric = get_metric(self.schema.vector_field(field).metric)
                queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
                return SearchResult.empty(len(queries), k, metric)
            if self._adaptive:
                return self._adaptive_filtered_search(
                    field, queries, k, admissible, snap,
                    parallel=parallel, pool_size=pool_size, **search_params
                )
            return self._lsm.search(
                field, queries, k, snapshot=snap, row_filter=admissible,
                parallel=parallel, pool_size=pool_size, **search_params
            )
        finally:
            if owned:
                self._lsm.release(snap)

    # -- adaptive filtered search (calibrated strategy D) -----------------

    @property
    def planner(self) -> AdaptivePlanner:
        """The collection's query planner, seeded from persisted state.

        Built on first use so calibration recovered by
        :meth:`LSMManager.recover` (which runs after construction) is
        picked up.  Benign race: two threads may both build one; the
        losing instance carries no observations yet.
        """
        if self._planner is None:
            self._planner = AdaptivePlanner.from_dict(self._lsm.planner_state())
        return self._planner

    def _index_info(self, field: str, snap: Snapshot):
        """(index_type, nlist, bucket_sizes, supports_pushdown, knob_names,
        row_bytes) of the first indexed visible segment, or defaults when
        none is.
        """
        for segment in self._visible_segments(snap):
            index = segment.indexes.get(field)
            if index is not None:
                nlist = getattr(index, "nlist", None)
                sizes = (
                    index.bucket_sizes().tolist()
                    if hasattr(index, "bucket_sizes") else None
                )
                return (
                    index.index_type,
                    nlist,
                    sizes,
                    index.supports_search_param("row_filter"),
                    type(index).SEARCH_PARAMS,
                    index.row_code_bytes(),
                )
        return None, None, None, True, frozenset(), None

    def _adaptive_filtered_search(
        self,
        field: str,
        queries: np.ndarray,
        k: int,
        admissible: np.ndarray,
        snap: Snapshot,
        parallel: Optional[bool] = None,
        pool_size: Optional[int] = None,
        **search_params,
    ) -> SearchResult:
        """Plan (strategy + knobs) from calibrated costs, execute, feed back."""
        planner = self.planner
        n = max(int(self._lsm.num_live_rows), 1)
        index_type, nlist, bucket_sizes, supports, knob_names, row_bytes = (
            self._index_info(field, snap)
        )
        plan = planner.plan(
            n=n,
            passing_fraction=len(admissible) / n,
            k=k,
            index_type=index_type or "",
            nlist=nlist,
            bucket_sizes=bucket_sizes,
            supports_pushdown=supports,
            row_bytes=row_bytes,
        )
        # Planned knobs the field's index understands; explicit caller
        # params always win over the planner's choices.
        knobs = {
            name: value for name, value in plan.knobs().items()
            if name in knob_names
        }
        knobs.update(search_params)
        profile_attr("adaptive_plan", plan.to_dict())
        with measurement_stage("adaptive.exec", strategy=plan.strategy) as stage:
            result = self._execute_plan(
                field, queries, k, admissible, snap, plan, knobs,
                index_type, parallel, pool_size,
            )
        nq = len(np.atleast_2d(np.asarray(queries)))
        planner.observe(plan, stage.total_counters(), nq=nq)
        # Cheap in-memory staging; the next manifest write (flush,
        # merge, or an explicit Collection.flush) makes it durable.
        self._lsm.set_planner_state(planner.to_dict())
        return result

    def _execute_plan(
        self, field, queries, k, admissible, snap, plan, knobs,
        index_type, parallel, pool_size,
    ) -> SearchResult:
        if plan.strategy == "A" or not index_type:
            # Attribute-first exact scan: brute force over admissible
            # rows only (recall 1 within the filter).
            return self._lsm.search(
                field, queries, k, snapshot=snap, row_filter=admissible,
                brute_force=True, parallel=parallel, pool_size=pool_size,
            )
        if plan.strategy == "B":
            return self._lsm.search(
                field, queries, k, snapshot=snap, row_filter=admissible,
                parallel=parallel, pool_size=pool_size, **knobs
            )
        # Strategy C: one widened unfiltered search, post-filtered
        # against the admissible set; fall back to pushdown if the
        # widening undershoots (estimation error), so results never
        # come back short when k admissible rows exist.
        p = max(len(admissible) / plan.n, 1e-9)
        k_eff = min(max(int(np.ceil(plan.theta * k / p)), k), plan.n)
        raw = self._lsm.search(
            field, queries, k_eff, snapshot=snap,
            parallel=parallel, pool_size=pool_size, **knobs
        )
        metric = get_metric(self.schema.vector_field(field).metric)
        queries_2d = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        out = SearchResult.empty(len(queries_2d), k, metric)
        want = min(k, len(admissible))
        short = False
        pruned = 0
        for qi in range(len(queries_2d)):
            valid = raw.ids[qi] >= 0
            ids_row = raw.ids[qi][valid]
            keep = sorted_membership(ids_row, admissible)
            kept_ids = ids_row[keep]
            kept_scores = raw.scores[qi][valid][keep]
            pruned += int(len(ids_row) - len(kept_ids))
            m = min(k, len(kept_ids))
            out.ids[qi, :m] = kept_ids[:m]
            out.scores[qi, :m] = kept_scores[:m]
            if m < want:
                short = True
        node = current_node()
        if node is not None and pruned:
            node.count("candidates_pruned", pruned)
        if short:
            return self._lsm.search(
                field, queries, k, snapshot=snap, row_filter=admissible,
                parallel=parallel, pool_size=pool_size, **knobs
            )
        return out

    def _filter_rows(self, filter: AttributeFilter, snap: Snapshot) -> np.ndarray:
        """Resolve any filter form to sorted admissible row ids."""
        name, op_or_low, value_or_high = filter
        if self.schema.has_categorical(name):
            if op_or_low == "==":
                codes = [value_or_high]
            elif op_or_low == "in":
                codes = list(value_or_high)
            else:
                raise InvalidQueryError(
                    f"categorical filter on {name!r} needs '==' or 'in', "
                    f"got {op_or_low!r}"
                )
            encoded = self._dictionaries[name].encode_existing(codes)
            encoded = [int(c) for c in encoded if c >= 0]
            return self._categorical_rows(name, encoded, snap)
        if not self.schema.has_attribute(name):
            raise InvalidQueryError(f"unknown attribute {name!r} in filter")
        return self._admissible_rows(
            name, float(op_or_low), float(value_or_high), snap
        )

    def _visible_segments(self, snap: Snapshot):
        """Everything readable in ``snap``: sealed segments, then the
        read views of frozen memtables awaiting background flush —
        frozen rows answer filters, fetches, and range queries exactly
        like sealed rows."""
        for seg_id in snap.segment_ids:
            yield self._lsm.bufferpool.get(seg_id)
        for view in self._lsm.frozen_view_segments(snap):
            yield view

    def _categorical_rows(self, name: str, codes, snap: Snapshot) -> np.ndarray:
        if not codes:
            return np.empty(0, dtype=np.int64)
        parts = [
            segment.categorical_in(name, codes)
            for segment in self._visible_segments(snap)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        rows = np.unique(np.concatenate(parts))
        tombs = self._lsm.visible_tombstones(snap)
        if len(tombs):
            rows = np.setdiff1d(rows, tombs, assume_unique=False)
        return rows

    def _admissible_rows(
        self, attr: str, low: float, high: float, snap: Snapshot
    ) -> np.ndarray:
        parts = [
            segment.attribute_range(attr, low, high)
            for segment in self._visible_segments(snap)
        ]
        if not parts:
            return np.empty(0, dtype=np.int64)
        rows = np.unique(np.concatenate(parts))
        tombs = self._lsm.visible_tombstones(snap)
        if len(tombs):
            rows = np.setdiff1d(rows, tombs, assume_unique=False)
        return rows

    def multi_vector_search(
        self,
        queries: Dict[str, np.ndarray],
        k: int,
        weights: Optional[Dict[str, float]] = None,
        method: str = "auto",
        aggregation: str = "sum",
        **search_params,
    ) -> List[List[Tuple[int, float]]]:
        """Multi-vector query (Sec. 4.2): top-k entities by aggregated score.

        Args:
            queries: one query vector (or batch) per vector field.
            weights: weighted-sum aggregation weights (default 1.0).
            method: ``"fusion"`` (decomposable metrics), ``"iterative"``
                (iterative merging, Algorithm 2), ``"naive"`` (per-field
                top-k union), or ``"auto"``.
            aggregation: monotone aggregation over keyed per-field
                scores — ``"sum"`` (weighted sum), ``"avg"``, ``"min"``
                (rank by worst factor), ``"max"``.  Only ``"sum"`` is
                decomposable, so other aggregations force the iterative
                path.

        Returns:
            per-query lists of (row_id, aggregated_score) pairs.
        """
        from repro.multivector import MultiVectorSearcher

        searcher = MultiVectorSearcher(self, weights=weights)
        return searcher.search(
            queries, k, method=method, aggregation=aggregation, **search_params
        )

    # -- point reads ---------------------------------------------------------

    def fetch_vectors(self, field: str, row_ids: Sequence[int]) -> np.ndarray:
        """Vectors for ``row_ids`` (must be live flushed rows)."""
        self.schema.vector_field(field)
        row_ids = np.asarray(row_ids, dtype=np.int64)
        out = np.empty((len(row_ids), self.schema.vector_field(field).dim), np.float32)
        found = np.zeros(len(row_ids), dtype=bool)
        snap = self._lsm.snapshot()
        try:
            for segment in self._visible_segments(snap):
                mask = segment.contains_mask(row_ids) & ~found
                if mask.any():
                    out[mask] = segment.vectors_for(field, row_ids[mask])
                    found |= mask
        finally:
            self._lsm.release(snap)
        if not found.all():
            missing = row_ids[~found].tolist()
            raise KeyError(f"row ids not found: {missing[:10]}")
        return out

    def fetch_attributes(self, name: str, row_ids: Sequence[int]) -> np.ndarray:
        """Attribute values for ``row_ids``."""
        if not self.schema.has_attribute(name):
            raise InvalidQueryError(f"unknown attribute {name!r}")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        out = np.full(len(row_ids), np.nan)
        snap = self._lsm.snapshot()
        try:
            for segment in self._visible_segments(snap):
                col = segment.attributes[name]
                order = np.argsort(col.row_ids)
                sorted_rows = col.row_ids[order]
                pos = np.searchsorted(sorted_rows, row_ids)
                pos_c = np.minimum(pos, max(len(sorted_rows) - 1, 0))
                hit = (len(sorted_rows) > 0) & (sorted_rows[pos_c] == row_ids)
                out[hit] = col.keys[order][pos_c[hit]]
        finally:
            self._lsm.release(snap)
        if np.isnan(out).any():
            raise KeyError("row ids not found in attribute column")
        return out

    def query(
        self,
        filter: AttributeFilter,
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Scalar-only query: row ids matching ``filter`` (no vectors).

        The classic "SELECT id WHERE price < 100" path, served entirely
        from attribute/categorical indexes.
        """
        snap = self._lsm.snapshot()
        try:
            rows = self._filter_rows(filter, snap)
        finally:
            self._lsm.release(snap)
        return rows[:limit] if limit is not None else rows

    def range_search(
        self,
        field: str,
        queries: np.ndarray,
        radius: float,
        **search_params,
    ) -> List[List[Tuple[int, float]]]:
        """All entities scoring within ``radius`` of each query.

        Runs per segment (brute force, or the segment index's
        range_search when available) and merges; tombstoned rows are
        excluded.
        """
        self.schema.vector_field(field)
        metric = get_metric(self.schema.vector_field(field).metric)
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        snap = self._lsm.snapshot()
        try:
            out: List[List[Tuple[int, float]]] = [[] for __ in range(len(queries))]
            tombs = set(self._lsm.visible_tombstones(snap).tolist())
            for segment in self._visible_segments(snap):
                index = segment.indexes.get(field)
                if index is not None:
                    try:
                        parts = index.range_search(queries, radius, **search_params)
                    except NotImplementedError:
                        parts = self._brute_range(segment, field, queries, radius, metric)
                else:
                    parts = self._brute_range(segment, field, queries, radius, metric)
                for qi in range(len(queries)):
                    out[qi].extend(
                        (i, s) for i, s in parts[qi] if i not in tombs
                    )
            for qi in range(len(queries)):
                out[qi].sort(key=lambda p: p[1], reverse=metric.higher_is_better)
            return out
        finally:
            self._lsm.release(snap)

    @staticmethod
    def _brute_range(segment, field, queries, radius, metric):
        scores = metric.pairwise(queries, segment.vectors[field])
        parts = []
        for qi in range(len(queries)):
            if metric.higher_is_better:
                hits = np.flatnonzero(scores[qi] >= radius)
            else:
                hits = np.flatnonzero(scores[qi] <= radius)
            parts.append([
                (int(segment.row_ids[h]), float(scores[qi][h])) for h in hits
            ])
        return parts

    def fetch_categoricals(self, name: str, row_ids: Sequence[int]) -> List[str]:
        """Decoded categorical values for ``row_ids``."""
        if not self.schema.has_categorical(name):
            raise InvalidQueryError(f"unknown categorical field {name!r}")
        row_ids = np.asarray(row_ids, dtype=np.int64)
        codes = np.full(len(row_ids), -1, dtype=np.int64)
        snap = self._lsm.snapshot()
        try:
            for segment in self._visible_segments(snap):
                mask = segment.contains_mask(row_ids) & (codes < 0)
                if mask.any():
                    codes[mask] = segment.categoricals[name].values_for(row_ids[mask])
        finally:
            self._lsm.release(snap)
        if (codes < 0).any():
            raise KeyError("row ids not found in categorical column")
        return self._dictionaries[name].decode(codes)

    # -- maintenance ----------------------------------------------------------

    def create_index(self, field: str, index_type: str = "IVF_FLAT", **params) -> int:
        """Build indexes for ``field`` on every live segment."""
        self.schema.vector_field(field)
        return self._lsm.build_index(field, index_type, **params)

    def compact(self) -> int:
        """Force merges now; returns the number performed."""
        return self._lsm.maybe_merge()

    # -- introspection -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def num_entities(self) -> int:
        """Visible (flushed, non-deleted) entity count."""
        return self._lsm.num_live_rows

    @property
    def lsm(self) -> LSMManager:
        """The underlying storage manager (advanced use / benchmarks)."""
        return self._lsm

    def describe(self) -> Dict[str, object]:
        info = self.schema.describe()
        info["num_entities"] = self.num_entities
        info["num_segments"] = len(self._lsm.manifest.live_segment_ids())
        info["unflushed_rows"] = self._lsm.unflushed_rows
        return info
