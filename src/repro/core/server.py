"""MilvusLite: the embedded server facade managing collections."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.collection import Collection
from repro.core.errors import CollectionExistsError, CollectionNotFoundError
from repro.core.schema import CollectionSchema
from repro.obs import get_obs
from repro.storage import LSMConfig
from repro.storage.filesystem import FileSystem, InMemoryObjectStore, LocalFileSystem


@dataclass
class ServerConfig:
    """Server-wide defaults.

    Attributes:
        storage: ``"memory"`` (simulated S3), or a path for the local
            filesystem backend.
        lsm: default LSM tunables applied to new collections.
        async_writes: default write mode for new collections (Sec. 5.1).
    """

    storage: str = "memory"
    lsm: LSMConfig = field(default_factory=LSMConfig)
    async_writes: bool = False


class MilvusLite:
    """An embedded, single-process instance of the system.

    Mirrors the SDK surface of the paper's Sec. 2.1: create/drop
    collections, insert, flush, and the three query types (exposed on
    :class:`Collection`).
    """

    def __init__(self, config: Optional[ServerConfig] = None):
        self.config = config or ServerConfig()
        self._collections: Dict[str, Collection] = {}

    def _make_fs(self, collection_name: str) -> FileSystem:
        if self.config.storage == "memory":
            return InMemoryObjectStore()
        return LocalFileSystem(f"{self.config.storage}/{collection_name}")

    # -- collection lifecycle --------------------------------------------

    def create_collection(
        self,
        schema: CollectionSchema,
        lsm_config: Optional[LSMConfig] = None,
        async_writes: Optional[bool] = None,
    ) -> Collection:
        if schema.name in self._collections:
            raise CollectionExistsError(schema.name)
        collection = Collection(
            schema,
            lsm_config=lsm_config or self.config.lsm,
            fs=self._make_fs(schema.name),
            async_writes=self.config.async_writes if async_writes is None else async_writes,
        )
        self._collections[schema.name] = collection
        return collection

    def get_collection(self, name: str) -> Collection:
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionNotFoundError(name) from None

    def drop_collection(self, name: str) -> None:
        if name not in self._collections:
            raise CollectionNotFoundError(name)
        del self._collections[name]
        # release the dropped name's usage record (bounded-name budget)
        get_obs().usage.forget(name)

    def has_collection(self, name: str) -> bool:
        return name in self._collections

    def list_collections(self) -> List[str]:
        return sorted(self._collections)

    def flush_all(self) -> None:
        for collection in self._collections.values():
            collection.flush()

    def stats(self) -> Dict[str, object]:
        return {
            "collections": {
                name: coll.describe() for name, coll in self._collections.items()
            }
        }
