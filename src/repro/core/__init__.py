"""Core system: entities, collections, and the server facade (Sec. 2).

An *entity* is "one or more vectors and optionally some numerical
attributes" (Sec. 2.1).  A :class:`Collection` stores entities behind
the LSM storage engine with snapshot isolation, and supports the three
primitive query types: vector query, attribute filtering, and
multi-vector query.  :class:`MilvusLite` is the embedded server that
manages collections.
"""

from repro.core.errors import (
    MilvusError,
    CollectionNotFoundError,
    CollectionExistsError,
    SchemaError,
    InvalidQueryError,
    NodeNotFoundError,
    NoLiveReadersError,
    UnsupportedSearchParamError,
)
from repro.core.schema import (
    VectorField,
    AttributeField,
    CategoricalField,
    CollectionSchema,
)
from repro.core.collection import Collection
from repro.core.server import MilvusLite, ServerConfig

__all__ = [
    "MilvusError",
    "CollectionNotFoundError",
    "CollectionExistsError",
    "SchemaError",
    "InvalidQueryError",
    "NodeNotFoundError",
    "NoLiveReadersError",
    "UnsupportedSearchParamError",
    "VectorField",
    "AttributeField",
    "CategoricalField",
    "CollectionSchema",
    "Collection",
    "MilvusLite",
    "ServerConfig",
]
