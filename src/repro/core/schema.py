"""Collection schemas (paper Sec. 2.1).

"Each entity in Milvus is described as one or more vectors and
optionally some numerical attributes."  A schema names the vector
fields (with dimension + metric) and the numeric attribute fields.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import SchemaError
from repro.metrics import get_metric

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


def _check_name(name: str, what: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise SchemaError(f"invalid {what} name {name!r}")
    return name


@dataclass(frozen=True)
class VectorField:
    """One vector field: a name, a dimensionality, and a metric."""

    name: str
    dim: int
    metric: str = "l2"

    def __post_init__(self):
        _check_name(self.name, "vector field")
        if self.dim <= 0:
            raise SchemaError(f"vector field {self.name!r} needs positive dim")
        try:
            get_metric(self.metric)
        except KeyError:
            raise SchemaError(
                f"vector field {self.name!r} uses unknown metric {self.metric!r}"
            ) from None


@dataclass(frozen=True)
class AttributeField:
    """One numeric attribute field (the paper's current version)."""

    name: str

    def __post_init__(self):
        _check_name(self.name, "attribute field")


@dataclass(frozen=True)
class CategoricalField:
    """One categorical attribute field.

    The paper's stated future work (Sec. 2.1): "we plan to support
    categorical attributes with indexes like inverted lists or
    bitmaps" — implemented here.  ``index_kind`` is "auto" (cardinality
    heuristic), "inverted", or "bitmap".
    """

    name: str
    index_kind: str = "auto"

    def __post_init__(self):
        _check_name(self.name, "categorical field")
        if self.index_kind not in ("auto", "inverted", "bitmap"):
            raise SchemaError(
                f"categorical field {self.name!r}: unknown index kind "
                f"{self.index_kind!r}"
            )


@dataclass
class CollectionSchema:
    """Schema: vector fields + numeric attributes + categorical attributes."""

    name: str
    vector_fields: List[VectorField]
    attribute_fields: List[AttributeField] = field(default_factory=list)
    categorical_fields: List[CategoricalField] = field(default_factory=list)

    def __post_init__(self):
        _check_name(self.name, "collection")
        if not self.vector_fields:
            raise SchemaError("a collection needs at least one vector field")
        names = (
            [f.name for f in self.vector_fields]
            + [f.name for f in self.attribute_fields]
            + [f.name for f in self.categorical_fields]
        )
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SchemaError(f"duplicate field names: {sorted(dupes)}")

    # -- convenience views used by the storage layer -----------------------

    def vector_specs(self) -> Dict[str, Tuple[int, str]]:
        return {f.name: (f.dim, f.metric) for f in self.vector_fields}

    def attribute_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.attribute_fields)

    def categorical_names(self) -> Tuple[str, ...]:
        return tuple(f.name for f in self.categorical_fields)

    def categorical_field(self, name: str) -> CategoricalField:
        for f in self.categorical_fields:
            if f.name == name:
                return f
        raise SchemaError(f"unknown categorical field {name!r}")

    def has_categorical(self, name: str) -> bool:
        return any(f.name == name for f in self.categorical_fields)

    def vector_field(self, name: str) -> VectorField:
        for f in self.vector_fields:
            if f.name == name:
                return f
        raise SchemaError(f"unknown vector field {name!r}")

    def has_attribute(self, name: str) -> bool:
        return any(f.name == name for f in self.attribute_fields)

    @property
    def is_multi_vector(self) -> bool:
        return len(self.vector_fields) > 1

    def describe(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "vector_fields": [
                {"name": f.name, "dim": f.dim, "metric": f.metric}
                for f in self.vector_fields
            ],
            "attribute_fields": [f.name for f in self.attribute_fields],
            "categorical_fields": [f.name for f in self.categorical_fields],
        }
