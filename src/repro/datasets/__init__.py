"""Synthetic dataset generators standing in for SIFT1B / Deep1B / Recipe1M.

The paper evaluates on SIFT1B (128-d SIFT descriptors) and Deep1B
(96-d normalized CNN descriptors), plus Recipe1M for multi-vector
queries.  We cannot ship those corpora, so the generators here produce
data with the same statistical character at configurable scale:
Gaussian-mixture cluster structure (which is what makes IVF work),
SIFT-like non-negative magnitudes, Deep-like unit-norm vectors, and
Recipe-like correlated two-vector entities.
"""

from repro.datasets.synthetic import (
    sift_like,
    deep_like,
    gaussian_mixture,
    random_queries,
    uniform_attributes,
)
from repro.datasets.fingerprints import chemical_fingerprints
from repro.datasets.recipe import recipe_like
from repro.datasets.groundtruth import exact_ground_truth, recall_at_k

__all__ = [
    "sift_like",
    "deep_like",
    "gaussian_mixture",
    "random_queries",
    "uniform_attributes",
    "chemical_fingerprints",
    "recipe_like",
    "exact_ground_truth",
    "recall_at_k",
]
