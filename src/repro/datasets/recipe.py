"""Recipe1M-like multi-vector entity generator.

Each entity carries two vectors — a "text" embedding and an "image"
embedding (paper Sec. 7.6).  The two are *correlated* (they describe
the same recipe) with a controllable correlation: the image vector is
a linear map of the text vector plus noise.  That correlation is what
makes multi-vector aggregation meaningful.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.datasets.synthetic import gaussian_mixture
from repro.utils import ensure_positive


def recipe_like(
    n: int,
    text_dim: int = 64,
    image_dim: int = 48,
    correlation: float = 0.7,
    n_clusters: int = 32,
    normalize: bool = False,
    seed: Optional[int] = 0,
) -> Dict[str, np.ndarray]:
    """Generate ``n`` two-vector entities.

    Args:
        correlation: in [0, 1]; 1.0 makes the image embedding a pure
            projection of the text embedding, 0.0 makes them independent.
        normalize: L2-normalize both vectors (required when the bench
            treats cosine/L2 as decomposable via vector fusion).

    Returns:
        dict with keys ``"text"`` (n, text_dim) and ``"image"``
        (n, image_dim).
    """
    ensure_positive(n, "n")
    if not 0.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [0, 1], got {correlation}")
    rng = np.random.default_rng(seed)
    text = gaussian_mixture(n, text_dim, n_clusters=n_clusters, cluster_std=0.2, seed=seed)
    projection = rng.normal(size=(text_dim, image_dim)).astype(np.float32)
    projection /= np.sqrt(text_dim)
    projected = text @ projection
    independent = gaussian_mixture(
        n, image_dim, n_clusters=n_clusters, cluster_std=0.2,
        seed=None if seed is None else seed + 1,
    )
    image = correlation * projected + (1.0 - correlation) * independent
    if normalize:
        for arr in (text, image):
            norms = np.linalg.norm(arr, axis=1, keepdims=True)
            norms[norms == 0] = 1.0
            arr /= norms
    return {"text": text.astype(np.float32), "image": image.astype(np.float32)}
