"""Exact ground truth and the paper's recall metric.

Paper Sec. 7.1: "let S be the ground-truth top-k result set and S' be
the top-k results from a system, then the recall is defined as
|S ∩ S'| / |S|".
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils import ensure_matrix, topk_from_scores

_CHUNK = 4096


def exact_ground_truth(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    metric: Union[str, Metric] = "l2",
) -> np.ndarray:
    """Exact top-k ids per query via chunked brute force -> (nq, k)."""
    metric = get_metric(metric)
    queries = ensure_matrix(queries, "queries")
    data = ensure_matrix(data, "data")
    out = np.empty((len(queries), min(k, len(data))), dtype=np.int64)
    for qi in range(len(queries)):
        parts_ids = []
        parts_scores = []
        for start in range(0, len(data), _CHUNK):
            stop = min(start + _CHUNK, len(data))
            scores = metric.pairwise(queries[qi : qi + 1], data[start:stop])[0]
            ids, top = topk_from_scores(
                scores, k, metric.higher_is_better,
                ids=np.arange(start, stop, dtype=np.int64),
            )
            parts_ids.append(ids)
            parts_scores.append(top)
        all_ids = np.concatenate(parts_ids)
        all_scores = np.concatenate(parts_scores)
        final_ids, __ = topk_from_scores(
            all_scores, k, metric.higher_is_better, ids=all_ids
        )
        out[qi] = final_ids[: out.shape[1]]
    return out


def recall_at_k(found_ids: np.ndarray, truth_ids: np.ndarray) -> float:
    """Mean |S ∩ S'| / |S| over queries; padding ids (-1) are ignored."""
    found_ids = np.asarray(found_ids)
    truth_ids = np.asarray(truth_ids)
    if found_ids.ndim == 1:
        found_ids = found_ids[np.newaxis, :]
    if truth_ids.ndim == 1:
        truth_ids = truth_ids[np.newaxis, :]
    if len(found_ids) != len(truth_ids):
        raise ValueError("found and truth must cover the same queries")
    total = 0.0
    for found, truth in zip(found_ids, truth_ids):
        truth_set = set(int(t) for t in truth if t >= 0)
        if not truth_set:
            continue
        hits = sum(1 for f in found if int(f) in truth_set)
        total += hits / len(truth_set)
    return total / len(found_ids)
