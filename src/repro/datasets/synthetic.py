"""Dense synthetic vector generators with controllable cluster structure."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils import ensure_positive


def gaussian_mixture(
    n: int,
    dim: int,
    n_clusters: int = 32,
    cluster_std: float = 0.15,
    seed: Optional[int] = 0,
) -> np.ndarray:
    """Vectors drawn from a Gaussian mixture with unit-box centers.

    Cluster structure is what gives IVF indexes their pruning power, so
    every dense generator is built on this primitive.
    """
    ensure_positive(n, "n")
    ensure_positive(dim, "dim")
    ensure_positive(n_clusters, "n_clusters")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1.0, 1.0, size=(n_clusters, dim)).astype(np.float32)
    labels = rng.integers(n_clusters, size=n)
    noise = rng.normal(0.0, cluster_std, size=(n, dim)).astype(np.float32)
    return centers[labels] + noise


def sift_like(
    n: int, dim: int = 128, seed: Optional[int] = 0, n_clusters: int = 64
) -> np.ndarray:
    """SIFT-like vectors: 128-d, non-negative, bounded magnitudes.

    Real SIFT descriptors are histograms of gradients in [0, 255]; we
    shift/scale a clustered mixture into that range.
    """
    base = gaussian_mixture(n, dim, n_clusters=n_clusters, cluster_std=0.3, seed=seed)
    lo, hi = base.min(), base.max()
    scaled = (base - lo) / max(hi - lo, 1e-9) * 255.0
    return scaled.astype(np.float32)


def deep_like(
    n: int, dim: int = 96, seed: Optional[int] = 0, n_clusters: int = 64
) -> np.ndarray:
    """Deep1B-like vectors: 96-d, L2-normalized CNN-style embeddings."""
    base = gaussian_mixture(n, dim, n_clusters=n_clusters, cluster_std=0.3, seed=seed)
    norms = np.linalg.norm(base, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return (base / norms).astype(np.float32)


def random_queries(
    data: np.ndarray, nq: int, noise: float = 0.05, seed: Optional[int] = 1
) -> np.ndarray:
    """Queries sampled from the data distribution: perturbed data points.

    The paper issues "10,000 random queries to the datasets"; sampling
    near real points keeps query difficulty realistic.
    """
    ensure_positive(nq, "nq")
    rng = np.random.default_rng(seed)
    picks = rng.integers(len(data), size=nq)
    scale = float(np.abs(data).mean()) or 1.0
    jitter = rng.normal(0.0, noise * scale, size=(nq, data.shape[1]))
    return (data[picks] + jitter).astype(np.float32)


def uniform_attributes(
    n: int, low: float = 0.0, high: float = 10000.0, seed: Optional[int] = 2
) -> np.ndarray:
    """Uniform scalar attribute per row (paper Sec. 7.5: 0..10000)."""
    ensure_positive(n, "n")
    rng = np.random.default_rng(seed)
    return rng.uniform(low, high, size=n).astype(np.float64)


def train_test_split(
    data: np.ndarray, train_fraction: float = 0.5, seed: Optional[int] = 3
) -> Tuple[np.ndarray, np.ndarray]:
    """Random split used to keep index training data disjoint from queries."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(data))
    cut = int(len(data) * train_fraction)
    return data[perm[:cut]], data[perm[cut:]]
