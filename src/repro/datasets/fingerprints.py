"""Binary fingerprint generator for the chemical-structure application.

Molecular fingerprints (e.g. ECFP4, 2048 bits, ~1-3% density) are the
paper's Sec. 6.2 workload.  The generator produces sparse binary codes
with family structure: molecules in the same "scaffold family" share a
core bit pattern, so Tanimoto neighbors are meaningful.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.metrics import pack_bits
from repro.utils import ensure_positive


def chemical_fingerprints(
    n: int,
    n_bits: int = 1024,
    n_families: int = 32,
    core_bits: int = 40,
    noise_bits: int = 12,
    seed: Optional[int] = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate ``n`` packed fingerprints grouped into scaffold families.

    Returns:
        (codes, families): packed uint8 codes of shape
        ``(n, n_bits // 8)`` and the family label per molecule.
    """
    ensure_positive(n, "n")
    ensure_positive(n_bits, "n_bits")
    if n_bits % 8 != 0:
        raise ValueError(f"n_bits must be a multiple of 8, got {n_bits}")
    rng = np.random.default_rng(seed)
    cores = np.zeros((n_families, n_bits), dtype=np.uint8)
    for fam in range(n_families):
        on = rng.choice(n_bits, size=core_bits, replace=False)
        cores[fam, on] = 1

    families = rng.integers(n_families, size=n)
    bits = cores[families].copy()
    for i in range(n):
        flips = rng.choice(n_bits, size=noise_bits, replace=False)
        bits[i, flips] ^= 1
    return pack_bits(bits), families
