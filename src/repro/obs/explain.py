"""EXPLAIN: the planner dump for one collection search.

:func:`explain_search` answers "what *would* this query do" without
(or alongside) running it: which segments are selected vs. skipped and
why, which index (and parameters) serves each segment vs. a
brute-force scan, which filter strategy the cost model of
:mod:`repro.filtering.cost` recommends for the given selectivity, and
— when a :class:`~repro.hetero.scheduler.SegmentScheduler` is passed —
which device the greedy least-finish-time policy would pick per
segment.  The dump is a plain JSON-safe dict, served over REST as
``POST /explain``.

``search(..., explain=True)`` pairs this plan with the executed
:class:`~repro.obs.profile.QueryProfile` (the ANALYZE half) in an
:class:`ExplainedResult`; both halves work with observability off —
the profiler *store* is the only part gated on ``REPRO_OBS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs.profile import QueryProfile

__all__ = ["ExplainedResult", "explain_search"]


@dataclass
class ExplainedResult:
    """EXPLAIN ANALYZE output: results + plan + executed profile."""

    result: object            #: the SearchResult the query produced
    plan: Dict[str, object]   #: :func:`explain_search` dump
    profile: QueryProfile     #: work counters / stage timings

    def to_dict(self) -> Dict[str, object]:
        return {"plan": self.plan, "profile": self.profile.to_dict()}

    def estimated_vs_actual(self) -> Dict[str, Dict[str, float]]:
        """Calibrated counter estimates against executed counters.

        Only meaningful for adaptive filtered searches (the plan then
        carries ``filter.estimated_counters``); empty otherwise.  The
        per-counter ``relative_error`` is what the calibration
        acceptance gate tracks toward +/-20%.
        """
        filter_section = self.plan.get("filter") or {}
        estimated = filter_section.get("estimated_counters") or {}
        actual = self.profile.total_counters()
        out: Dict[str, Dict[str, float]] = {}
        for key, value in estimated.items():
            if not isinstance(value, (int, float)):
                continue
            measured = float(actual.get(key, 0))
            out[key] = {
                "estimated": float(value),
                "actual": measured,
                "relative_error": (
                    abs(float(value) - measured) / measured
                    if measured else float("inf")
                ),
            }
        return out


def _segment_plan(segment, field: str, tombstones, admissible) -> Dict[str, object]:
    """Plan entry for one segment: index choice + selected/skipped."""
    rows = int(segment.num_rows)
    dead = int(segment.contains_mask(tombstones).sum()) if len(tombstones) else 0
    live = rows - dead
    entry: Dict[str, object] = {
        "segment_id": int(segment.segment_id),
        "rows": rows,
        "live_rows": live,
    }
    index = segment.indexes.get(field)
    if index is not None:
        stats = index.stats()
        entry["plan"] = f"index:{index.index_type}"
        entry["index"] = {
            key: value for key, value in stats.items()
            if isinstance(value, (int, float, str, bool))
        }
        for param in ("nlist", "nprobe", "m", "ef_construction", "n_trees"):
            value = getattr(index, param, None)
            if isinstance(value, int):
                entry["index"][param] = value
    else:
        entry["plan"] = "brute_force"
    if admissible is not None:
        entry["admissible_rows"] = int(segment.contains_mask(admissible).sum())
    if rows == 0:
        entry["selected"], entry["reason"] = False, "empty segment"
    elif live == 0:
        entry["selected"], entry["reason"] = False, "all rows tombstoned"
    elif admissible is not None and entry["admissible_rows"] == 0:
        entry["selected"], entry["reason"] = False, "no admissible rows under filter"
    else:
        entry["selected"] = True
    return entry


def _filter_plan(collection, filter, snap, k: int, scanned_fraction: float,
                 index_info=None, nq: int = 1):
    """Filter section: selectivity + what the cost model recommends.

    Without adaptive planning the collection's filtered read path
    always executes strategy B (attribute-first bitmap pushdown); the
    static cost model's pick is reported alongside so plan output shows
    when B was *not* the cheapest choice for this selectivity (paper
    Sec. 4.1).  With ``REPRO_ADAPTIVE`` on, the collection's calibrated
    planner picks strategy *and* knobs, and the section carries both
    the calibrated and analytical costs, the predicted work counters,
    and the per-strategy calibration residuals.
    """
    from repro.filtering.cost import CostModel

    admissible = collection._filter_rows(filter, snap)
    n = int(collection._lsm.num_live_rows)
    passing = len(admissible) / n if n else 0.0
    if getattr(collection, "_adaptive", False) and index_info is not None:
        index_type, nlist, bucket_sizes, supports, __, row_bytes = index_info
        planner = collection.planner
        qplan = planner.plan(
            n=max(n, 1), passing_fraction=passing, k=k,
            index_type=index_type or "", nlist=nlist,
            bucket_sizes=bucket_sizes, supports_pushdown=supports,
            row_bytes=row_bytes,
        )
        return {
            "spec": list(filter),
            "admissible_rows": int(len(admissible)),
            "selectivity": passing,
            "adaptive": True,
            "cost_model": {
                "A": qplan.estimated.a, "B": qplan.estimated.b,
                "C": qplan.estimated.c,
            },
            "analytical_cost": {
                "A": qplan.raw.a, "B": qplan.raw.b, "C": qplan.raw.c,
            },
            "recommended": qplan.strategy,
            "executed": qplan.strategy,
            "knobs": qplan.knobs(),
            # scaled to the batch so they compare 1:1 with the executed
            # profile's counters in estimated_vs_actual().
            "estimated_counters": {
                name: value * nq
                for name, value in planner.estimated_counters(qplan).items()
            },
            "calibration": planner.residuals(),
        }, admissible
    costs = CostModel().estimate(n, passing, k, scanned_fraction)
    return {
        "spec": list(filter),
        "admissible_rows": int(len(admissible)),
        "selectivity": passing,
        "cost_model": {"A": costs.a, "B": costs.b, "C": costs.c},
        "recommended": costs.best(),
        "executed": "B",
    }, admissible


def _hetero_plan(scheduler, segments, field: str, nq: int) -> Dict[str, object]:
    """Simulated greedy least-finish-time dispatch, without side effects.

    Residency is read but never mutated, so planning a query does not
    move the real scheduler's clock or device memory — repeated
    EXPLAINs are idempotent.
    """
    from repro.hetero.scheduler import SearchTask

    devices = scheduler.devices()
    busy = scheduler.device_loads()
    assignments: List[Dict[str, object]] = []
    for segment in segments:
        task = SearchTask(
            segment_id=int(segment.segment_id),
            nbytes=int(segment.memory_bytes()),
            m=nq,
            n=int(segment.num_rows),
            dim=int(next(iter(segment.vectors.values())).shape[1]),
        )
        best = None
        for dev_id, device in devices.items():
            end = busy[dev_id] + scheduler.task_cost(device, task)
            if best is None or end < best[0]:
                best = (end, dev_id)
        end, dev_id = best
        busy[dev_id] = end
        assignments.append({
            "segment_id": task.segment_id,
            "device": f"gpu-{dev_id}",
            "end_seconds": end,
        })
    return {
        "num_devices": len(devices),
        "assignments": assignments,
        "makespan_seconds": max(busy.values(), default=0.0),
    }


def explain_search(
    collection,
    field: str,
    queries: Optional[np.ndarray] = None,
    k: int = 10,
    filter=None,
    scheduler=None,
    parallel: Optional[bool] = None,
    pool_size: Optional[int] = None,
    **search_params,
) -> Dict[str, object]:
    """The planner dump for one :meth:`Collection.search` call."""
    from repro.exec import QueryExecutor

    spec = collection.schema.vector_field(field)
    nq = len(np.atleast_2d(np.asarray(queries))) if queries is not None else 1
    executor = QueryExecutor(parallel=parallel, pool_size=pool_size)
    snap = collection._lsm.snapshot()
    try:
        segments = [
            collection._lsm.bufferpool.get(seg_id) for seg_id in snap.segment_ids
        ]
        # scanned fraction for the cost model: IVF probes nprobe of
        # nlist buckets (bucket-size weighted — heavy buckets are
        # probed disproportionately often); everything else scans the
        # full segment.
        from repro.filtering.cost import weighted_scanned_fraction

        scanned_fraction = 1.0
        index_info = None
        for segment in segments:
            index = segment.indexes.get(field)
            if index is None:
                continue
            nlist = getattr(index, "nlist", None)
            sizes = (
                index.bucket_sizes().tolist()
                if hasattr(index, "bucket_sizes") else None
            )
            index_info = (
                index.index_type, nlist, sizes,
                index.supports_search_param("row_filter"),
                type(index).SEARCH_PARAMS,
                index.row_code_bytes(),
            )
            if nlist:
                nprobe = int(search_params.get("nprobe", 8))
                scanned_fraction = weighted_scanned_fraction(nprobe, sizes, nlist)
            break
        filter_section, admissible = (None, None)
        if filter is not None:
            filter_section, admissible = _filter_plan(
                collection, filter, snap, k, scanned_fraction, index_info, nq=nq
            )
        segment_entries = [
            _segment_plan(segment, field, snap.tombstones, admissible)
            for segment in segments
        ]
        plan: Dict[str, object] = {
            "collection": collection.schema.name,
            "field": field,
            "metric": spec.metric,
            "k": int(k),
            "nq": nq,
            "params": {key: value for key, value in search_params.items()},
            "parallel": {"enabled": executor.parallel,
                         "pool_size": executor.pool_size},
            "segments": segment_entries,
            "segments_selected": sum(e["selected"] for e in segment_entries),
            "segments_skipped": sum(not e["selected"] for e in segment_entries),
            "filter": filter_section,
        }
        if scheduler is not None:
            selected = [
                segment for segment, entry in zip(segments, segment_entries)
                if entry["selected"]
            ]
            plan["hetero"] = _hetero_plan(scheduler, selected, field, nq)
        return plan
    finally:
        collection._lsm.release(snap)
