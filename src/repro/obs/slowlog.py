"""Slow-query log: a threshold-gated ring buffer of query records.

The operational tool the paper's cloud deployment leans on: when p99
spikes, the first question is *which* queries were slow and *where*
the time went.  Every instrumented query path reports its effective
latency here; queries at or above ``threshold_seconds`` are retained
in a bounded ring (oldest evicted first) together with their trace id,
so a slow entry links straight to its span tree via
``GET /traces/<trace_id>``.

When query profiling collected a :class:`~repro.obs.profile
.QueryProfile` for the offending query, the caller passes it to
:meth:`SlowQueryLog.observe` and the rendered profile tree is embedded
in the entry — answering *where the work went* (distance evals, rows
scanned, candidates pruned) without a second run.  Memory stays
bounded: the ring caps entries and each profile tree caps its own
children (``MAX_CHILDREN_PER_NODE``).

Injected fault latency (see :meth:`FaultPlan.latency
<repro.storage.faults.FaultPlan.latency>`) is *accounted*, not slept;
callers fold it into the latency they report so chaos tests can assert
slow-path behaviour without slow tests.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = ["SlowQuery", "SlowQueryLog", "NullSlowQueryLog", "NULL_SLOW_LOG"]


@dataclass
class SlowQuery:
    """One over-threshold query."""

    name: str                 #: instrumented operation, e.g. "cluster.search"
    seconds: float            #: effective latency (wall + accounted faults)
    threshold_seconds: float  #: the threshold in force when recorded
    trace_id: Optional[str] = None
    detail: Dict[str, object] = field(default_factory=dict)
    profile: Optional[Dict[str, object]] = None  #: rendered QueryProfile

    def to_dict(self) -> Dict[str, object]:
        entry = {
            "name": self.name,
            "seconds": self.seconds,
            "threshold_seconds": self.threshold_seconds,
            "trace_id": self.trace_id,
            "detail": dict(self.detail),
        }
        if self.profile is not None:
            entry["profile"] = self.profile
        return entry


class SlowQueryLog:
    """Threshold filter + bounded ring of :class:`SlowQuery` records."""

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {"_entries": "_lock", "observed": "_lock", "recorded": "_lock"}

    def __init__(self, threshold_seconds: float = 0.25, capacity: int = 128):
        if threshold_seconds < 0:
            raise ValueError("threshold_seconds must be >= 0")
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._entries: Deque[SlowQuery] = deque(maxlen=capacity)
        self.observed = 0  #: queries reported (fast + slow)
        self.recorded = 0  #: queries that crossed the threshold

    def observe(
        self,
        name: str,
        seconds: float,
        trace_id: Optional[str] = None,
        profile=None,
        **detail,
    ) -> bool:
        """Report one query's latency; True when it was slow (recorded).

        ``profile`` takes the query's :class:`QueryProfile` (or None);
        it is rendered to a dict only for queries that cross the
        threshold, so the fast path never pays for serialization.
        """
        slow = seconds >= self.threshold_seconds
        rendered = profile.to_dict() if (slow and profile is not None) else None
        with self._lock:
            self.observed += 1
            if slow:
                self.recorded += 1
                self._entries.append(
                    SlowQuery(
                        name=name,
                        seconds=float(seconds),
                        threshold_seconds=self.threshold_seconds,
                        trace_id=trace_id,
                        detail=dict(detail),
                        profile=rendered,
                    )
                )
        return slow

    def entries(self) -> List[SlowQuery]:
        """Retained slow queries, oldest first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.observed = 0
            self.recorded = 0


class NullSlowQueryLog:
    """Slow-log stand-in when observability is off."""

    threshold_seconds = float("inf")
    capacity = 0
    observed = 0
    recorded = 0

    def observe(self, name, seconds, trace_id=None, profile=None, **detail) -> bool:
        return False

    def entries(self) -> List[SlowQuery]:
        return []

    def clear(self) -> None:
        pass


NULL_SLOW_LOG = NullSlowQueryLog()
