"""Background-job registry: what is the maintenance machinery doing?

PR 7 moved flush and compaction onto a background thread; an index
build can also run inside a flush.  Each such *unit of work* registers
here as a :class:`Job` with a kind, a phase, progress (rows/bytes
done vs total), and a heartbeat timestamp, so ``GET /jobs`` (and the
``reprotop`` dashboard) can show what's in flight, and the health
watchdog can flag a job whose heartbeat has gone stale (a flush parked
forever on a stalled write).

Structure mirrors the rest of :mod:`repro.obs`:

* **bounded memory** — running jobs are naturally bounded by the
  worker count; finished jobs are retained in a fixed-size ring;
* **thread-safe leaf** — all mutations (including :class:`Job` field
  updates) serialize on the registry's single lock, sanitizer role
  ``"obs"``; gauges are updated *after* the lock is released so two
  same-level ``"obs"`` locks never nest;
* **injectable clock** — heartbeats default to
  :func:`time.perf_counter`; fault-plan tests inject a fake clock so
  stalled-job detection is deterministic;
* **null objects** — :data:`NULL_JOBS` / :data:`NULL_JOB` make every
  instrumented site one no-op call when observability is off.

Gauges exported (through the registry handed in by
:class:`~repro.obs.Observability`): ``bg_jobs_running{kind}``,
``bg_queue_depth{queue}``; counter ``bg_jobs_total{kind,state}``;
histogram ``bg_job_seconds{kind}``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs.metrics import NULL_REGISTRY
from repro.utils.sanitizer import maybe_sanitize

__all__ = ["Job", "JobRegistry", "NullJob", "NullJobRegistry",
           "NULL_JOB", "NULL_JOBS"]

RUNNING = "running"
DONE = "done"
FAILED = "failed"


class Job:
    """One unit of background work; mutate via the methods only.

    All fields are guarded by the owning registry's lock (shared in as
    ``_lock``); the mutator methods take it, so call sites may update
    progress from any thread — including while holding engine locks,
    since ``"obs"`` is a leaf role.
    """

    _GUARDED_BY = {
        "phase": "_lock",
        "state": "_lock",
        "rows_done": "_lock",
        "rows_total": "_lock",
        "bytes_done": "_lock",
        "bytes_total": "_lock",
        "heartbeat_at": "_lock",
        "finished_at": "_lock",
        "error": "_lock",
    }

    __slots__ = (
        "_registry", "_lock", "job_id", "kind", "collection", "phase",
        "state", "rows_done", "rows_total", "bytes_done", "bytes_total",
        "started_at", "heartbeat_at", "finished_at", "error",
    )

    def __init__(self, registry: "JobRegistry", job_id: int, kind: str,
                 collection: str, now: float):
        self._registry = registry
        self._lock = registry._lock
        self.job_id = job_id
        self.kind = kind
        self.collection = collection
        self.phase = "start"
        self.state = RUNNING
        self.rows_done = 0
        self.rows_total = 0
        self.bytes_done = 0
        self.bytes_total = 0
        self.started_at = now
        self.heartbeat_at = now
        self.finished_at = 0.0
        self.error = ""

    # -- mutators ---------------------------------------------------------

    def advance(
        self,
        phase: Optional[str] = None,
        rows_done: Optional[int] = None,
        rows_total: Optional[int] = None,
        bytes_done: Optional[int] = None,
        bytes_total: Optional[int] = None,
    ) -> None:
        """Update phase/progress; every call refreshes the heartbeat."""
        now = self._registry._clock()
        with self._lock:
            if phase is not None:
                self.phase = phase
            if rows_done is not None:
                self.rows_done = int(rows_done)
            if rows_total is not None:
                self.rows_total = int(rows_total)
            if bytes_done is not None:
                self.bytes_done = int(bytes_done)
            if bytes_total is not None:
                self.bytes_total = int(bytes_total)
            self.heartbeat_at = now

    def heartbeat(self) -> None:
        """I'm alive (long phases with nothing countable to report)."""
        now = self._registry._clock()
        with self._lock:
            self.heartbeat_at = now

    def finish(self, error: Optional[str] = None) -> None:
        """Mark done (or failed) and move to the finished ring."""
        self._registry._finish(self, error)

    # -- reads ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        with self._lock:
            return {
                "id": self.job_id,
                "kind": self.kind,
                "collection": self.collection,
                "phase": self.phase,
                "state": self.state,
                "rows_done": self.rows_done,
                "rows_total": self.rows_total,
                "bytes_done": self.bytes_done,
                "bytes_total": self.bytes_total,
                "started_at": self.started_at,
                "heartbeat_at": self.heartbeat_at,
                "finished_at": self.finished_at,
                "error": self.error,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Job(id={self.job_id}, kind={self.kind!r}, "
                f"phase={self.phase!r}, state={self.state!r})")


class JobRegistry:
    """Running + recently finished jobs, with named queue depths."""

    _GUARDED_BY = {
        "_running": "_lock",
        "_finished": "_lock",
        "_queues": "_lock",
        "_seq": "_lock",
    }

    def __init__(self, registry=None, finished_capacity: int = 64, clock=None):
        self._metrics = registry if registry is not None else NULL_REGISTRY
        self._clock = clock if clock is not None else time.perf_counter
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._running: Dict[int, Job] = {}
        self._finished: deque = deque(maxlen=finished_capacity)
        self._queues: Dict[str, int] = {}
        self._seq = 0

    # -- lifecycle --------------------------------------------------------

    def start(self, kind: str, collection: str = "") -> Job:
        now = self._clock()
        with self._lock:
            self._seq += 1
            job = Job(self, self._seq, kind, collection, now)
            self._running[job.job_id] = job
        # gauge updates outside the lock: "obs" locks never nest.
        self._metrics.gauge("bg_jobs_running", kind=kind).inc()
        return job

    def _finish(self, job: Job, error: Optional[str]) -> None:
        now = self._clock()
        with self._lock:
            if job.job_id not in self._running:  # already finished
                return
            del self._running[job.job_id]
            job.state = FAILED if error else DONE
            job.error = error or ""
            job.finished_at = now
            job.heartbeat_at = now
            self._finished.append(job)
            elapsed = now - job.started_at
        self._metrics.gauge("bg_jobs_running", kind=job.kind).dec()
        self._metrics.counter(
            "bg_jobs_total", kind=job.kind, state=job.state).inc()
        self._metrics.histogram("bg_job_seconds", kind=job.kind).observe(elapsed)

    def set_queue_depth(self, queue: str, depth: int) -> None:
        with self._lock:
            self._queues[queue] = int(depth)
        self._metrics.gauge("bg_queue_depth", queue=queue).set(depth)

    # -- reads ------------------------------------------------------------

    def running(self) -> List[Job]:
        with self._lock:
            return list(self._running.values())

    def finished(self) -> List[Job]:
        with self._lock:
            return list(self._finished)

    def queue_depths(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._queues)

    def stalled(self, max_age_seconds: float) -> List[Job]:
        """Running jobs whose heartbeat is older than ``max_age_seconds``."""
        now = self._clock()
        with self._lock:
            return [
                job for job in self._running.values()
                if now - job.heartbeat_at > max_age_seconds
            ]

    def snapshot(self) -> Dict[str, object]:
        """JSON-compatible dump (the ``GET /jobs`` payload)."""
        return {
            "running": [job.to_dict() for job in self.running()],
            "finished": [job.to_dict() for job in self.finished()],
            "queues": self.queue_depths(),
        }


class NullJob:
    """Disabled-path job handle: every mutator is one no-op call."""

    job_id = 0
    kind = ""
    collection = ""
    phase = ""
    state = DONE
    rows_done = rows_total = bytes_done = bytes_total = 0
    started_at = heartbeat_at = finished_at = 0.0
    error = ""

    def advance(self, phase=None, rows_done=None, rows_total=None,
                bytes_done=None, bytes_total=None) -> None:
        pass

    def heartbeat(self) -> None:
        pass

    def finish(self, error=None) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {}


NULL_JOB = NullJob()


class NullJobRegistry:
    def start(self, kind: str, collection: str = "") -> NullJob:
        return NULL_JOB

    def set_queue_depth(self, queue: str, depth: int) -> None:
        pass

    def running(self) -> List[Job]:
        return []

    def finished(self) -> List[Job]:
        return []

    def queue_depths(self) -> Dict[str, int]:
        return {}

    def stalled(self, max_age_seconds: float) -> List[Job]:
        return []

    def snapshot(self) -> Dict[str, object]:
        return {"running": [], "finished": [], "queues": {}}


NULL_JOBS = NullJobRegistry()
