"""Per-collection usage accounting — the quota/billing substrate.

The profiling layer (PR 5) gives every query an *exact* integer work
profile (``distance_evals``, ``rows_scanned``, ``bytes_read``,
``buckets_probed`` — deterministic, serial == pooled).  The usage
meter aggregates those per collection, together with query/insert
counts and wall seconds, so ``GET /usage`` answers the multi-tenant
question the ROADMAP's front door needs: *which collection is doing
how much work?*  Because the inputs are the exact profile counters,
``usage[name]["counters"]["distance_evals"]`` equals the sum over
that collection's query profiles to the last integer.

Bounded memory: at most ``max_collections`` named records; further
names aggregate into the :data:`OVERFLOW` bucket (dropped collections
are remembered until :meth:`forget`).  One leaf lock, role ``"obs"``.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = ["UsageMeter", "NullUsageMeter", "NULL_USAGE", "OVERFLOW"]

#: bucket that absorbs collections beyond the bounded name budget.
OVERFLOW = "__other__"


def _new_record() -> Dict[str, object]:
    return {
        "queries": 0,
        "query_seconds": 0.0,
        "inserts": 0,
        "insert_rows": 0,
        "counters": {},
    }


class UsageMeter:
    """Exact per-collection work aggregation."""

    _GUARDED_BY = {"_collections": "_lock"}

    def __init__(self, max_collections: int = 256):
        if max_collections <= 0:
            raise ValueError("max_collections must be positive")
        self.max_collections = max_collections
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._collections: Dict[str, Dict[str, object]] = {}

    def _record_locked(self, collection: str) -> Dict[str, object]:
        record = self._collections.get(collection)
        if record is None:
            if (len(self._collections) >= self.max_collections
                    and collection != OVERFLOW):
                return self._record_locked(OVERFLOW)
            record = _new_record()
            self._collections[collection] = record
        return record

    # -- writes -----------------------------------------------------------

    def record_query(
        self,
        collection: str,
        seconds: float,
        counters: Optional[Dict[str, int]] = None,
    ) -> None:
        """One query against ``collection`` took ``seconds`` and did
        exactly ``counters`` of work (a profile's ``total_counters()``)."""
        with self._lock:
            record = self._record_locked(collection)
            record["queries"] += 1
            record["query_seconds"] += float(seconds)
            if counters:
                totals = record["counters"]
                for name, value in counters.items():
                    totals[name] = totals.get(name, 0) + int(value)

    def record_insert(self, collection: str, rows: int) -> None:
        with self._lock:
            record = self._record_locked(collection)
            record["inserts"] += 1
            record["insert_rows"] += int(rows)

    def forget(self, collection: str) -> None:
        """Drop a collection's record (e.g. after drop_collection)."""
        with self._lock:
            self._collections.pop(collection, None)

    # -- reads ------------------------------------------------------------

    def collection(self, name: str) -> Optional[Dict[str, object]]:
        """Deep-copied record for one collection, or None."""
        with self._lock:
            record = self._collections.get(name)
            if record is None:
                return None
            out = dict(record)
            out["counters"] = dict(record["counters"])
            return out

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-compatible dump of every record (``GET /usage``)."""
        with self._lock:
            return {
                name: {**record, "counters": dict(record["counters"])}
                for name, record in sorted(self._collections.items())
            }


class NullUsageMeter:
    """Disabled-path meter: one no-op call per record."""

    max_collections = 0

    def record_query(self, collection, seconds, counters=None) -> None:
        pass

    def record_insert(self, collection, rows) -> None:
        pass

    def forget(self, collection) -> None:
        pass

    def collection(self, name) -> Optional[Dict[str, object]]:
        return None

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {}


NULL_USAGE = NullUsageMeter()
