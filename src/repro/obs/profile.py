"""Query profiling: per-stage wall time plus deterministic work counters.

A :class:`QueryProfile` is one query's EXPLAIN ANALYZE record: a tree
of :class:`ProfileNode` stages (collection -> lsm fan-out -> segment
-> index scan), each carrying wall-clock ``seconds`` and a dict of
exact integer work counters — distance evaluations, rows scanned,
bytes read from storage, heap pushes, candidates pruned, cache and
norm-cache hits.  Counters are plain ints incremented by instrumented
code, never sampled or estimated, so two seeded runs of the same query
produce byte-equal counter dicts and tests can assert on them.

Propagation is ambient and mirrors :class:`~repro.obs.tracing.Tracer`:
the innermost active node lives in a :mod:`contextvars` variable, and
instrumented sites call :func:`profile_count` / :func:`profile_stage`
without any plumbing through signatures.  When no profile is active
each site costs one call that reads the context variable and returns —
the same "one no-op call" budget as the null tracer — so the
pooled-vs-serial bit-identity guarantees from ``tests/test_exec.py``
are untouched.

Fan-out determinism: a coordinator that fans work over the pool
(:meth:`LSMManager.search`, :meth:`MilvusCluster.search`) pre-creates
one child stage per task *in submission order* on its own thread, and
each task enters its pre-created stage inside the worker (the pool
propagates the ambient context via ``contextvars.copy_context``).
Child order is therefore fixed by submission order, no two threads
ever touch the same node, and serial and pooled runs of one query
yield identical counter totals.

Finished profiles are retained by a bounded :class:`Profiler` store
keyed by trace id (LRU, like the tracer's trace store) and served by
``GET /profiles/{trace_id}``.  When observability is off,
:data:`NULL_PROFILER` and the shared :data:`NULL_STAGE` node swallow
everything.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "ProfileNode",
    "QueryProfile",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "NULL_STAGE",
    "current_node",
    "profile_count",
    "profile_attr",
    "profile_stage",
    "measurement_stage",
]

#: children retained per node before overflow counts into
#: ``dropped_children`` (bounds one profile's memory the way
#: ``max_spans_per_trace`` bounds a trace).
MAX_CHILDREN_PER_NODE = 256

#: the innermost active profile node of the current execution context.
_ACTIVE: "contextvars.ContextVar[Optional[ProfileNode]]" = contextvars.ContextVar(
    "repro_obs_active_profile", default=None
)


class ProfileNode:
    """One stage of a query profile: timed region + integer counters.

    The node is its own context manager: entering makes it the ambient
    counter sink (so :func:`profile_count` lands here), exiting adds
    the elapsed wall time and restores the previous node.  Counter
    increments only ever come from the thread that currently has the
    node entered, so no lock is needed; cross-stage totals are computed
    after the fact by :meth:`total_counters`.
    """

    __slots__ = (
        "name", "attrs", "counters", "children", "seconds",
        "dropped_children", "_start", "_token",
    )

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.counters: Dict[str, int] = {}
        self.children: List[ProfileNode] = []
        self.seconds = 0.0
        self.dropped_children = 0
        self._start = 0.0
        self._token: Optional[contextvars.Token] = None

    # -- accounting --------------------------------------------------------

    def count(self, counter: str, n: int = 1) -> None:
        """Add ``n`` to an integer work counter on this node."""
        self.counters[counter] = self.counters.get(counter, 0) + int(n)

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def stage(self, name: str, **attrs) -> "ProfileNode":
        """Create (but do not enter) a child stage.

        Fan-out coordinators call this once per task in submission
        order, then hand each task its own stage to enter inside the
        worker — that is what keeps pooled counter trees identical to
        serial ones.  Serial code normally prefers the ambient
        :func:`profile_stage` instead.
        """
        if len(self.children) >= MAX_CHILDREN_PER_NODE:
            self.dropped_children += 1
            return NULL_STAGE
        child = ProfileNode(name, attrs)
        self.children.append(child)
        return child

    def total_counters(self) -> Dict[str, int]:
        """Counter totals over this node's whole subtree."""
        totals = dict(self.counters)
        for child in self.children:
            for key, value in child.total_counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def to_dict(self) -> Dict[str, object]:
        node: Dict[str, object] = {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "children": [child.to_dict() for child in self.children],
        }
        if self.dropped_children:
            node["dropped_children"] = self.dropped_children
        return node

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "ProfileNode":
        self._start = time.perf_counter()
        self._token = _ACTIVE.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds += time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProfileNode({self.name!r}, {self.seconds * 1e3:.3f}ms, "
            f"counters={self.counters}, children={len(self.children)})"
        )


class _NullStage:
    """Shared no-op stage: absorbs counts, never records anything."""

    name = ""
    attrs: Dict[str, object] = {}
    counters: Dict[str, int] = {}
    children: List[ProfileNode] = []
    seconds = 0.0
    dropped_children = 0

    def count(self, counter: str, n: int = 1) -> None:
        pass

    def set_attr(self, key: str, value: object) -> None:
        pass

    def stage(self, name: str, **attrs) -> "_NullStage":
        return self

    def total_counters(self) -> Dict[str, int]:
        return {}

    def to_dict(self) -> Dict[str, object]:
        return {}

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_STAGE = _NullStage()


def current_node() -> Optional[ProfileNode]:
    """The innermost active profile node, or None when not profiling.

    Hot loops fetch this once, accumulate locally, and flush totals
    with one :meth:`ProfileNode.count` call per counter.
    """
    return _ACTIVE.get()


def profile_count(counter: str, n: int = 1) -> None:
    """Add ``n`` to ``counter`` on the ambient node; no-op otherwise."""
    node = _ACTIVE.get()
    if node is not None:
        node.count(counter, n)


def profile_attr(key: str, value: object) -> None:
    """Set an attribute on the ambient node; no-op when not profiling."""
    node = _ACTIVE.get()
    if node is not None:
        node.set_attr(key, value)


def profile_stage(name: str, **attrs):
    """A child stage of the ambient node, for use as a context manager.

    Returns the shared :data:`NULL_STAGE` when no profile is active,
    so instrumented code writes one unconditional ``with`` either way.
    """
    node = _ACTIVE.get()
    if node is None:
        return NULL_STAGE
    return node.stage(name, **attrs)


def measurement_stage(name: str, **attrs) -> ProfileNode:
    """A *recording* stage even when no profile is active.

    Calibration feedback needs exact counters for every executed query,
    not only the explained ones.  With an ambient profile this is an
    ordinary child stage (the measurements show up in EXPLAIN ANALYZE);
    without one it is a detached root node the caller reads counters
    from and then drops — never :data:`NULL_STAGE`, which would feed
    the calibrator zeros.
    """
    node = _ACTIVE.get()
    if node is None:
        return ProfileNode(name, attrs)
    return node.stage(name, **attrs)


class QueryProfile:
    """One query's profile: a root stage plus the retaining trace id.

    Usable standalone (``search(..., explain=True)`` works with
    observability off): entering activates the root node, exiting
    finalizes it.  The :class:`Profiler` store only gets involved when
    observability is enabled.
    """

    __slots__ = ("root", "trace_id")

    def __init__(self, name: str = "query", trace_id: Optional[str] = None, **attrs):
        self.root = ProfileNode(name, attrs)
        self.trace_id = trace_id

    @property
    def seconds(self) -> float:
        return self.root.seconds

    def count(self, counter: str, n: int = 1) -> None:
        self.root.count(counter, n)

    def total_counters(self) -> Dict[str, int]:
        return self.root.total_counters()

    def to_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "root": self.root.to_dict(),
                "total_counters": self.total_counters()}

    def __enter__(self) -> "QueryProfile":
        self.root.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.root.__exit__(exc_type, exc, tb)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryProfile(trace={self.trace_id}, root={self.root!r})"


class Profiler:
    """Bounded LRU store of finished profiles, keyed by trace id."""

    #: real profilers collect on every search; the null one never does.
    enabled = True

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {"_profiles": "_lock", "_seq": "_lock"}

    def __init__(self, max_profiles: int = 128):
        if max_profiles < 1:
            raise ValueError("profile store bound must be >= 1")
        self.max_profiles = max_profiles
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        #: trace_id -> finished profile, oldest first.
        self._profiles: "OrderedDict[str, QueryProfile]" = OrderedDict()
        self._seq = 0

    def record(self, trace_id: Optional[str], profile: QueryProfile) -> str:
        """Retain a finished profile; returns its store key.

        Keys by the query's trace id when tracing produced one, else by
        a deterministic ``p%06d`` sequence number, mirroring the
        tracer's id scheme.
        """
        with self._lock:
            if trace_id is None:
                self._seq += 1
                trace_id = f"p{self._seq:06d}"
            profile.trace_id = trace_id
            self._profiles[trace_id] = profile
            self._profiles.move_to_end(trace_id)
            while len(self._profiles) > self.max_profiles:
                self._profiles.popitem(last=False)
        return trace_id

    def get(self, trace_id: str) -> Optional[QueryProfile]:
        with self._lock:
            return self._profiles.get(trace_id)

    def profile_ids(self) -> List[str]:
        with self._lock:
            return list(self._profiles)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()
            self._seq = 0


class NullProfiler:
    """Profiler stand-in when observability is off."""

    enabled = False

    def record(self, trace_id: Optional[str], profile: QueryProfile) -> str:
        return trace_id or ""

    def get(self, trace_id: str) -> None:
        return None

    def profile_ids(self) -> List[str]:
        return []

    def clear(self) -> None:
        pass


NULL_PROFILER = NullProfiler()
