"""Counters, gauges, and bounded-memory histograms.

The registry is the numeric half of the observability layer (the
VDBMS survey calls monitoring of the query pipeline a core component;
the Faiss paper shows per-stage stats are what make ANN tuning
tractable).  Design constraints, in order:

* **bounded memory** — histograms keep fixed-boundary bucket counts
  plus sum/count/min/max, never raw samples, so p50/p95/p99 are
  readable (:meth:`Histogram.quantile`) at O(#buckets) space no matter
  how many observations land;
* **near-zero cost when disabled** — the module also provides
  :class:`NullCounter`/:class:`NullGauge`/:class:`NullHistogram`
  singletons behind :data:`NULL_REGISTRY`; an instrument call on the
  null path is one no-op method call;
* **thread-safe** — every instrument serializes its mutations on a
  leaf lock (sanitizer role ``"obs"``: any engine lock may be held
  while an instrument updates, but an instrument never acquires
  anything else);
* **injectable** — the process-global registry lives in
  :mod:`repro.obs` and tests swap it via ``obs.enable(registry=...)``.

Metric naming convention (see docs/INTERNALS.md §12):
``<component>_<noun>_<unit>`` with ``_total`` for counters and
``_seconds``/``_bytes`` for histograms/gauges, e.g.
``bufferpool_hits_total``, ``lsm_flush_seconds``.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRIC_DESCRIPTIONS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "NULL_REGISTRY",
    "describe_metric",
]

#: default histogram boundaries: latency in seconds, 100us .. 10s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: a label set, normalized to a sorted tuple of (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus text-format escaping for label values.

    Backslash first (so later escapes are not double-escaped), then the
    quote delimiter, then literal newlines — per the exposition-format
    spec.  Hostile values (shard names, user-supplied collection names)
    must not be able to break out of the label quoting or inject lines.
    """
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help_text(text: str) -> str:
    """Escaping for ``# HELP`` description text.

    Per the exposition-format spec this is **not** the label escaping:
    HELP text is unquoted, so only backslash and newline are escaped
    (a raw newline would terminate the comment and inject a line;
    quotes pass through verbatim).
    """
    return text.replace("\\", "\\\\").replace("\n", "\\n")


#: one-line operator descriptions rendered as ``# HELP`` lines in the
#: exposition.  Keyed by metric family name; unknown families fall
#: back to :func:`describe_metric`'s generated text so every family
#: always carries a HELP line.
METRIC_DESCRIPTIONS: Dict[str, str] = {
    # storage / LSM
    "lsm_insert_rows_total": "Rows accepted into memtables.",
    "lsm_insert_seconds": "Latency of one insert batch (WAL append + memtable).",
    "lsm_flushes_total": "Memtable flushes committed to sealed segments.",
    "lsm_flush_seconds": "Latency of one memtable flush (encode + write + commit).",
    "lsm_merges_total": "Segment merge compactions committed.",
    "lsm_merge_seconds": "Latency of one segment merge.",
    "lsm_compaction_seconds": "Latency of one compaction task (merge or purge).",
    "lsm_purged_rows_total": "Tombstoned rows physically removed by purge compactions.",
    "lsm_searches_total": "Searches served by the LSM read path.",
    "lsm_search_seconds": "Latency of one LSM search across memtable and segments.",
    "lsm_compaction_backlog": "Compaction tasks planned but not yet executed.",
    "lsm_frozen_memtables": "Frozen memtables queued for background flush.",
    "wal_appends_total": "Write-ahead-log records appended.",
    "wal_append_seconds": "Latency of one WAL append (serialize + write).",
    "wal_lag_bytes": "WAL bytes not yet covered by a flushed-LSN checkpoint.",
    "index_builds_total": "Segment index builds completed.",
    "index_build_seconds": "Latency of one segment index build.",
    "bloom_hits_total": "Point lookups answered by a segment bloom filter.",
    "bloom_negatives_total": "Point lookups skipped by a bloom-filter negative.",
    # buffer pool / caches
    "bufferpool_hits_total": "Segment reads served from the buffer pool.",
    "bufferpool_misses_total": "Segment reads faulted in from storage.",
    "bufferpool_evictions_total": "Segments evicted from the buffer pool.",
    "bufferpool_resident_bytes": "Bytes currently pinned or cached in the buffer pool.",
    "normcache_hits_total": "Query-norm cache hits.",
    "normcache_misses_total": "Query-norm cache misses.",
    # execution pool
    "exec_tasks_total": "Tasks submitted to the shared worker pool.",
    "exec_task_timeouts_total": "Pooled tasks that exceeded their per-task timeout.",
    "exec_queue_depth": "Tasks waiting in the worker-pool queue.",
    "exec_active_workers": "Worker threads currently running a task.",
    # distributed
    "cluster_searches_total": "Cluster fan-out searches served.",
    "cluster_search_seconds": "Latency of one cluster fan-out search.",
    "cluster_insert_rows_total": "Rows routed through the cluster write path.",
    "cluster_degraded_searches_total": "Searches answered with one or more shards missing.",
    "cluster_missing_shards_total": "Shard reads skipped because no reader held the shard.",
    "cluster_respawns_total": "Reader nodes respawned by the coordinator watchdog.",
    "cluster_lazy_index_build_seconds": "Latency of lazy index builds during cluster sync.",
    "reader_queries_served_total": "Queries served per reader node.",
    "reader_lazy_index_builds_total": "Lazy index builds performed by reader nodes.",
    "reader_lazy_index_build_seconds": "Latency of one reader-side lazy index build.",
    "writer_shardlog_appends_total": "Shard-log appends by the writer node.",
    "writer_shardlog_rows_total": "Rows appended to shard logs by the writer node.",
    "writer_shardlog_append_seconds": "Latency of one shard-log append.",
    # retry / faults
    "retry_retries_total": "Transient faults absorbed by retry policies.",
    "retry_exhausted_total": "Operations that ran out of retry budget.",
    # client / REST
    "rest_requests_total": "REST requests handled, by method and status.",
    "rest_request_seconds": "Latency of one REST request end to end.",
    "collection_search_seconds": "Latency of one collection-level search call.",
    # queries / engine
    "hetero_dispatch_total": "Query batches dispatched per heterogeneous backend.",
    # background jobs / ops (INTERNALS §19)
    "bg_jobs_running": "Background jobs currently running, by kind.",
    "bg_jobs_total": "Background jobs finished, by kind and terminal state.",
    "bg_job_seconds": "Wall-clock duration of one background job.",
    "bg_queue_depth": "Depth of each named background work queue.",
    "process_uptime_seconds": "Seconds since this process imported the REST layer.",
    # benchmarks
    "bench_search_seconds": "Latency samples recorded by benchmark stopwatches.",
}


def describe_metric(name: str) -> str:
    """The ``# HELP`` text for a metric family.

    Falls back to a generated description so families minted at call
    sites (tests, future instruments) still expose a HELP line.
    """
    return METRIC_DESCRIPTIONS.get(name, f"Metric {name}.")


def _render_labels(labels: LabelSet, extra: Iterable[Tuple[str, str]] = ()) -> str:
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """Monotonically increasing float counter."""

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (resident bytes, queue depth)."""

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram: percentile reads without stored samples.

    ``boundaries`` are the inclusive upper edges of the finite buckets
    (ascending); one implicit +Inf bucket catches the overflow.  An
    observation is a bisect plus three float adds, all under the
    instrument lock, so memory stays O(#buckets) forever.
    """

    _GUARDED_BY = {
        "_bucket_counts": "_lock",
        "_sum": "_lock",
        "_count": "_lock",
        "_min": "_lock",
        "_max": "_lock",
    }

    def __init__(
        self,
        name: str,
        boundaries: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        labels: LabelSet = (),
    ):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError("histogram boundaries must be ascending and non-empty")
        self.name = name
        self.labels = labels
        self.boundaries: Tuple[float, ...] = tuple(float(b) for b in boundaries)
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        # one count per finite bucket + the +Inf overflow bucket.
        self._bucket_counts = [0] * (len(self.boundaries) + 1)
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._bucket_counts[idx] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    # -- reads ------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from bucket counts.

        Linear interpolation inside the winning bucket, clamped by the
        observed min/max; overflow-bucket hits return the observed max.
        Returns 0.0 when the histogram is empty.
        """
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            counts = list(self._bucket_counts)
            total = self._count
            lo, hi = self._min, self._max
        if not total:
            return 0.0
        rank = q * total
        cumulative = 0.0
        for idx, bucket_count in enumerate(counts):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                if idx == len(self.boundaries):  # +Inf bucket
                    return hi
                upper = self.boundaries[idx]
                lower = self.boundaries[idx - 1] if idx else min(lo, upper)
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo), hi)
            cumulative += bucket_count
        return hi

    def percentiles(self) -> Dict[str, float]:
        """The operator's triple: p50/p95/p99."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """(upper_edge, cumulative_count) pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        with self._lock:
            counts = list(self._bucket_counts)
        cumulative = 0
        for edge, bucket_count in zip(self.boundaries, counts):
            cumulative += bucket_count
            out.append((edge, cumulative))
        out.append((float("inf"), cumulative + counts[-1]))
        return out


class MetricsRegistry:
    """Name+labels -> instrument, created on first use.

    One name maps to one instrument kind; asking for an existing name
    with a different kind raises.  Lookup is a dict get under the
    registry lock — cheap enough for batch-granularity call sites; hot
    loops may hold the returned instrument.
    """

    _GUARDED_BY = {"_instruments": "_lock"}

    def __init__(self):
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._instruments: Dict[Tuple[str, LabelSet], object] = {}
        self._kinds: Dict[str, type] = {}

    def _get(self, cls, name: str, labels: Dict[str, object], **kwargs):
        key = (name, _labelset(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                known = self._kinds.get(name)
                if known is not None and known is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as {known.__name__}"
                    )
                instrument = cls(name, labels=key[1], **kwargs)
                self._instruments[key] = instrument
                self._kinds[name] = cls
            elif not isinstance(instrument, cls):  # pragma: no cover - guarded above
                raise ValueError(f"metric {name!r} is not a {cls.__name__}")
            return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        boundaries: Optional[Tuple[float, ...]] = None,
        **labels,
    ) -> Histogram:
        return self._get(
            Histogram, name, labels,
            boundaries=boundaries or DEFAULT_LATENCY_BUCKETS,
        )

    # -- reads ------------------------------------------------------------

    def instruments(self) -> List[object]:
        with self._lock:
            return [
                self._instruments[key] for key in sorted(self._instruments)
            ]

    def total(self, name: str) -> float:
        """Sum of a counter/gauge across all of its label sets."""
        with self._lock:
            values = [
                inst.value
                for (iname, __), inst in self._instruments.items()
                if iname == name and isinstance(inst, (Counter, Gauge))
            ]
        return float(sum(values))

    def snapshot(self) -> Dict[str, object]:
        """JSON-compatible dump (tests, /stats-style endpoints)."""
        out: Dict[str, object] = {}
        for inst in self.instruments():
            key = inst.name + _render_labels(inst.labels)
            if isinstance(inst, Histogram):
                out[key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "mean": inst.mean,
                    **inst.percentiles(),
                }
            else:
                out[key] = inst.value
        return out

    def render_prometheus(self) -> str:
        """The classic Prometheus text exposition format.

        Each metric family is announced once with a ``# HELP`` line
        (description from :data:`METRIC_DESCRIPTIONS`, HELP-escaped)
        followed by its ``# TYPE`` line, then the samples.
        """
        lines: List[str] = []
        seen_types = set()
        for inst in self.instruments():
            if isinstance(inst, Counter):
                kind = "counter"
            elif isinstance(inst, Gauge):
                kind = "gauge"
            else:
                kind = "histogram"
            if inst.name not in seen_types:
                seen_types.add(inst.name)
                lines.append(
                    f"# HELP {inst.name} {_escape_help_text(describe_metric(inst.name))}"
                )
                lines.append(f"# TYPE {inst.name} {kind}")
            if isinstance(inst, Histogram):
                for edge, cumulative in inst.bucket_counts():
                    le = "+Inf" if edge == float("inf") else repr(edge)
                    lines.append(
                        f"{inst.name}_bucket"
                        f"{_render_labels(inst.labels, [('le', le)])} {cumulative}"
                    )
                lines.append(
                    f"{inst.name}_sum{_render_labels(inst.labels)} {inst.sum!r}"
                )
                lines.append(
                    f"{inst.name}_count{_render_labels(inst.labels)} {inst.count}"
                )
            else:
                value = inst.value
                rendered = repr(value) if value != int(value) else str(int(value))
                lines.append(f"{inst.name}{_render_labels(inst.labels)} {rendered}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# null (disabled) implementations — one shared instance of each
# ---------------------------------------------------------------------------


class NullCounter:
    """No-op counter: the disabled-path cost is one method call."""

    name = ""
    labels: LabelSet = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class NullGauge:
    name = ""
    labels: LabelSet = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram:
    name = ""
    labels: LabelSet = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def bucket_counts(self) -> List[Tuple[float, int]]:
        return []


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """Registry stand-in when observability is off: shared no-op instruments."""

    def counter(self, name: str, **labels) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, **labels) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, boundaries=None, **labels) -> NullHistogram:
        return _NULL_HISTOGRAM

    def instruments(self) -> List[object]:
        return []

    def total(self, name: str) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {}

    def render_prometheus(self) -> str:
        return "# observability disabled (set REPRO_OBS=1 or call repro.obs.enable())\n"


NULL_REGISTRY = NullRegistry()
