"""Watchdog: roll component signals up into one health verdict.

``GET /health`` is what an operator (or the roadmap's multi-tenant
admission controller) polls: one of ``healthy`` / ``degraded`` /
``unhealthy``, computed from the signals the engine already exports
plus failure notes pushed by the background machinery:

* **wal** — un-checkpointed WAL bytes (``wal_lag_bytes`` gauge):
  checkpointing is falling behind the write rate;
* **memtable** — frozen-memtable queue depth
  (``lsm_frozen_memtables`` gauge): the flusher is not keeping up;
* **background** — pushed via :meth:`note_bg_failure` from the
  flusher loop: a *transient* error (retries will be attempted)
  degrades until :meth:`note_bg_ok` reports a subsequent success; a
  *fatal* one (``SimulatedCrash``-style sticky crash) is unhealthy
  and stays unhealthy, exactly like the engine's own ``_bg_crash``;
* **exec** — pool saturation (``exec_queue_depth`` gauge);
* **jobs** — any running job whose heartbeat age exceeds
  ``job_stall_seconds`` (a flush parked forever on a stalled write).

Rollup = the worst component status.  Numeric signals are read from
the metrics registry at :meth:`report` time (summed across label
sets, so multi-collection engines roll up); tests may override any
signal with :meth:`set_signal`.  The clock is injectable so
fault-plan tests can age a heartbeat deterministically.

Locking: one leaf lock, role ``"obs"``.  :meth:`report` snapshots
state under the lock and *then* reads the registry / job registry —
two ``"obs"``-level locks never nest.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = ["HealthMonitor", "NullHealthMonitor", "NULL_HEALTH",
           "HEALTHY", "DEGRADED", "UNHEALTHY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

#: rollup order — max() over these ranks picks the worst status.
_RANK = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}

#: health signal name -> metrics gauge it defaults to.
_SIGNAL_GAUGES = {
    "wal_lag_bytes": "wal_lag_bytes",
    "frozen_memtables": "lsm_frozen_memtables",
    "exec_queue_depth": "exec_queue_depth",
}


class HealthMonitor:
    """Compute component statuses and their rollup on demand."""

    _GUARDED_BY = {"_signals": "_lock", "_bg": "_lock"}

    def __init__(
        self,
        registry=None,
        jobs=None,
        clock=None,
        *,
        wal_lag_degraded_bytes: int = 4 << 20,
        wal_lag_unhealthy_bytes: int = 64 << 20,
        frozen_degraded: int = 4,
        frozen_unhealthy: int = 32,
        exec_queue_degraded: int = 128,
        job_stall_seconds: float = 30.0,
    ):
        self._registry = registry
        self._jobs = jobs
        self._clock = clock if clock is not None else time.perf_counter
        self.wal_lag_degraded_bytes = wal_lag_degraded_bytes
        self.wal_lag_unhealthy_bytes = wal_lag_unhealthy_bytes
        self.frozen_degraded = frozen_degraded
        self.frozen_unhealthy = frozen_unhealthy
        self.exec_queue_degraded = exec_queue_degraded
        self.job_stall_seconds = job_stall_seconds
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._signals: Dict[str, float] = {}
        self._bg: Dict[str, Dict[str, object]] = {}

    # -- pushed state -----------------------------------------------------

    def set_signal(self, name: str, value: float) -> None:
        """Override a numeric signal (tests, or engines with no gauge)."""
        with self._lock:
            self._signals[name] = float(value)

    def note_bg_failure(
        self, component: str, error: str, fatal: bool = False,
    ) -> None:
        """A background worker failed; ``fatal`` failures are sticky."""
        now = self._clock()
        with self._lock:
            note = self._bg.setdefault(
                component, {"failures": 0, "fatal": False, "error": "", "at": 0.0})
            note["failures"] = int(note["failures"]) + 1
            note["fatal"] = bool(note["fatal"]) or fatal
            note["error"] = error
            note["at"] = now

    def note_bg_ok(self, component: str) -> None:
        """A background worker succeeded; clears *transient* failures."""
        with self._lock:
            note = self._bg.get(component)
            if note is not None and not note["fatal"]:
                del self._bg[component]

    # -- report -----------------------------------------------------------

    def _numeric(self, signals: Dict[str, float], name: str) -> float:
        if name in signals:
            return signals[name]
        if self._registry is not None:
            return self._registry.total(_SIGNAL_GAUGES[name])
        return 0.0

    @staticmethod
    def _grade(value: float, degraded_at: float,
               unhealthy_at: Optional[float] = None) -> str:
        if unhealthy_at is not None and value >= unhealthy_at:
            return UNHEALTHY
        if value >= degraded_at:
            return DEGRADED
        return HEALTHY

    def report(self) -> Dict[str, object]:
        """The ``GET /health`` payload: components + worst-of rollup."""
        with self._lock:
            signals = dict(self._signals)
            bg = {name: dict(note) for name, note in self._bg.items()}

        components: Dict[str, Dict[str, object]] = {}

        wal_lag = self._numeric(signals, "wal_lag_bytes")
        components["wal"] = {
            "status": self._grade(wal_lag, self.wal_lag_degraded_bytes,
                                  self.wal_lag_unhealthy_bytes),
            "lag_bytes": int(wal_lag),
        }

        frozen = self._numeric(signals, "frozen_memtables")
        components["memtable"] = {
            "status": self._grade(frozen, self.frozen_degraded,
                                  self.frozen_unhealthy),
            "frozen_memtables": int(frozen),
        }

        if bg:
            fatal = any(note["fatal"] for note in bg.values())
            components["background"] = {
                "status": UNHEALTHY if fatal else DEGRADED,
                "failures": {
                    name: {"error": note["error"], "fatal": note["fatal"],
                           "failures": note["failures"]}
                    for name, note in sorted(bg.items())
                },
            }
        else:
            components["background"] = {"status": HEALTHY, "failures": {}}

        queue_depth = self._numeric(signals, "exec_queue_depth")
        components["exec"] = {
            "status": self._grade(queue_depth, self.exec_queue_degraded),
            "queue_depth": int(queue_depth),
        }

        stalled: List[Dict[str, object]] = []
        if self._jobs is not None:
            stalled = [job.to_dict()
                       for job in self._jobs.stalled(self.job_stall_seconds)]
        components["jobs"] = {
            "status": DEGRADED if stalled else HEALTHY,
            "stalled": stalled,
        }

        worst = max(
            (component["status"] for component in components.values()),
            key=_RANK.__getitem__,
        )
        return {"status": worst, "components": components}


class NullHealthMonitor:
    """Disabled-path watchdog: static answer, no allocations per call."""

    _REPORT = {
        "status": "unknown",
        "components": {},
        "detail": "observability disabled (set REPRO_OBS=1 or repro.obs.enable())",
    }

    def set_signal(self, name: str, value: float) -> None:
        pass

    def note_bg_failure(self, component: str, error: str,
                        fatal: bool = False) -> None:
        pass

    def note_bg_ok(self, component: str) -> None:
        pass

    def report(self) -> Dict[str, object]:
        return dict(self._REPORT)


NULL_HEALTH = NullHealthMonitor()
