"""Structured tracing: per-query span trees with parent/child links.

A :class:`Span` is one timed region of one query's execution; spans
form a tree via ``parent_id``, and the whole tree shares one
``trace_id``.  Propagation is ambient: the active span lives in a
:mod:`contextvars` context variable, so the SDK opens a root span and
every instrumented layer below it (REST -> cluster fan-out -> reader
-> index search -> LSM/bufferpool reads) parents itself automatically
— no plumbing of ids through call signatures.

Ids are sequence numbers from the tracer's own counter (``t000001``,
``s000042``), not wall-clock or RNG material, so traces are
deterministic under the repo's determinism rules and replayable in
tests.

Memory is bounded twice over: at most ``max_traces`` traces are
retained (LRU by start order) and at most ``max_spans_per_trace``
spans are kept per trace (overflow increments ``dropped_spans``
instead of growing).

When observability is off, :data:`NULL_TRACER` hands out one shared
:class:`NullSpan`; entering it is two no-op method calls.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.utils.sanitizer import maybe_sanitize

__all__ = ["Span", "Tracer", "NullSpan", "NullTracer", "NULL_TRACER"]

#: the innermost active span of the current execution context.
_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


class Span:
    """One timed, named region of a query's execution."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start", "end", "attrs", "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        attrs: Dict[str, object],
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = 0.0
        self.end = 0.0
        self.attrs = attrs
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    @property
    def duration(self) -> float:
        return max(0.0, self.end - self.start)

    def set_attr(self, key: str, value: object) -> None:
        self.attrs[key] = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._record(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration * 1e3:.3f}ms)"
        )


class Tracer:
    """Creates spans and retains finished traces in a bounded store."""

    #: lock-discipline declaration consumed by tools/reprolint.
    _GUARDED_BY = {
        "_traces": "_lock",
        "_seq": "_lock",
        "dropped_spans": "_lock",
    }

    def __init__(self, max_traces: int = 256, max_spans_per_trace: int = 512):
        if max_traces < 1 or max_spans_per_trace < 1:
            raise ValueError("trace store bounds must be >= 1")
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        #: trace_id -> finished spans, oldest trace first.
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._seq = 0
        self.dropped_spans = 0

    # -- span creation -----------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        with self._lock:
            self._seq += 1
            return f"{prefix}{self._seq:06d}"

    def span(self, name: str, **attrs) -> Span:
        """A context manager for one timed region.

        Child of the context's active span when one exists (same
        trace); otherwise the root of a fresh trace.
        """
        parent = _CURRENT.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = self._next_id("t")
            parent_id = None
        return Span(self, trace_id, self._next_id("s"), parent_id, name, attrs)

    def current_span(self) -> Optional[Span]:
        return _CURRENT.get()

    def current_trace_id(self) -> Optional[str]:
        span = _CURRENT.get()
        return span.trace_id if span is not None else None

    # -- storage -----------------------------------------------------------

    def _record(self, span: Span) -> None:
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                spans = []
                self._traces[span.trace_id] = spans
                while len(self._traces) > self.max_traces:
                    self._traces.popitem(last=False)
            if len(spans) >= self.max_spans_per_trace:
                self.dropped_spans += 1
                return
            spans.append(span)

    def get_trace(self, trace_id: str) -> Optional[List[Span]]:
        """Finished spans of one trace (children precede parents), or None."""
        with self._lock:
            spans = self._traces.get(trace_id)
            return list(spans) if spans is not None else None

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def trace_tree(self, trace_id: str) -> Optional[Dict[str, object]]:
        """The trace as a nested dict: roots with recursive ``children``.

        Spans whose parent was dropped (store overflow) are promoted to
        roots rather than lost.
        """
        spans = self.get_trace(trace_id)
        if spans is None:
            return None
        by_id = {span.span_id: span.to_dict() for span in spans}
        for node in by_id.values():
            node["children"] = []
        roots: List[Dict[str, object]] = []
        for span in spans:
            node = by_id[span.span_id]
            parent = by_id.get(span.parent_id) if span.parent_id else None
            if parent is None:
                roots.append(node)
            else:
                parent["children"].append(node)
        for node in by_id.values():
            node["children"].sort(key=lambda child: child["start"])
        roots.sort(key=lambda node: node["start"])
        return {"trace_id": trace_id, "num_spans": len(spans), "roots": roots}

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()
            self.dropped_spans = 0


class NullSpan:
    """Shared no-op span: safe to nest, never records anything."""

    trace_id: Optional[str] = None
    span_id = ""
    parent_id: Optional[str] = None
    name = ""
    start = 0.0
    end = 0.0
    duration = 0.0

    def set_attr(self, key: str, value: object) -> None:
        pass

    def to_dict(self) -> Dict[str, object]:
        return {}

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer stand-in when observability is off."""

    dropped_spans = 0

    def span(self, name: str, **attrs) -> NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def current_trace_id(self) -> None:
        return None

    def get_trace(self, trace_id: str) -> None:
        return None

    def trace_ids(self) -> List[str]:
        return []

    def trace_tree(self, trace_id: str) -> None:
        return None

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
