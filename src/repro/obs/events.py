"""Bounded, thread-safe journal of engine lifecycle events.

The metrics registry answers *how much* (counters/gauges) and the
tracer answers *where did this query go*; neither answers *what has
the engine been doing* — the background machinery (PR 7's flush and
compaction loops, WAL checkpointing, PR 8's planner calibration)
otherwise runs dark until a barrier re-raises a stored error.  The
journal records typed lifecycle events into a fixed-size ring with
deterministic sequence ids, so seeded fault-plan runs produce
byte-identical event chains (the acceptance harness diffs two runs).

Design constraints, matching the rest of :mod:`repro.obs`:

* **bounded memory** — a ``deque(maxlen=capacity)``; old events fall
  off, sequence ids keep counting so loss is detectable;
* **thread-safe leaf** — one lock with sanitizer role ``"obs"``: any
  engine lock may be held while emitting, the journal never acquires
  anything else (in particular it does NOT touch the metrics
  registry, whose instruments use the same sibling role);
* **near-zero cost when disabled** — :data:`NULL_JOURNAL` is a shared
  no-op; an instrumented call site pays one method call;
* **monotonic time only** — event timestamps are
  :func:`time.perf_counter` offsets (durations/ordering, never wall
  clock), and are excluded from determinism comparisons.

Event kinds are free-form dotted strings; the engine's taxonomy is
documented in docs/INTERNALS.md §19 and centralised here as module
constants so call sites and tests cannot drift apart.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.utils.sanitizer import maybe_sanitize

__all__ = [
    "Event",
    "EventJournal",
    "NullEventJournal",
    "NULL_JOURNAL",
    "EVENT_KINDS",
    "MEMTABLE_FREEZE",
    "FLUSH_START",
    "FLUSH_COMMIT",
    "COMPACTION_PLAN",
    "COMPACTION_COMMIT",
    "COMPACTION_DEFERRED_DELETE",
    "WAL_CHECKPOINT",
    "MANIFEST_GC",
    "RECOVERY",
    "RETRY_EXHAUSTED",
    "READER_RESPAWN",
    "PLANNER_CALIBRATION",
    "BG_ERROR",
]

# -- the event taxonomy (INTERNALS §19) -------------------------------------

MEMTABLE_FREEZE = "memtable.freeze"
FLUSH_START = "flush.start"
FLUSH_COMMIT = "flush.commit"
COMPACTION_PLAN = "compaction.plan"
COMPACTION_COMMIT = "compaction.commit"
COMPACTION_DEFERRED_DELETE = "compaction.deferred_delete"
WAL_CHECKPOINT = "wal.checkpoint"
MANIFEST_GC = "manifest.gc"
RECOVERY = "recovery"
RETRY_EXHAUSTED = "retry.exhausted"
READER_RESPAWN = "reader.respawn"
PLANNER_CALIBRATION = "planner.calibration"
BG_ERROR = "bg.error"

#: every kind the engine emits, for validation in tests and reprotop.
EVENT_KINDS = frozenset({
    MEMTABLE_FREEZE, FLUSH_START, FLUSH_COMMIT,
    COMPACTION_PLAN, COMPACTION_COMMIT, COMPACTION_DEFERRED_DELETE,
    WAL_CHECKPOINT, MANIFEST_GC, RECOVERY,
    RETRY_EXHAUSTED, READER_RESPAWN, PLANNER_CALIBRATION, BG_ERROR,
})


class Event:
    """One journal entry: ``(seq, kind, attrs)`` plus a monotonic stamp.

    ``seq`` starts at 1 and is assigned under the journal lock, so the
    sequence is gapless in emission order even when foreground writers
    and the background flusher interleave.  ``ts`` is a perf_counter
    reading — comparable within a process, meaningless across runs.
    """

    __slots__ = ("seq", "kind", "attrs", "ts")

    def __init__(self, seq: int, kind: str, attrs: Dict[str, object], ts: float):
        self.seq = seq
        self.kind = kind
        self.attrs = attrs
        self.ts = ts

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (the ``GET /events`` payload)."""
        return {"seq": self.seq, "kind": self.kind,
                "ts": self.ts, "attrs": dict(self.attrs)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event(seq={self.seq}, kind={self.kind!r}, attrs={self.attrs!r})"


class EventJournal:
    """Fixed-capacity ring of :class:`Event` with deterministic seq ids."""

    _GUARDED_BY = {"_events": "_lock", "_seq": "_lock"}

    def __init__(self, capacity: int = 2048, clock=None):
        if capacity <= 0:
            raise ValueError("journal capacity must be positive")
        self.capacity = capacity
        self._clock = clock if clock is not None else time.perf_counter
        self._lock = maybe_sanitize(threading.Lock(), "obs")
        self._events: deque = deque(maxlen=capacity)
        self._seq = 0

    def emit(self, kind: str, **attrs) -> Event:
        """Append one event; returns it (callers mostly ignore this).

        Attr values should be JSON-scalar (str/int/float/bool) so the
        REST payload and the determinism diff stay trivial.
        """
        ts = self._clock()
        with self._lock:
            self._seq += 1
            event = Event(self._seq, kind, attrs, ts)
            self._events.append(event)
        return event

    def events(
        self, limit: Optional[int] = None, newest_first: bool = False,
    ) -> List[Event]:
        """Snapshot of retained events, oldest-first by default.

        ``limit`` keeps the *newest* N regardless of ordering — the
        journal is an operational log, so "the last N things that
        happened" is the only useful truncation.
        """
        with self._lock:
            snapshot = list(self._events)
        if limit is not None and limit >= 0:
            snapshot = snapshot[len(snapshot) - min(limit, len(snapshot)):]
        if newest_first:
            snapshot.reverse()
        return snapshot

    def last_seq(self) -> int:
        """Total events emitted (monotone even after ring eviction)."""
        return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullEventJournal:
    """Disabled-path journal: one no-op method call per emit."""

    capacity = 0

    def emit(self, kind: str, **attrs) -> None:
        pass

    def events(self, limit=None, newest_first=False) -> List[Event]:
        return []

    def last_seq(self) -> int:
        return 0

    def __len__(self) -> int:
        return 0


NULL_JOURNAL = NullEventJournal()
