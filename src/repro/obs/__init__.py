"""repro.obs — the dependency-free observability layer.

Three cooperating pieces, bundled behind one process-global (but
injectable) :class:`Observability` handle:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  bounded-memory histograms (p50/p95/p99 without stored samples),
  rendered in Prometheus text format by ``GET /metrics``;
* :class:`~repro.obs.tracing.Tracer` — per-query span trees with
  ambient (contextvar) parenting, retrievable via
  ``GET /traces/<trace_id>``;
* :class:`~repro.obs.slowlog.SlowQueryLog` — threshold-gated ring of
  slow queries, each linking to its trace (and, since the profiling
  layer landed, embedding the offending query's profile);
* :class:`~repro.obs.profile.Profiler` — bounded store of per-query
  :class:`~repro.obs.profile.QueryProfile` trees (stage timings +
  exact work counters), retrievable via ``GET /profiles/<trace_id>``;
* the operational layer (INTERNALS §19) —
  :class:`~repro.obs.events.EventJournal` (``GET /events``),
  :class:`~repro.obs.jobs.JobRegistry` (``GET /jobs``),
  :class:`~repro.obs.health.HealthMonitor` (``GET /health``) and
  :class:`~repro.obs.usage.UsageMeter` (``GET /usage``).

Switchboard (mirrors :mod:`repro.utils.sanitizer`): observability is
**off by default** and every instrumented call site then runs against
shared null objects — one no-op method call of overhead.  Turn it on
with ``REPRO_OBS=1`` in the environment, or programmatically::

    from repro import obs
    handle = obs.enable()                    # fresh registry/tracer/log
    handle = obs.enable(registry=my_registry)  # injected (tests)
    ...
    obs.disable()

Call sites fetch the handle per call (``obs.get_obs()``), so enabling
or injecting takes effect immediately, including for objects built
earlier.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from repro.obs.events import (
    Event,
    EventJournal,
    NullEventJournal,
    NULL_JOURNAL,
)
from repro.obs.health import (
    HealthMonitor,
    NullHealthMonitor,
    NULL_HEALTH,
)
from repro.obs.jobs import (
    Job,
    JobRegistry,
    NullJobRegistry,
    NULL_JOB,
    NULL_JOBS,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    METRIC_DESCRIPTIONS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    describe_metric,
)
from repro.obs.usage import (
    NullUsageMeter,
    NULL_USAGE,
    UsageMeter,
)
from repro.obs.profile import (
    NullProfiler,
    NULL_PROFILER,
    NULL_STAGE,
    Profiler,
    ProfileNode,
    QueryProfile,
    current_node,
    profile_attr,
    profile_count,
    profile_stage,
)
from repro.obs.slowlog import (
    NullSlowQueryLog,
    NULL_SLOW_LOG,
    SlowQuery,
    SlowQueryLog,
)
from repro.obs.tracing import NullTracer, NULL_TRACER, Span, Tracer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRIC_DESCRIPTIONS",
    "describe_metric",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "Span",
    "Tracer",
    "NullTracer",
    "SlowQuery",
    "SlowQueryLog",
    "NullSlowQueryLog",
    "ProfileNode",
    "QueryProfile",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILER",
    "NULL_STAGE",
    "Event",
    "EventJournal",
    "NullEventJournal",
    "NULL_JOURNAL",
    "Job",
    "JobRegistry",
    "NullJobRegistry",
    "NULL_JOB",
    "NULL_JOBS",
    "HealthMonitor",
    "NullHealthMonitor",
    "NULL_HEALTH",
    "UsageMeter",
    "NullUsageMeter",
    "NULL_USAGE",
    "current_node",
    "profile_count",
    "profile_attr",
    "profile_stage",
    "Observability",
    "Stopwatch",
    "enabled",
    "enable",
    "disable",
    "get_obs",
]


class Observability:
    """One registry + tracer + slow-query log + profiler + ops layer.

    The operational members default to instances wired to each other:
    the job registry exports gauges through ``registry``, the health
    monitor reads the same gauges back and watches the job heartbeats.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        slow_query_log: Optional[SlowQueryLog] = None,
        profiler: Optional[Profiler] = None,
        events: Optional[EventJournal] = None,
        jobs: Optional[JobRegistry] = None,
        health: Optional[HealthMonitor] = None,
        usage: Optional[UsageMeter] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.slow_query_log = (
            slow_query_log if slow_query_log is not None else SlowQueryLog()
        )
        self.profiler = profiler if profiler is not None else Profiler()
        self.events = events if events is not None else EventJournal()
        self.jobs = (
            jobs if jobs is not None else JobRegistry(registry=self.registry)
        )
        self.health = (
            health
            if health is not None
            else HealthMonitor(registry=self.registry, jobs=self.jobs)
        )
        self.usage = usage if usage is not None else UsageMeter()


class _NullObservability:
    """The disabled-path handle: all members are shared no-ops."""

    registry = NULL_REGISTRY
    tracer = NULL_TRACER
    slow_query_log = NULL_SLOW_LOG
    profiler = NULL_PROFILER
    events = NULL_JOURNAL
    jobs = NULL_JOBS
    health = NULL_HEALTH
    usage = NULL_USAGE


_NULL_OBS = _NullObservability()

_obs: Optional[Observability] = None
_state_lock = threading.Lock()


def enabled() -> bool:
    """True when observability is active (env var or :func:`enable`)."""
    return _obs is not None or os.environ.get("REPRO_OBS") == "1"


def get_obs() -> "Observability":
    """The active :class:`Observability` handle, or the shared null one.

    (Typed as :class:`Observability` — the null handle is duck-typed
    to the same surface — so static analysis can resolve the
    ``get_obs().registry.counter(...)`` chains to the obs-lock-taking
    methods.)

    This is the single accessor every instrumented call site uses; the
    disabled path is one global read plus an environ get.
    """
    global _obs
    if _obs is not None:
        return _obs
    if os.environ.get("REPRO_OBS") == "1":
        with _state_lock:
            if _obs is None:
                _obs = Observability()
            return _obs
    return _NULL_OBS


def enable(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    slow_query_log: Optional[SlowQueryLog] = None,
    profiler: Optional[Profiler] = None,
    events: Optional[EventJournal] = None,
    jobs: Optional[JobRegistry] = None,
    health: Optional[HealthMonitor] = None,
    usage: Optional[UsageMeter] = None,
) -> Observability:
    """Force observability on; optionally inject components (tests).

    Replaces any previously active handle, so a test gets a clean
    registry by simply calling ``obs.enable()`` again.
    """
    global _obs
    with _state_lock:
        _obs = Observability(registry, tracer, slow_query_log, profiler,
                             events, jobs, health, usage)
        return _obs


def disable() -> None:
    """Turn observability off and drop the collected data.

    Note: with ``REPRO_OBS=1`` in the environment a fresh handle is
    created on the next :func:`get_obs` (same contract as the
    sanitizer's env switch).
    """
    global _obs
    with _state_lock:
        _obs = None


class Stopwatch:
    """The one timing primitive for benchmarks and profiling hooks.

    ``with Stopwatch() as sw: ...`` then read ``sw.seconds``.  Always
    :func:`time.perf_counter` — the monotonic high-resolution clock —
    never ``time.time()``, which steps with wall-clock adjustments and
    must not be used for durations anywhere in this tree.  Passing a
    histogram name records the measurement into the active registry::

        with Stopwatch("bench_search_seconds"):
            engine.search(queries, k)
    """

    __slots__ = ("metric", "started", "seconds")

    def __init__(self, metric: Optional[str] = None):
        self.metric = metric
        self.started = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "Stopwatch":
        self.started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.seconds = time.perf_counter() - self.started
        if self.metric is not None:
            get_obs().registry.histogram(self.metric).observe(self.seconds)
