"""Shared machinery for quantization-based (IVF) indexes.

Paper Sec. 3.1: "The coarse quantizer applies the K-means algorithm
... to cluster vectors into K buckets. And the fine quantizer encodes
the vectors within each bucket."  Query processing takes two steps:
(1) find the closest ``nprobe`` buckets by centroid distance; (2) scan
each relevant bucket with the fine quantizer.

:class:`IVFIndexBase` implements the coarse step, inverted-list
bookkeeping, bucket selection, and the two-step search loop; fine
quantizers only implement ``_encode`` and ``_scan_list``.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.index.kmeans import KMeans, assign_to_centroids
from repro.metrics.base import MetricKind
from repro.metrics.dense import l2_squared_pairwise
from repro.obs.profile import current_node
from repro.utils import ensure_positive, merge_topk, topk_from_scores

DEFAULT_NLIST = 128
DEFAULT_NPROBE = 8


class InvertedLists:
    """Per-bucket row ids and fine-quantizer codes.

    Codes are stored as one ndarray per bucket with an index-specific
    dtype/shape chosen by the fine quantizer; this class is agnostic.
    """

    def __init__(self, nlist: int):
        self.nlist = nlist
        self.ids: List[List[np.ndarray]] = [[] for __ in range(nlist)]
        self.codes: List[List[np.ndarray]] = [[] for __ in range(nlist)]
        self._sizes = np.zeros(nlist, dtype=np.int64)

    def append(self, list_no: int, ids: np.ndarray, codes: np.ndarray) -> None:
        if len(ids) == 0:
            return
        self.ids[list_no].append(np.asarray(ids, dtype=np.int64))
        self.codes[list_no].append(codes)
        self._sizes[list_no] += len(ids)

    def get(self, list_no: int):
        """Return (ids, codes) for one bucket, compacting lazily."""
        if len(self.ids[list_no]) > 1:
            self.ids[list_no] = [np.concatenate(self.ids[list_no])]
            self.codes[list_no] = [np.concatenate(self.codes[list_no])]
        if not self.ids[list_no]:
            return np.empty(0, dtype=np.int64), None
        return self.ids[list_no][0], self.codes[list_no][0]

    def size(self, list_no: int) -> int:
        return int(self._sizes[list_no])

    @property
    def total(self) -> int:
        return int(self._sizes.sum())

    def memory_bytes(self) -> int:
        total = 0
        for blocks in self.ids:
            total += sum(b.nbytes for b in blocks)
        for blocks in self.codes:
            total += sum(b.nbytes for b in blocks)
        return total


class IVFIndexBase(VectorIndex):
    """Coarse-quantized inverted-file index base class."""

    requires_training = True
    SEARCH_PARAMS = frozenset({"nprobe", "row_filter"})

    def __init__(
        self,
        dim: int,
        metric="l2",
        nlist: int = DEFAULT_NLIST,
        kmeans_iters: int = 20,
        seed: Optional[int] = 0,
    ):
        super().__init__(dim, metric)
        if self.metric.kind is not MetricKind.DENSE:
            raise ValueError("IVF indexes support dense metrics only")
        self.nlist = ensure_positive(nlist, "nlist")
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None
        self.lists = InvertedLists(self.nlist)
        self._ntotal = 0

    # -- training --------------------------------------------------------

    def _train(self, vectors: np.ndarray) -> None:
        if len(vectors) < self.nlist:
            raise ValueError(
                f"training needs at least nlist={self.nlist} vectors, got {len(vectors)}"
            )
        km = KMeans(self.nlist, max_iter=self.kmeans_iters, seed=self.seed)
        km.fit(vectors)
        self.centroids = km.centroids
        self._train_fine(vectors)

    def _train_fine(self, vectors: np.ndarray) -> None:
        """Hook: fine quantizers learn their codebooks here."""

    # -- ingest ------------------------------------------------------------

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        labels, __ = assign_to_centroids(vectors, self.centroids)
        for list_no in np.unique(labels):
            mask = labels == list_no
            codes = self._encode(vectors[mask], int(list_no))
            self.lists.append(int(list_no), ids[mask], codes)
        self._ntotal += len(vectors)

    # -- search --------------------------------------------------------------

    def select_buckets(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Step 1: the ``nprobe`` closest buckets per query, best-first."""
        nprobe = min(ensure_positive(nprobe, "nprobe"), self.nlist)
        node = current_node()
        if node is not None:
            # Coarse step: every query is scored against every centroid.
            node.count("distance_evals", len(queries) * len(self.centroids))
        coarse = l2_squared_pairwise(queries, self.centroids)
        part = np.argpartition(coarse, nprobe - 1, axis=1)[:, :nprobe]
        row_scores = np.take_along_axis(coarse, part, axis=1)
        order = np.argsort(row_scores, axis=1, kind="stable")
        return np.take_along_axis(part, order, axis=1)

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = DEFAULT_NPROBE,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        """Two-step IVF search.

        Args:
            nprobe: number of buckets to probe (accuracy/speed knob).
            row_filter: optional sorted int64 array of admissible row
                ids (used by attribute-filtering strategy B).
        """
        if params:
            raise TypeError(f"unknown search params: {sorted(params)}")
        bucket_ids = self.select_buckets(queries, nprobe)
        result = SearchResult.empty(len(queries), k, self.metric)
        node = current_node()
        buckets_probed = rows_scanned = pruned = 0
        for qi in range(len(queries)):
            parts = []
            for list_no in bucket_ids[qi]:
                ids, codes = self.lists.get(int(list_no))
                if len(ids) == 0:
                    continue
                buckets_probed += 1
                rows_scanned += len(ids)
                if row_filter is not None:
                    keep = _sorted_membership(ids, row_filter)
                    pruned += len(ids) - int(keep.sum())
                    if not keep.any():
                        continue
                    ids = ids[keep]
                    codes = codes[keep]
                scores = self._scan_list(queries[qi : qi + 1], codes, int(list_no))[0]
                parts.append(topk_from_scores(
                    scores, k, self.metric.higher_is_better, ids=ids
                ))
            top_ids, top_scores = merge_topk(parts, k, self.metric.higher_is_better)
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        if node is not None:
            node.count("buckets_probed", buckets_probed)
            node.count("rows_scanned", rows_scanned)
            if pruned:
                node.count("candidates_pruned", pruned)
        return result

    def _range_search(
        self, queries: np.ndarray, radius: float, nprobe: int = DEFAULT_NPROBE,
        **params,
    ):
        """Approximate range search: scan the ``nprobe`` nearest buckets
        and keep every row passing the radius (recall bounded by bucket
        coverage, like top-k IVF search)."""
        if params:
            raise TypeError(f"unknown range params: {sorted(params)}")
        bucket_ids = self.select_buckets(queries, nprobe)
        out = [[] for __ in range(len(queries))]
        for qi in range(len(queries)):
            for list_no in bucket_ids[qi]:
                ids, codes = self.lists.get(int(list_no))
                if len(ids) == 0:
                    continue
                scores = self._scan_list(queries[qi : qi + 1], codes, int(list_no))[0]
                if self.metric.higher_is_better:
                    hits = np.flatnonzero(scores >= radius)
                else:
                    hits = np.flatnonzero(scores <= radius)
                out[qi].extend((int(ids[h]), float(scores[h])) for h in hits)
            out[qi].sort(key=lambda p: p[1], reverse=self.metric.higher_is_better)
        return out

    # -- fine quantizer hooks ---------------------------------------------

    @abc.abstractmethod
    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        """Encode raw vectors into this index's code format."""

    @abc.abstractmethod
    def _scan_list(
        self, queries: np.ndarray, codes: np.ndarray, list_no: int
    ) -> np.ndarray:
        """Score queries against one bucket's codes -> (m, len(codes))."""

    # -- introspection -------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def memory_bytes(self) -> int:
        total = self.lists.memory_bytes()
        if self.centroids is not None:
            total += self.centroids.nbytes
        return total

    def bucket_sizes(self) -> np.ndarray:
        """Occupancy per bucket (diagnostics / scheduler input)."""
        return np.array([self.lists.size(i) for i in range(self.nlist)])

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base["nlist"] = self.nlist
        if self._ntotal:
            sizes = self.bucket_sizes()
            base["bucket_min"] = int(sizes.min())
            base["bucket_max"] = int(sizes.max())
        return base


def _sorted_membership(ids: np.ndarray, sorted_filter: np.ndarray) -> np.ndarray:
    """Boolean mask of ``ids`` present in the sorted ``sorted_filter``."""
    pos = np.searchsorted(sorted_filter, ids)
    pos = np.minimum(pos, len(sorted_filter) - 1)
    if len(sorted_filter) == 0:
        return np.zeros(len(ids), dtype=bool)
    return sorted_filter[pos] == ids
