"""Shared machinery for quantization-based (IVF) indexes.

Paper Sec. 3.1: "The coarse quantizer applies the K-means algorithm
... to cluster vectors into K buckets. And the fine quantizer encodes
the vectors within each bucket."  Query processing takes two steps:
(1) find the closest ``nprobe`` buckets by centroid distance; (2) scan
each relevant bucket with the fine quantizer.

:class:`IVFIndexBase` implements the coarse step, inverted-list
bookkeeping, bucket selection, and the two-step search loop; fine
quantizers only implement ``_encode`` and ``_scan_list``.

Two execution paths share the same counters and (up to float summation
order and tie-breaks) the same results:

* the **kernel path** (default): a per-query-batch scan context from
  ``_begin_scan`` (PQ ADC tables / SQ8 affine terms built exactly once
  per batch) plus bucket-major execution — every bucket is scanned
  once for *all* the queries probing it, and per-query results are
  assembled with one :func:`merge_topk_batch` call over the padded
  per-bucket partials (paper Sec. 3.2.1, cache-aware design);
* the **reference path** (``REPRO_KERNELS=0``): the original
  query-major loop with no context, kept as the equivalence baseline
  for tests and the kernel ablation bench.
"""

from __future__ import annotations

import abc
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.index import kernels
from repro.index.base import SearchResult, VectorIndex
from repro.index.kmeans import KMeans, assign_to_centroids
from repro.metrics.base import MetricKind
from repro.metrics.dense import l2_squared_pairwise
from repro.obs.profile import current_node
from repro.utils import (
    ensure_positive,
    merge_topk,
    merge_topk_batch,
    topk_from_scores,
)
from repro.utils.sanitizer import maybe_sanitize

DEFAULT_NLIST = 128
DEFAULT_NPROBE = 8


class InvertedLists:
    """Per-bucket row ids and fine-quantizer codes.

    Codes are stored as one ndarray per bucket with an index-specific
    dtype/shape chosen by the fine quantizer; this class is agnostic.

    Thread-safety: :meth:`get` compacts a bucket's append blocks into
    one array *lazily on the read path*, and concurrent queries hit the
    same index under the parallel per-segment executor — so every
    block-list access runs under an internal leaf lock (sanitizer role
    ``"ivf-lists"``, guarded fields declared below and in pyproject).
    The lock is held only around list bookkeeping and the concatenate;
    returned arrays are immutable by convention (appends create new
    blocks, never mutate returned ones).
    """

    _GUARDED_BY = {"ids": "_lock", "codes": "_lock", "_sizes": "_lock"}

    def __init__(self, nlist: int):
        self.nlist = nlist
        self._lock = maybe_sanitize(threading.Lock(), "ivf-lists")
        self.ids: List[List[np.ndarray]] = [[] for __ in range(nlist)]
        self.codes: List[List[np.ndarray]] = [[] for __ in range(nlist)]
        self._sizes = np.zeros(nlist, dtype=np.int64)

    def append(self, list_no: int, ids: np.ndarray, codes: np.ndarray) -> None:
        if len(ids) == 0:
            return
        with self._lock:
            self.ids[list_no].append(np.asarray(ids, dtype=np.int64))
            self.codes[list_no].append(codes)
            self._sizes[list_no] += len(ids)

    def get(self, list_no: int):
        """Return (ids, codes) for one bucket, compacting lazily."""
        with self._lock:
            if len(self.ids[list_no]) > 1:
                self.ids[list_no] = [np.concatenate(self.ids[list_no])]
                self.codes[list_no] = [np.concatenate(self.codes[list_no])]
            if not self.ids[list_no]:
                return np.empty(0, dtype=np.int64), None
            return self.ids[list_no][0], self.codes[list_no][0]

    def is_compacted_block(self, list_no: int, codes: np.ndarray) -> bool:
        """Is ``codes`` the bucket's single compacted block (by identity)?

        Kernel caches key bucket-side precomputations on this: a
        ``row_filter`` slices codes into a fresh array, which must be
        scored directly rather than against cached full-bucket terms.
        """
        with self._lock:
            blocks = self.codes[list_no]
            return len(blocks) == 1 and codes is blocks[0]

    def size(self, list_no: int) -> int:
        return int(self._sizes[list_no])

    @property
    def total(self) -> int:
        return int(self._sizes.sum())

    def memory_bytes(self) -> int:
        with self._lock:
            total = 0
            for blocks in self.ids:
                total += sum(b.nbytes for b in blocks)
            for blocks in self.codes:
                total += sum(b.nbytes for b in blocks)
            return total


class IVFIndexBase(VectorIndex):
    """Coarse-quantized inverted-file index base class."""

    requires_training = True
    SEARCH_PARAMS = frozenset({"nprobe", "row_filter"})

    def __init__(
        self,
        dim: int,
        metric="l2",
        nlist: int = DEFAULT_NLIST,
        kmeans_iters: int = 20,
        seed: Optional[int] = 0,
    ):
        super().__init__(dim, metric)
        if self.metric.kind is not MetricKind.DENSE:
            raise ValueError("IVF indexes support dense metrics only")
        self.nlist = ensure_positive(nlist, "nlist")
        self.kmeans_iters = kmeans_iters
        self.seed = seed
        self.centroids: Optional[np.ndarray] = None
        self.lists = InvertedLists(self.nlist)
        self._ntotal = 0

    # -- training --------------------------------------------------------

    def _train(self, vectors: np.ndarray) -> None:
        if len(vectors) < self.nlist:
            raise ValueError(
                f"training needs at least nlist={self.nlist} vectors, got {len(vectors)}"
            )
        km = KMeans(self.nlist, max_iter=self.kmeans_iters, seed=self.seed)
        km.fit(vectors)
        self.centroids = km.centroids
        self._train_fine(vectors)

    def _train_fine(self, vectors: np.ndarray) -> None:
        """Hook: fine quantizers learn their codebooks here."""

    # -- ingest ------------------------------------------------------------

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        labels, __ = assign_to_centroids(vectors, self.centroids)
        for list_no in np.unique(labels):
            mask = labels == list_no
            codes = self._encode(vectors[mask], int(list_no))
            self.lists.append(int(list_no), ids[mask], codes)
        self._ntotal += len(vectors)

    def warm(self) -> None:
        """Precompute per-bucket kernel terms for every populated bucket.

        Compacts each inverted list and runs the subclass's
        ``_warm_list`` hook (code casts, decoded norms, flat LUT
        indices) so the first search of a batch pays only the scans.
        """
        if not kernels.kernels_enabled():
            return
        for list_no in range(self.nlist):
            ids, codes = self.lists.get(list_no)
            if len(ids):
                self._warm_list(list_no, codes)

    def _warm_list(self, list_no: int, codes: np.ndarray) -> None:
        """Hook: cache query-independent terms for one compacted bucket."""

    # -- search --------------------------------------------------------------

    def select_buckets(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """Step 1: the ``nprobe`` closest buckets per query, best-first."""
        nprobe = min(ensure_positive(nprobe, "nprobe"), self.nlist)
        node = current_node()
        if node is not None:
            # Coarse step: every query is scored against every centroid.
            node.count("distance_evals", len(queries) * len(self.centroids))
        coarse = l2_squared_pairwise(queries, self.centroids)
        part = np.argpartition(coarse, nprobe - 1, axis=1)[:, :nprobe]
        row_scores = np.take_along_axis(coarse, part, axis=1)
        order = np.argsort(row_scores, axis=1, kind="stable")
        return np.take_along_axis(part, order, axis=1)

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = DEFAULT_NPROBE,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        """Two-step IVF search.

        Args:
            nprobe: number of buckets to probe (accuracy/speed knob).
            row_filter: optional sorted int64 array of admissible row
                ids (used by attribute-filtering strategy B).
        """
        if params:
            raise TypeError(f"unknown search params: {sorted(params)}")
        bucket_ids = self.select_buckets(queries, nprobe)
        if kernels.kernels_enabled():
            ctx = self._begin_scan(queries)
            return self._search_batched(queries, k, bucket_ids, row_filter, ctx)
        return self._search_perquery(queries, k, bucket_ids, row_filter)

    def _search_perquery(
        self,
        queries: np.ndarray,
        k: int,
        bucket_ids: np.ndarray,
        row_filter: Optional[np.ndarray],
    ) -> SearchResult:
        """Reference query-major loop (the pre-kernel execution path)."""
        result = SearchResult.empty(len(queries), k, self.metric)
        node = current_node()
        buckets_probed = rows_scanned = pruned = 0
        for qi in range(len(queries)):
            parts = []
            for list_no in bucket_ids[qi]:
                ids, codes = self.lists.get(int(list_no))
                if len(ids) == 0:
                    continue
                buckets_probed += 1
                rows_scanned += len(ids)
                if row_filter is not None:
                    keep = _sorted_membership(ids, row_filter)
                    pruned += len(ids) - int(keep.sum())
                    if not keep.any():
                        continue
                    ids = ids[keep]
                    codes = codes[keep]
                scores = self._scan_list(queries[qi : qi + 1], codes, int(list_no))[0]
                parts.append(topk_from_scores(
                    scores, k, self.metric.higher_is_better, ids=ids
                ))
            top_ids, top_scores = merge_topk(parts, k, self.metric.higher_is_better)
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        if node is not None:
            node.count("buckets_probed", buckets_probed)
            node.count("rows_scanned", rows_scanned)
            if pruned:
                node.count("candidates_pruned", pruned)
        return result

    def _search_batched(
        self,
        queries: np.ndarray,
        k: int,
        bucket_ids: np.ndarray,
        row_filter: Optional[np.ndarray],
        ctx,
    ) -> SearchResult:
        """Bucket-major execution over the whole query block.

        Each bucket is scanned once for the group of queries probing it
        (one kernel call / GEMM per bucket), per-bucket top-k is
        extracted with one vectorized ``argpartition`` over the group,
        and the padded partials merge with one :func:`merge_topk_batch`
        call.  Work counters are exactly the reference path's: every
        (query, bucket) probe still accounts its rows, evals, and
        pruning individually.
        """
        nq = len(queries)
        higher = self.metric.higher_is_better
        node = current_node()
        buckets_probed = rows_scanned = pruned = 0

        by_bucket: Dict[int, List[int]] = {}
        for qi in range(nq):
            for b in bucket_ids[qi]:
                by_bucket.setdefault(int(b), []).append(qi)

        # One sparse candidate buffer for the whole block: each query
        # probes at most nprobe buckets contributing <= k rows each, so
        # (nq, nprobe * k) bounds every per-query candidate list.  Each
        # bucket's top rows scatter behind a per-query cursor — no
        # (nq, k)-wide padding per bucket, which would dwarf the real
        # work at small nprobe.
        worst = -np.inf if higher else np.inf
        width = bucket_ids.shape[1] * k
        cand_ids = np.full((nq, width), -1, dtype=np.int64)
        cand_scores = np.full((nq, width), worst, dtype=np.float32)
        cursor = np.zeros(nq, dtype=np.int64)
        for list_no, qlist in by_bucket.items():
            ids, codes = self.lists.get(list_no)
            if len(ids) == 0:
                continue
            group = len(qlist)
            buckets_probed += group
            rows_scanned += group * len(ids)
            if row_filter is not None:
                keep = _sorted_membership(ids, row_filter)
                pruned += group * (len(ids) - int(keep.sum()))
                if not keep.any():
                    continue
                ids = ids[keep]
                codes = codes[keep]
            qidx = np.asarray(qlist, dtype=np.int64)
            scores = self._scan_list(
                queries[qidx], codes, list_no, ctx=ctx, qidx=qidx
            )
            top_idx, top_scores = _topk_rows(scores, k, higher)
            k_eff = top_idx.shape[1]
            cols = cursor[qidx, np.newaxis] + np.arange(k_eff)
            cand_ids[qidx[:, np.newaxis], cols] = ids[top_idx]
            cand_scores[qidx[:, np.newaxis], cols] = top_scores
            cursor[qidx] += k_eff

        result = SearchResult.empty(nq, k, self.metric)
        if cursor.any():
            out_ids, out_scores = merge_topk_batch(
                [(cand_ids, cand_scores)], k, higher, nq=nq
            )
            result.ids[:] = out_ids
            result.scores[:] = out_scores
        if node is not None:
            node.count("buckets_probed", buckets_probed)
            node.count("rows_scanned", rows_scanned)
            if pruned:
                node.count("candidates_pruned", pruned)
        return result

    def _range_search(
        self, queries: np.ndarray, radius: float, nprobe: int = DEFAULT_NPROBE,
        **params,
    ):
        """Approximate range search: scan the ``nprobe`` nearest buckets
        and keep every row passing the radius (recall bounded by bucket
        coverage, like top-k IVF search)."""
        if params:
            raise TypeError(f"unknown range params: {sorted(params)}")
        bucket_ids = self.select_buckets(queries, nprobe)
        ctx = self._begin_scan(queries) if kernels.kernels_enabled() else None
        out = [[] for __ in range(len(queries))]
        for qi in range(len(queries)):
            qidx = np.array([qi], dtype=np.int64)
            for list_no in bucket_ids[qi]:
                ids, codes = self.lists.get(int(list_no))
                if len(ids) == 0:
                    continue
                scores = self._scan_list(
                    queries[qi : qi + 1], codes, int(list_no), ctx=ctx, qidx=qidx
                )[0]
                if self.metric.higher_is_better:
                    hits = np.flatnonzero(scores >= radius)
                else:
                    hits = np.flatnonzero(scores <= radius)
                out[qi].extend((int(ids[h]), float(scores[h])) for h in hits)
            out[qi].sort(key=lambda p: p[1], reverse=self.metric.higher_is_better)
        return out

    # -- fine quantizer hooks ---------------------------------------------

    def _begin_scan(self, queries: np.ndarray):
        """Hook: build a per-query-batch scan context (or ``None``).

        Called once per search batch before any bucket is scanned; the
        returned context is threaded into every ``_scan_list`` call of
        the batch so per-query precomputations (PQ ADC tables, SQ8
        affine terms) are never rebuilt per probed bucket.
        """
        return None

    @abc.abstractmethod
    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        """Encode raw vectors into this index's code format."""

    @abc.abstractmethod
    def _scan_list(
        self,
        queries: np.ndarray,
        codes: np.ndarray,
        list_no: int,
        ctx=None,
        qidx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Score queries against one bucket's codes -> (m, len(codes)).

        ``ctx`` is the batch context from :meth:`_begin_scan` (``None``
        on the reference path) and ``qidx`` the row indices of
        ``queries`` within that batch context.
        """

    # -- introspection -------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return self._ntotal

    def memory_bytes(self) -> int:
        total = self.lists.memory_bytes()
        if self.centroids is not None:
            total += self.centroids.nbytes
        return total

    def bucket_sizes(self) -> np.ndarray:
        """Occupancy per bucket (diagnostics / scheduler input)."""
        return np.array([self.lists.size(i) for i in range(self.nlist)])

    def stats(self) -> Dict[str, object]:
        base = super().stats()
        base["nlist"] = self.nlist
        if self._ntotal:
            sizes = self.bucket_sizes()
            base["bucket_min"] = int(sizes.min())
            base["bucket_max"] = int(sizes.max())
        return base


def _topk_rows(
    scores: np.ndarray, k: int, higher_is_better: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise top-k over a 2-D score block, best-first.

    The vectorized form of :func:`topk_from_scores` applied to every
    row at once: one ``argpartition`` + stable argsort for the whole
    query group instead of a python call per (query, bucket) pair.
    Returns ``(indices, scores)`` of shape ``(rows, min(k, n))``.
    """
    rows, n = scores.shape
    k_eff = min(k, n)
    keyed = -scores if higher_is_better else scores
    row_idx = np.arange(rows)[:, np.newaxis]
    if k_eff < n:
        sel = np.argpartition(keyed, k_eff - 1, axis=1)[:, :k_eff]
        part = keyed[row_idx, sel]
    else:
        sel = np.broadcast_to(np.arange(n), (rows, n))
        part = keyed
    order = np.argsort(part, axis=1, kind="stable")
    idx = sel[row_idx, order]
    return idx, scores[row_idx, idx]


def _sorted_membership(ids: np.ndarray, sorted_filter: np.ndarray) -> np.ndarray:
    """Boolean mask of ``ids`` present in the sorted ``sorted_filter``."""
    pos = np.searchsorted(sorted_filter, ids)
    pos = np.minimum(pos, len(sorted_filter) - 1)
    if len(sorted_filter) == 0:
        return np.zeros(len(ids), dtype=bool)
    return sorted_filter[pos] == ids
