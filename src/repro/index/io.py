"""Index (de)serialization for the quantization family.

Persisting FLAT / BIN_FLAT / IVF_FLAT / IVF_SQ8 / IVF_PQ indexes lets
deployments skip the (k-means) rebuild on restart.  Graph and tree
indexes are rebuilt instead — their construction is the index, and
Milvus likewise rebuilds asynchronously (Sec. 5.1).

Format: one npz blob with a JSON ``meta`` entry, mirroring segment
serialization.
"""

from __future__ import annotations

import io
import json
from typing import Dict

import numpy as np

from repro.index.base import VectorIndex
from repro.index.binary_flat import BinaryFlatIndex
from repro.index.flat import FlatIndex
from repro.index.ivf_common import IVFIndexBase
from repro.index.ivf_flat import IVFFlatIndex
from repro.index.ivf_pq import IVFOPQIndex, IVFPQIndex
from repro.index.ivf_sq8 import IVFSQ8Index

SERIALIZABLE_TYPES = ("FLAT", "BIN_FLAT", "IVF_FLAT", "IVF_SQ8", "IVF_PQ", "IVF_OPQ")


def index_to_bytes(index: VectorIndex) -> bytes:
    """Serialize a supported index; raises ``TypeError`` otherwise."""
    if index.index_type not in SERIALIZABLE_TYPES:
        raise TypeError(
            f"{index.index_type} does not serialize; rebuild it instead "
            f"(supported: {SERIALIZABLE_TYPES})"
        )
    meta: Dict[str, object] = {
        "index_type": index.index_type,
        "dim": index.dim,
        "metric": index.metric.name,
    }
    arrays: Dict[str, np.ndarray] = {}

    if isinstance(index, (FlatIndex, BinaryFlatIndex)):
        data, ids = index._compacted() if index.ntotal else (
            np.empty((0, getattr(index, "code_bytes", index.dim))),
            np.empty(0, dtype=np.int64),
        )
        arrays["data"] = data
        arrays["ids"] = ids
    elif isinstance(index, IVFIndexBase):
        meta["nlist"] = index.nlist
        arrays["centroids"] = index.centroids
        for list_no in range(index.nlist):
            ids, codes = index.lists.get(list_no)
            arrays[f"ids__{list_no}"] = ids
            if codes is not None:
                arrays[f"codes__{list_no}"] = codes
        if isinstance(index, IVFSQ8Index):
            arrays["sq_vmin"] = index.sq.vmin
            arrays["sq_vdiff"] = index.sq.vdiff
        if isinstance(index, IVFPQIndex):
            meta["pq_m"] = index.pq.m
            meta["pq_nbits"] = index.pq.nbits
            arrays["pq_codebooks"] = index.pq.codebooks
        if isinstance(index, IVFOPQIndex):
            meta["opq_iters"] = index.opq_iters
            arrays["opq_rotation"] = index.rotation

    buf = io.BytesIO()
    np.savez_compressed(
        buf, meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8), **arrays
    )
    return buf.getvalue()


def index_from_bytes(blob: bytes) -> VectorIndex:
    """Reconstruct an index serialized by :func:`index_to_bytes`."""
    with np.load(io.BytesIO(blob)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        itype = meta["index_type"]
        dim = meta["dim"]
        metric = meta["metric"]

        if itype == "FLAT":
            index = FlatIndex(dim, metric=metric)
            if len(archive["ids"]):
                index.add(archive["data"], ids=archive["ids"])
            return index
        if itype == "BIN_FLAT":
            index = BinaryFlatIndex(dim, metric=metric)
            if len(archive["ids"]):
                index.add(archive["data"], ids=archive["ids"])
            return index

        nlist = meta["nlist"]
        if itype == "IVF_FLAT":
            index = IVFFlatIndex(dim, metric=metric, nlist=nlist)
        elif itype == "IVF_SQ8":
            index = IVFSQ8Index(dim, metric=metric, nlist=nlist)
        elif itype == "IVF_PQ":
            index = IVFPQIndex(
                dim, metric=metric, nlist=nlist,
                m=meta["pq_m"], nbits=meta["pq_nbits"],
            )
        elif itype == "IVF_OPQ":
            index = IVFOPQIndex(
                dim, metric=metric, nlist=nlist,
                m=meta["pq_m"], nbits=meta["pq_nbits"],
                opq_iters=meta["opq_iters"],
            )
        else:  # pragma: no cover - guarded by SERIALIZABLE_TYPES
            raise TypeError(f"unknown serialized index type {itype!r}")

        index.centroids = archive["centroids"]
        if itype == "IVF_SQ8":
            index.sq.vmin = archive["sq_vmin"]
            index.sq.vdiff = archive["sq_vdiff"]
        if itype in ("IVF_PQ", "IVF_OPQ"):
            index.pq.codebooks = archive["pq_codebooks"]
        if itype == "IVF_OPQ":
            index.rotation = archive["opq_rotation"]
        index._trained = True
        total = 0
        for list_no in range(nlist):
            ids = archive[f"ids__{list_no}"]
            key = f"codes__{list_no}"
            if len(ids) and key in archive:
                index.lists.append(list_no, ids, archive[key])
                total += len(ids)
        index._ntotal = total
        return index
