"""The extensible index interface (paper Sec. 2.2).

A new index plugs into Milvus by implementing:

* :meth:`VectorIndex.train` — learn quantizers / auxiliary structure,
* :meth:`VectorIndex.add` — ingest vectors with explicit row ids,
* :meth:`VectorIndex.search` — batched top-k with per-call parameters,
* :meth:`VectorIndex.memory_bytes` — for bufferpool accounting.

Search results are fixed-shape ``(m, k)`` arrays padded with id ``-1``
and the metric's worst value, so downstream merging never branches on
ragged output.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from repro.metrics import Metric, get_metric
from repro.utils import ensure_matrix, ensure_positive, ensure_vector_dim

PAD_ID = -1


class UnsupportedSearchParamError(TypeError):
    """A search parameter the target index cannot honor.

    Raised instead of silently ignoring the parameter: dropping
    ``row_filter`` on the floor would return *unfiltered* results for
    a filtered query, which is a correctness bug, not a degradation.
    Subclasses :class:`TypeError` so callers with a generic
    "index rejected these params -> fall back to brute force" handler
    (:meth:`repro.storage.segment.Segment.search`) keep working.
    """

    def __init__(self, index_type: str, param: str):
        super().__init__(
            f"index {index_type!r} does not support search param {param!r}"
        )
        self.index_type = index_type
        self.param = param


@dataclass
class SearchResult:
    """Top-k results for a batch of queries.

    Attributes:
        ids: ``(m, k)`` int64 row ids, padded with ``-1``.
        scores: ``(m, k)`` scores, padded with the metric's worst value.
    """

    ids: np.ndarray
    scores: np.ndarray

    def __post_init__(self):
        self.ids = np.asarray(self.ids, dtype=np.int64)
        self.scores = np.asarray(self.scores)
        if self.ids.shape != self.scores.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != scores shape {self.scores.shape}"
            )

    @property
    def nq(self) -> int:
        return self.ids.shape[0]

    @property
    def k(self) -> int:
        return self.ids.shape[1]

    def row(self, i: int):
        """Valid (id, score) pairs for query ``i``, best-first."""
        mask = self.ids[i] != PAD_ID
        return list(zip(self.ids[i][mask].tolist(), self.scores[i][mask].tolist()))

    @classmethod
    def empty(cls, nq: int, k: int, metric: Metric) -> "SearchResult":
        ids = np.full((nq, k), PAD_ID, dtype=np.int64)
        scores = np.full((nq, k), metric.worst_value(), dtype=np.float64)
        return cls(ids, scores)

    @classmethod
    def from_rows(cls, rows, k: int, metric: Metric) -> "SearchResult":
        """Build a padded result from per-query lists of (id, score)."""
        rows = list(rows)
        out = cls.empty(len(rows), k, metric)
        for i, row in enumerate(rows):
            for j, (item_id, score) in enumerate(row[:k]):
                out.ids[i, j] = item_id
                out.scores[i, j] = score
        return out


class VectorIndex(abc.ABC):
    """Base class for every vector index in the framework."""

    #: registry name, e.g. ``"IVF_FLAT"``; set by subclasses.
    index_type: str = ""
    #: whether :meth:`train` must run before :meth:`add`.
    requires_training: bool = False
    #: the per-call search parameters this index honors.  The adaptive
    #: planner routes its chosen knobs (``nprobe``, ``ef``, ...) only
    #: to indexes that declare them, and the filter engines use
    #: ``"row_filter" in SEARCH_PARAMS`` to decide between pushdown and
    #: explicit rejection.  Declaring a param here is a contract: the
    #: index must *honor* it, never swallow it.
    SEARCH_PARAMS: frozenset = frozenset()

    @classmethod
    def supports_search_param(cls, name: str) -> bool:
        return name in cls.SEARCH_PARAMS

    def __init__(self, dim: int, metric: Union[str, Metric] = "l2"):
        self.dim = ensure_positive(dim, "dim")
        self.metric = get_metric(metric)
        self._trained = not self.requires_training

    # -- lifecycle -----------------------------------------------------

    def train(self, vectors: np.ndarray) -> None:
        """Learn quantizers or other data-dependent structure."""
        vectors = self._check_vectors(vectors)
        self._train(vectors)
        self._trained = True

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Ingest vectors; returns the row ids assigned (or echoed)."""
        if not self._trained:
            raise RuntimeError(
                f"{self.index_type or type(self).__name__} must be trained before add()"
            )
        vectors = self._check_vectors(vectors)
        if ids is None:
            ids = np.arange(self.ntotal, self.ntotal + len(vectors), dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (len(vectors),):
                raise ValueError(
                    f"ids shape {ids.shape} does not match {len(vectors)} vectors"
                )
        self._add(vectors, ids)
        return ids

    def search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        """Batched top-k search; unknown params raise ``TypeError``."""
        queries = self._check_vectors(queries)
        k = ensure_positive(k, "k")
        if self.ntotal == 0:
            return SearchResult.empty(len(queries), k, self.metric)
        return self._search(queries, k, **params)

    def range_search(self, queries: np.ndarray, radius: float, **params):
        """All rows scoring at least as well as ``radius``.

        For distance metrics: score <= radius; for similarity metrics:
        score >= radius.  Returns per-query lists of (id, score),
        best-first.  Not every index family supports this.
        """
        queries = self._check_vectors(queries)
        if self.ntotal == 0:
            return [[] for __ in range(len(queries))]
        return self._range_search(queries, float(radius), **params)

    def _range_search(self, queries: np.ndarray, radius: float, **params):
        raise NotImplementedError(
            f"{self.index_type or type(self).__name__} does not support range_search"
        )

    # -- subclass hooks ------------------------------------------------

    def _train(self, vectors: np.ndarray) -> None:
        """Default: training is a no-op."""

    @abc.abstractmethod
    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        ...

    @abc.abstractmethod
    def _search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        ...

    # -- introspection ---------------------------------------------------

    @property
    @abc.abstractmethod
    def ntotal(self) -> int:
        """Number of indexed vectors."""

    @property
    def is_trained(self) -> bool:
        return self._trained

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Approximate resident size, used by the bufferpool."""

    def warm(self) -> None:
        """Precompute query-independent scan-acceleration state.

        Optional build-time hook (engines call it after ``add``) so
        first-query latency excludes one-time work such as per-bucket
        code casts, decoded norms, or flat LUT indices.  Idempotent;
        never changes results or work counters.  Default: nothing.
        """

    def row_code_bytes(self) -> int:
        """Bytes of stored code scanned per row during search.

        The calibrated cost model uses this to predict ``bytes_read``
        per strategy, distinguishing quantized scans (1 byte/dim for
        SQ8, ``m`` bytes/row for PQ) from full-width float scans.
        Default: uncompressed float32 rows.
        """
        return 4 * self.dim

    def stats(self) -> Dict[str, object]:
        """Human-readable summary for monitoring."""
        return {
            "index_type": self.index_type,
            "dim": self.dim,
            "metric": self.metric.name,
            "ntotal": self.ntotal,
            "memory_bytes": self.memory_bytes(),
        }

    # -- helpers ---------------------------------------------------------

    def _check_vectors(self, vectors: np.ndarray) -> np.ndarray:
        vectors = ensure_matrix(vectors, "vectors")
        return ensure_vector_dim(vectors, self.dim, "vectors")
