"""IVF_PQ: product quantization fine quantizer with ADC scanning.

Paper Sec. 3.1: "IVF_PQ uses product quantization that splits each
vector into multiple sub-vectors and applies K-means for each
sub-space" (Jégou et al., TPAMI 2011).  Search uses asymmetric
distance computation (ADC): per query, a lookup table of
sub-distances is built and bucket scans reduce to table gathers.

On the kernel path the tables are built once per query *batch*
(:class:`~repro.index.kernels.PQScanContext`) and buckets are scored
with the blocked flat-LUT fast-scan kernel; :class:`IVFOPQIndex` adds
a trained orthogonal rotation (OPQ) in front of the codec.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.index import kernels
from repro.index.ivf_common import IVFIndexBase
from repro.index.kmeans import KMeans
from repro.obs.profile import profile_count
from repro.utils import ensure_matrix, ensure_positive


class ProductQuantizer:
    """PQ codec: ``m`` sub-quantizers of ``2**nbits`` centroids each."""

    def __init__(self, dim: int, m: int = 8, nbits: int = 8, seed: Optional[int] = 0):
        self.dim = ensure_positive(dim, "dim")
        self.m = ensure_positive(m, "m")
        if dim % m != 0:
            raise ValueError(f"dim={dim} must be divisible by m={m}")
        if not 1 <= nbits <= 8:
            raise ValueError(f"nbits must be in [1, 8], got {nbits}")
        self.nbits = nbits
        self.ksub = 2 ** nbits
        self.dsub = dim // m
        self.seed = seed
        #: (m, ksub, dsub) codebooks after training.
        self.codebooks: Optional[np.ndarray] = None

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def train(self, vectors: np.ndarray, max_iter: int = 15) -> "ProductQuantizer":
        """Learn the ``m`` sub-codebooks.

        ``max_iter`` bounds each sub-space k-means; OPQ's alternating
        optimization passes a small budget for the steering iterations
        and the default for the final codebooks.
        """
        vectors = ensure_matrix(vectors, "vectors")
        if len(vectors) < self.ksub:
            raise ValueError(
                f"PQ training needs at least ksub={self.ksub} vectors, got {len(vectors)}"
            )
        books = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for sub in range(self.m):
            chunk = vectors[:, sub * self.dsub : (sub + 1) * self.dsub]
            seed = None if self.seed is None else self.seed + sub
            km = KMeans(self.ksub, max_iter=max_iter, seed=seed)
            km.fit(np.ascontiguousarray(chunk))
            books[sub] = km.centroids
        self.codebooks = books
        return self

    def _sub_l2(self, chunk: np.ndarray, sub: int) -> np.ndarray:
        """Squared L2 from each row of ``chunk`` to sub-codebook ``sub``."""
        book = self.codebooks[sub]
        return (
            np.einsum("ij,ij->i", chunk, chunk)[:, np.newaxis]
            - 2.0 * chunk @ book.T
            + np.einsum("ij,ij->i", book, book)[np.newaxis, :]
        )

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode to (n, m) uint8 codes."""
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        vectors = ensure_matrix(vectors, "vectors")
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for sub in range(self.m):
            chunk = vectors[:, sub * self.dsub : (sub + 1) * self.dsub]
            codes[:, sub] = self._sub_l2(chunk, sub).argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors; output rank mirrors input rank."""
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        codes = np.asarray(codes)
        single = codes.ndim == 1
        if single:
            codes = codes[np.newaxis, :]
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for sub in range(self.m):
            out[:, sub * self.dsub : (sub + 1) * self.dsub] = self.codebooks[sub][
                codes[:, sub]
            ]
        return out[0] if single else out

    def build_tables(self, queries: np.ndarray, metric_name: str) -> np.ndarray:
        """ADC tables of sub-scores, shape (nq, m, ksub).

        ``"l2"`` tables hold squared sub-distances; ``"ip"``/``"cosine"``
        hold sub-inner-products (cosine assumes normalized inputs).
        """
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        queries = ensure_matrix(queries, "queries")
        tables = np.empty((len(queries), self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            chunk = queries[:, sub * self.dsub : (sub + 1) * self.dsub]
            if metric_name == "l2":
                tables[:, sub, :] = self._sub_l2(chunk, sub)
            else:
                tables[:, sub, :] = chunk @ self.codebooks[sub].T
        return tables

    @staticmethod
    def adc_scan(tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum table entries along codes: (nq, m, ksub) x (n, m) -> (nq, n).

        The naive per-sub-quantizer loop — kept as the reference for
        :func:`~repro.index.kernels.adc_scan_blocked`.
        """
        nq = tables.shape[0]
        n, m = codes.shape
        out = np.zeros((nq, n), dtype=np.float32)
        cols = codes.astype(np.int64)
        for sub in range(m):
            out += tables[:, sub, :][:, cols[:, sub]]
        return out


class IVFPQIndex(IVFIndexBase):
    """IVF with PQ-compressed codes and ADC scanning.

    Encodes raw vectors (not residuals) so the codec stays orthogonal
    to the coarse quantizer — Faiss's ``by_residual=False`` mode.
    """

    index_type = "IVF_PQ"

    def __init__(
        self,
        dim,
        metric="l2",
        nlist=128,
        m: int = 8,
        nbits: int = 8,
        kmeans_iters=20,
        seed=0,
    ):
        super().__init__(dim, metric, nlist=nlist, kmeans_iters=kmeans_iters, seed=seed)
        if self.metric.name not in ("l2", "ip", "cosine"):
            raise ValueError(f"{self.index_type} does not support metric {self.metric.name!r}")
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=seed)
        #: per-bucket flat LUT-index cache (``flat_code_indices``);
        #: appends mutate buckets, so ``_add`` invalidates wholesale.
        self.kernel_cache = kernels.CodeCache()

    def _train_fine(self, vectors: np.ndarray) -> None:
        self.pq.train(vectors)

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        super()._add(vectors, ids)
        self.kernel_cache.invalidate()

    def _warm_list(self, list_no: int, codes: np.ndarray) -> None:
        self.kernel_cache.get(
            "pqflat", list_no, lambda: kernels.flat_code_indices(codes, self.pq.ksub)
        )

    def _codec_space(self, queries: np.ndarray) -> np.ndarray:
        """Hook: map rows (queries or data) into the codec's space (OPQ rotates)."""
        return queries

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return self.pq.encode(self._codec_space(vectors))

    def _begin_scan(self, queries: np.ndarray):
        # ADC tables for the whole batch, flattened for the blocked
        # fast-scan kernel — built once, reused by every bucket probe.
        return kernels.PQScanContext.build(
            self.pq, self._codec_space(queries), self.metric.name
        )

    def _scan_list(
        self,
        queries: np.ndarray,
        codes: np.ndarray,
        list_no: int,
        ctx=None,
        qidx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        profile_count("distance_evals", len(queries) * len(codes))
        # Code bytes gathered for this scan: each probing query walks
        # the bucket's (n, m) uint8 code block once.
        profile_count("bytes_read", len(queries) * codes.nbytes)
        if ctx is not None:
            if self.lists.is_compacted_block(list_no, codes):
                return ctx.scan(
                    codes, qidx, cache=self.kernel_cache, cache_key=list_no
                )
            return ctx.scan(codes, qidx)
        tables = self.pq.build_tables(self._codec_space(queries), self.metric.name)
        return ProductQuantizer.adc_scan(tables, codes)

    def row_code_bytes(self) -> int:
        return self.pq.m

    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        if self.pq.codebooks is not None:
            total += self.pq.codebooks.nbytes
        return total + self.kernel_cache.memory_bytes()


class IVFOPQIndex(IVFPQIndex):
    """IVF_PQ behind a trained orthogonal rotation (OPQ).

    The rotation redistributes correlated variance across the ``m``
    sub-spaces before product quantization (Ge et al., CVPR 2013),
    cutting reconstruction error where raw dimension order is
    unfavorable.  Orthogonality preserves L2/IP/cosine, so search just
    rotates the queries (``_codec_space``) and reuses the whole PQ
    scan path — tables, blocked LUT kernel, counters — unchanged.
    Training alternates codebook fitting with a Procrustes rotation
    solve (:func:`repro.index.kernels.train_opq_rotation`); seeded and
    deterministic.
    """

    index_type = "IVF_OPQ"

    def __init__(
        self,
        dim,
        metric="l2",
        nlist=128,
        m: int = 8,
        nbits: int = 8,
        opq_iters: int = 8,
        kmeans_iters=20,
        seed=0,
    ):
        super().__init__(
            dim, metric, nlist=nlist, m=m, nbits=nbits,
            kmeans_iters=kmeans_iters, seed=seed,
        )
        self.opq_iters = ensure_positive(opq_iters, "opq_iters")
        #: (dim, dim) float32 orthogonal rotation after training.
        self.rotation: Optional[np.ndarray] = None

    def _train_fine(self, vectors: np.ndarray) -> None:
        self.rotation, self.pq = kernels.train_opq_rotation(
            vectors,
            pq_factory=lambda: ProductQuantizer(
                self.dim, m=self.pq.m, nbits=self.pq.nbits, seed=self.seed
            ),
            opq_iters=self.opq_iters,
            seed=self.seed,
        )

    def _codec_space(self, queries: np.ndarray) -> np.ndarray:
        if self.rotation is None:
            raise RuntimeError("IVF_OPQ is not trained")
        return np.asarray(queries, dtype=np.float32) @ self.rotation

    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        if self.rotation is not None:
            total += self.rotation.nbytes
        return total
