"""IVF_PQ: product quantization fine quantizer with ADC scanning.

Paper Sec. 3.1: "IVF_PQ uses product quantization that splits each
vector into multiple sub-vectors and applies K-means for each
sub-space" (Jégou et al., TPAMI 2011).  Search uses asymmetric
distance computation (ADC): per query, a lookup table of
sub-distances is built and bucket scans reduce to table gathers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.index.ivf_common import IVFIndexBase
from repro.index.kmeans import KMeans
from repro.obs.profile import profile_count
from repro.utils import ensure_matrix, ensure_positive


class ProductQuantizer:
    """PQ codec: ``m`` sub-quantizers of ``2**nbits`` centroids each."""

    def __init__(self, dim: int, m: int = 8, nbits: int = 8, seed: Optional[int] = 0):
        self.dim = ensure_positive(dim, "dim")
        self.m = ensure_positive(m, "m")
        if dim % m != 0:
            raise ValueError(f"dim={dim} must be divisible by m={m}")
        if not 1 <= nbits <= 8:
            raise ValueError(f"nbits must be in [1, 8], got {nbits}")
        self.nbits = nbits
        self.ksub = 2 ** nbits
        self.dsub = dim // m
        self.seed = seed
        #: (m, ksub, dsub) codebooks after training.
        self.codebooks: Optional[np.ndarray] = None

    @property
    def is_trained(self) -> bool:
        return self.codebooks is not None

    def train(self, vectors: np.ndarray) -> "ProductQuantizer":
        vectors = ensure_matrix(vectors, "vectors")
        if len(vectors) < self.ksub:
            raise ValueError(
                f"PQ training needs at least ksub={self.ksub} vectors, got {len(vectors)}"
            )
        books = np.empty((self.m, self.ksub, self.dsub), dtype=np.float32)
        for sub in range(self.m):
            chunk = vectors[:, sub * self.dsub : (sub + 1) * self.dsub]
            seed = None if self.seed is None else self.seed + sub
            km = KMeans(self.ksub, max_iter=15, seed=seed)
            km.fit(np.ascontiguousarray(chunk))
            books[sub] = km.centroids
        self.codebooks = books
        return self

    def _sub_l2(self, chunk: np.ndarray, sub: int) -> np.ndarray:
        """Squared L2 from each row of ``chunk`` to sub-codebook ``sub``."""
        book = self.codebooks[sub]
        return (
            np.einsum("ij,ij->i", chunk, chunk)[:, np.newaxis]
            - 2.0 * chunk @ book.T
            + np.einsum("ij,ij->i", book, book)[np.newaxis, :]
        )

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Encode to (n, m) uint8 codes."""
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        vectors = ensure_matrix(vectors, "vectors")
        codes = np.empty((len(vectors), self.m), dtype=np.uint8)
        for sub in range(self.m):
            chunk = vectors[:, sub * self.dsub : (sub + 1) * self.dsub]
            codes[:, sub] = self._sub_l2(chunk, sub).argmin(axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes."""
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        codes = np.asarray(codes)
        if codes.ndim == 1:
            codes = codes[np.newaxis, :]
        out = np.empty((len(codes), self.dim), dtype=np.float32)
        for sub in range(self.m):
            out[:, sub * self.dsub : (sub + 1) * self.dsub] = self.codebooks[sub][
                codes[:, sub]
            ]
        return out

    def build_tables(self, queries: np.ndarray, metric_name: str) -> np.ndarray:
        """ADC tables of sub-scores, shape (nq, m, ksub).

        ``"l2"`` tables hold squared sub-distances; ``"ip"``/``"cosine"``
        hold sub-inner-products (cosine assumes normalized inputs).
        """
        if not self.is_trained:
            raise RuntimeError("ProductQuantizer is not trained")
        queries = ensure_matrix(queries, "queries")
        tables = np.empty((len(queries), self.m, self.ksub), dtype=np.float32)
        for sub in range(self.m):
            chunk = queries[:, sub * self.dsub : (sub + 1) * self.dsub]
            if metric_name == "l2":
                tables[:, sub, :] = self._sub_l2(chunk, sub)
            else:
                tables[:, sub, :] = chunk @ self.codebooks[sub].T
        return tables

    @staticmethod
    def adc_scan(tables: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """Sum table entries along codes: (nq, m, ksub) x (n, m) -> (nq, n)."""
        nq = tables.shape[0]
        n, m = codes.shape
        out = np.zeros((nq, n), dtype=np.float32)
        cols = codes.astype(np.int64)
        for sub in range(m):
            out += tables[:, sub, :][:, cols[:, sub]]
        return out


class IVFPQIndex(IVFIndexBase):
    """IVF with PQ-compressed codes and ADC scanning.

    Encodes raw vectors (not residuals) so the codec stays orthogonal
    to the coarse quantizer — Faiss's ``by_residual=False`` mode.
    """

    index_type = "IVF_PQ"

    def __init__(
        self,
        dim,
        metric="l2",
        nlist=128,
        m: int = 8,
        nbits: int = 8,
        kmeans_iters=20,
        seed=0,
    ):
        super().__init__(dim, metric, nlist=nlist, kmeans_iters=kmeans_iters, seed=seed)
        if self.metric.name not in ("l2", "ip", "cosine"):
            raise ValueError(f"IVF_PQ does not support metric {self.metric.name!r}")
        self.pq = ProductQuantizer(dim, m=m, nbits=nbits, seed=seed)

    def _train_fine(self, vectors: np.ndarray) -> None:
        self.pq.train(vectors)

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return self.pq.encode(vectors)

    def _scan_list(
        self, queries: np.ndarray, codes: np.ndarray, list_no: int
    ) -> np.ndarray:
        # ADC table construction is O(m * ksub * dsub) per query — far
        # cheaper than the gather over the bucket, so rebuilding per
        # scan keeps the code path simple.
        profile_count("distance_evals", len(queries) * len(codes))
        tables = self.pq.build_tables(queries, self.metric.name)
        return ProductQuantizer.adc_scan(tables, codes)

    def memory_bytes(self) -> int:
        total = super().memory_bytes()
        if self.pq.codebooks is not None:
            total += self.pq.codebooks.nbytes
        return total
