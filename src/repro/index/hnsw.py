"""HNSW: Hierarchical Navigable Small World graphs (Malkov & Yashunin).

The graph-based index family of the paper (Sec. 2.2).  Implements the
standard construction (exponentially-distributed levels, greedy descent
through upper layers, ``ef_construction``-wide beam at the insertion
layers, neighbor-selection heuristic with bidirectional links and
pruning) and beam search with the ``ef`` knob at query time.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import heapq

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.metrics.base import MetricKind
from repro.obs.profile import current_node
from repro.utils import ensure_positive, sorted_membership


class HNSWIndex(VectorIndex):
    """Hierarchical navigable small-world graph index.

    Args:
        M: max out-degree at upper layers (level 0 allows ``2*M``).
        ef_construction: beam width during insertion.
        seed: RNG seed for level assignment.
    """

    index_type = "HNSW"
    requires_training = False
    SEARCH_PARAMS = frozenset({"ef", "row_filter"})

    def __init__(
        self,
        dim: int,
        metric="l2",
        M: int = 16,
        ef_construction: int = 100,
        seed: Optional[int] = 0,
    ):
        super().__init__(dim, metric)
        if self.metric.kind is not MetricKind.DENSE:
            raise ValueError("HNSW supports dense metrics only")
        self.M = ensure_positive(M, "M")
        self.M0 = 2 * self.M
        self.ef_construction = ensure_positive(ef_construction, "ef_construction")
        self._mult = 1.0 / math.log(self.M)
        self._rng = np.random.default_rng(seed)
        # Vectors live in one growable matrix so distance kernels can use
        # fancy indexing instead of stacking Python lists per hop.
        self._data = np.empty((0, dim), dtype=np.float32)
        self._size = 0
        self._ids: List[int] = []
        #: _neighbors[level][node] -> list of node indexes
        self._neighbors: List[List[List[int]]] = []
        self._levels: List[int] = []
        self._entry: int = -1
        self._max_level: int = -1

    # -- distances (always lower-is-better internally) ---------------------

    def _dist(self, query: np.ndarray, nodes) -> np.ndarray:
        node = current_node()
        if node is not None:
            node.count("distance_evals", len(nodes))
        data = self._data[np.asarray(nodes, dtype=np.int64)]
        scores = self.metric.pairwise(query[np.newaxis, :], data)[0]
        return -scores if self.metric.higher_is_better else scores

    def _vector(self, node: int) -> np.ndarray:
        return self._data[node]

    def _append_vector(self, vec: np.ndarray) -> int:
        if self._size == len(self._data):
            grown = np.empty(
                (max(1024, 2 * len(self._data)), self.dim), dtype=np.float32
            )
            grown[: self._size] = self._data[: self._size]
            self._data = grown
        self._data[self._size] = vec
        self._size += 1
        return self._size - 1

    # -- construction ---------------------------------------------------------

    def _random_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._mult)

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        for vec, ext_id in zip(vectors, ids):
            self._insert_one(vec.astype(np.float32), int(ext_id))

    def _insert_one(self, vec: np.ndarray, ext_id: int) -> None:
        node = self._append_vector(vec)
        self._ids.append(ext_id)
        level = self._random_level()
        self._levels.append(level)
        while len(self._neighbors) <= level:
            self._neighbors.append([])
        for lvl in range(level + 1):
            while len(self._neighbors[lvl]) <= node:
                self._neighbors[lvl].append([])

        if self._entry == -1:
            self._entry = node
            self._max_level = level
            return

        curr = self._entry
        # Greedy descent above the insertion level.
        for lvl in range(self._max_level, level, -1):
            curr = self._greedy_closest(vec, curr, lvl)
        # Beam insertion at each level from min(level, max) down to 0.
        for lvl in range(min(level, self._max_level), -1, -1):
            candidates = self._search_layer(vec, [curr], self.ef_construction, lvl)
            m_max = self.M0 if lvl == 0 else self.M
            selected = self._select_neighbors(vec, candidates, self.M)
            self._neighbors[lvl][node] = [n for __, n in selected]
            for __, neigh in selected:
                links = self._neighbors[lvl][neigh]
                links.append(node)
                if len(links) > m_max:
                    self._prune(neigh, lvl, m_max)
            curr = candidates[0][1]

        if level > self._max_level:
            self._max_level = level
            self._entry = node

    def _greedy_closest(self, vec: np.ndarray, start: int, level: int) -> int:
        curr = start
        curr_dist = float(self._dist(vec, [curr])[0])
        improved = True
        while improved:
            improved = False
            neighbors = self._neighbors[level][curr]
            if not neighbors:
                break
            dists = self._dist(vec, neighbors)
            best = int(dists.argmin())
            if dists[best] < curr_dist:
                curr = neighbors[best]
                curr_dist = float(dists[best])
                improved = True
        return curr

    def _search_layer(
        self,
        vec: np.ndarray,
        entries: List[int],
        ef: int,
        level: int,
        allowed: Optional[np.ndarray] = None,
    ) -> List[Tuple[float, int]]:
        """Beam search within one layer -> sorted (dist, node) list.

        With ``allowed`` (a per-node boolean mask), the beam practices
        *in-traversal filtering*: disallowed nodes still steer
        navigation — they are visited, scored, and their neighbors
        expanded, keeping the graph connected under selective
        predicates — but they never enter the result heap, so the
        returned list contains admissible nodes only.  Until ``ef``
        admissible results accumulate, no candidate is pruned by the
        beam bound, so a sparse filter widens the traversal instead of
        starving it.
        """
        dists = self._dist(vec, entries)
        visited = set(entries)
        candidates = [(float(d), n) for d, n in zip(dists, entries)]
        heapq.heapify(candidates)
        # results: max-heap by distance via negation; admissible only.
        results = [
            (-float(d), n) for d, n in zip(dists, entries)
            if allowed is None or allowed[n]
        ]
        heapq.heapify(results)
        while len(results) > ef:
            heapq.heappop(results)

        pushes = 0
        filtered = 0
        while candidates:
            dist, node = heapq.heappop(candidates)
            if len(results) >= ef and dist > -results[0][0]:
                break
            unvisited = [n for n in self._neighbors[level][node] if n not in visited]
            if not unvisited:
                continue
            visited.update(unvisited)
            ndists = self._dist(vec, unvisited)
            for nd, nn in zip(ndists, unvisited):
                nd = float(nd)
                if len(results) < ef or nd < -results[0][0]:
                    heapq.heappush(candidates, (nd, nn))
                    if allowed is None or allowed[nn]:
                        heapq.heappush(results, (-nd, nn))
                        pushes += 1
                        if len(results) > ef:
                            heapq.heappop(results)
                    else:
                        filtered += 1
        pnode = current_node()
        if pnode is not None:
            pnode.count("heap_pushes", pushes)
            pnode.count("rows_scanned", len(visited))
            if filtered:
                pnode.count("candidates_pruned", filtered)
        out = sorted(((-d, n) for d, n in results))
        return out

    def _select_neighbors(
        self, vec: np.ndarray, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """Heuristic neighbor selection (Malkov Alg. 4, no extension)."""
        selected: List[Tuple[float, int]] = []
        chosen_nodes: List[int] = []
        for dist, node in sorted(candidates):
            if len(selected) >= m:
                break
            keep = True
            if chosen_nodes:
                between = self._dist(self._vector(node), chosen_nodes)
                keep = not bool((between < dist).any())
            if keep:
                selected.append((dist, node))
                chosen_nodes.append(node)
        if not selected and candidates:
            selected = sorted(candidates)[:m]
        return selected

    def _prune(self, node: int, level: int, m_max: int) -> None:
        links = self._neighbors[level][node]
        dists = self._dist(self._vector(node), links)
        candidates = sorted(zip(dists.tolist(), links))
        selected = self._select_neighbors(self._vector(node), candidates, m_max)
        self._neighbors[level][node] = [n for __, n in selected]

    # -- query -----------------------------------------------------------------

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        ef: int = 64,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        if params:
            raise TypeError(f"unknown search params: {sorted(params)}")
        ef = max(ensure_positive(ef, "ef"), k)
        result = SearchResult.empty(len(queries), k, self.metric)
        if self._entry == -1:
            return result
        allowed = None
        if row_filter is not None:
            allowed = sorted_membership(
                np.asarray(self._ids, dtype=np.int64),
                np.asarray(row_filter, dtype=np.int64),
            )
            if not allowed.any():
                return result
        for qi, vec in enumerate(queries):
            curr = self._entry
            for lvl in range(self._max_level, 0, -1):
                curr = self._greedy_closest(vec, curr, lvl)
            found = self._search_layer(vec, [curr], ef, 0, allowed=allowed)[:k]
            for j, (dist, node) in enumerate(found):
                result.ids[qi, j] = self._ids[node]
                result.scores[qi, j] = -dist if self.metric.higher_is_better else dist
        return result

    # -- introspection ------------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return self._size

    def memory_bytes(self) -> int:
        vec_bytes = self._size * self.dim * 4
        link_bytes = sum(
            8 * len(links) for layer in self._neighbors for links in layer
        )
        return vec_bytes + link_bytes

    def graph_degree_stats(self) -> dict:
        """Mean/max out-degree at level 0 (diagnostics)."""
        if not self._neighbors:
            return {"mean": 0.0, "max": 0}
        degrees = [len(links) for links in self._neighbors[0][: self.ntotal]]
        return {"mean": float(np.mean(degrees)), "max": int(max(degrees))}
