"""IVF_FLAT: coarse quantizer + raw vectors as the "fine quantizer"."""

from __future__ import annotations

import numpy as np

from repro.index.ivf_common import IVFIndexBase


class IVFFlatIndex(IVFIndexBase):
    """IVF with uncompressed residents — best recall of the IVF family."""

    index_type = "IVF_FLAT"

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return vectors.astype(np.float32, copy=True)

    def _scan_list(
        self, queries: np.ndarray, codes: np.ndarray, list_no: int
    ) -> np.ndarray:
        return self.metric.pairwise(queries, codes)
