"""IVF_FLAT: coarse quantizer + raw vectors as the "fine quantizer"."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exec.normcache import NormCache
from repro.index.ivf_common import IVFIndexBase
from repro.metrics.dense import cosine_pairwise, l2_squared_pairwise
from repro.obs.profile import profile_count


class IVFFlatIndex(IVFIndexBase):
    """IVF with uncompressed residents — best recall of the IVF family.

    Bucket scans reuse data-side kernel precomputations (``|x|^2``
    norms for L2, unit rows for cosine) from a :class:`NormCache`, so
    repeated probes of the same bucket cost one GEMM plus cached adds.
    The cache is invalidated wholesale on every ``add`` — appends
    mutate bucket contents in place — and only engages for a bucket's
    full compacted code block (a ``row_filter`` slices codes into a
    fresh array, which is scored directly).
    """

    index_type = "IVF_FLAT"

    def __init__(self, dim: int, **kwargs):
        super().__init__(dim, **kwargs)
        self.kernel_cache = NormCache()

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        super()._add(vectors, ids)
        self.kernel_cache.invalidate()

    def _encode(self, vectors: np.ndarray, list_no: int) -> np.ndarray:
        return vectors.astype(np.float32, copy=True)

    def _scan_list(
        self,
        queries: np.ndarray,
        codes: np.ndarray,
        list_no: int,
        ctx=None,
        qidx: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        profile_count("distance_evals", len(queries) * len(codes))
        profile_count("bytes_read", len(queries) * codes.nbytes)
        if self.lists.is_compacted_block(list_no, codes):
            if self.metric.name == "l2":
                norms = self.kernel_cache.squared_norms(list_no, codes)
                return l2_squared_pairwise(queries, codes, data_sq_norms=norms)
            if self.metric.name == "cosine":
                unit = self.kernel_cache.unit_rows(list_no, codes)
                return cosine_pairwise(queries, codes, data_unit=unit)
        return self.metric.pairwise(queries, codes)

    def memory_bytes(self) -> int:
        return super().memory_bytes() + self.kernel_cache.memory_bytes()
