"""FLAT index: exact brute-force search, the recall=1 reference point."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.obs.profile import current_node
from repro.utils import sorted_membership, topk_from_scores

_SCAN_CHUNK = 16384


class FlatIndex(VectorIndex):
    """Exact search by full scan.

    Vectors are kept in append-only blocks and compacted lazily so that
    repeated small ``add`` calls stay O(1) amortized.
    """

    index_type = "FLAT"
    requires_training = False
    SEARCH_PARAMS = frozenset({"row_filter"})

    def __init__(self, dim: int, metric="l2"):
        super().__init__(dim, metric)
        self._blocks: List[np.ndarray] = []
        self._id_blocks: List[np.ndarray] = []
        self._count = 0

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._blocks.append(vectors.copy())
        self._id_blocks.append(ids.copy())
        self._count += len(vectors)

    def _compacted(self):
        if len(self._blocks) > 1:
            self._blocks = [np.concatenate(self._blocks)]
            self._id_blocks = [np.concatenate(self._id_blocks)]
        return self._blocks[0], self._id_blocks[0]

    @property
    def vectors(self) -> np.ndarray:
        """All indexed vectors in insertion order."""
        if not self._blocks:
            return np.empty((0, self.dim), dtype=np.float32)
        return self._compacted()[0]

    @property
    def ids(self) -> np.ndarray:
        if not self._id_blocks:
            return np.empty(0, dtype=np.int64)
        return self._compacted()[1]

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        if params:
            raise TypeError(f"FLAT takes no search params, got {sorted(params)}")
        data, ids = self._compacted()
        if row_filter is not None:
            keep = sorted_membership(
                ids.astype(np.int64), np.asarray(row_filter, dtype=np.int64)
            )
            data, ids = data[keep], ids[keep]
        node = current_node()
        if node is not None:
            node.count("rows_scanned", len(data))
            node.count("distance_evals", len(queries) * len(data))
        result = SearchResult.empty(len(queries), k, self.metric)
        # Chunk over data so the (m, chunk) score matrix stays bounded.
        partials = [[] for __ in range(len(queries))]
        for start in range(0, len(data), _SCAN_CHUNK):
            stop = min(start + _SCAN_CHUNK, len(data))
            scores = self.metric.pairwise(queries, data[start:stop])
            for qi in range(len(queries)):
                part_ids, part_scores = topk_from_scores(
                    scores[qi], k, self.metric.higher_is_better, ids=ids[start:stop]
                )
                partials[qi].append((part_ids, part_scores))
        from repro.utils import merge_topk

        for qi, parts in enumerate(partials):
            top_ids, top_scores = merge_topk(parts, k, self.metric.higher_is_better)
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        return result

    def _range_search(self, queries: np.ndarray, radius: float, **params):
        if params:
            raise TypeError(f"FLAT takes no range params, got {sorted(params)}")
        data, ids = self._compacted()
        out = [[] for __ in range(len(queries))]
        for start in range(0, len(data), _SCAN_CHUNK):
            stop = min(start + _SCAN_CHUNK, len(data))
            scores = self.metric.pairwise(queries, data[start:stop])
            for qi in range(len(queries)):
                if self.metric.higher_is_better:
                    hits = np.flatnonzero(scores[qi] >= radius)
                else:
                    hits = np.flatnonzero(scores[qi] <= radius)
                out[qi].extend(
                    (int(ids[start + h]), float(scores[qi][h])) for h in hits
                )
        for qi in range(len(queries)):
            out[qi].sort(key=lambda p: p[1], reverse=self.metric.higher_is_better)
        return out

    @property
    def ntotal(self) -> int:
        return self._count

    def memory_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks) + sum(
            b.nbytes for b in self._id_blocks
        )

    def reconstruct(self, row_ids: np.ndarray) -> np.ndarray:
        """Return the stored vectors for ``row_ids`` (exact lookup)."""
        data, ids = self._compacted()
        order = np.argsort(ids)
        pos = np.searchsorted(ids[order], row_ids)
        if np.any(pos >= len(ids)) or np.any(ids[order][pos] != row_ids):
            raise KeyError("unknown row id in reconstruct()")
        return data[order[pos]]
