"""BIN_FLAT: exact search over bit-packed binary vectors.

Backs the chemical-structure application (Sec. 6.2), where molecule
fingerprints are binary vectors searched with Jaccard/Tanimoto/Hamming.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.index.base import SearchResult, UnsupportedSearchParamError, VectorIndex
from repro.metrics import get_metric
from repro.metrics.base import MetricKind
from repro.utils import topk_from_scores, merge_topk

_SCAN_CHUNK = 4096


class BinaryFlatIndex(VectorIndex):
    """Exact brute-force search over packed binary codes.

    ``dim`` is the number of *bits*; vectors are accepted bit-packed as
    ``(n, ceil(dim/8))`` uint8 arrays (see :func:`repro.metrics.pack_bits`).
    """

    index_type = "BIN_FLAT"
    requires_training = False

    def __init__(self, dim: int, metric="jaccard"):
        metric_obj = get_metric(metric)
        if metric_obj.kind is not MetricKind.BINARY:
            raise ValueError(
                f"BIN_FLAT requires a binary metric, got {metric_obj.name!r}"
            )
        super().__init__(dim, metric_obj)
        self.code_bytes = math.ceil(dim / 8)
        self._blocks: List[np.ndarray] = []
        self._id_blocks: List[np.ndarray] = []
        self._count = 0

    def _check_vectors(self, vectors: np.ndarray) -> np.ndarray:
        out = np.asarray(vectors, dtype=np.uint8)
        if out.ndim == 1:
            out = out[np.newaxis, :]
        if out.ndim != 2 or out.shape[1] != self.code_bytes:
            raise ValueError(
                f"expected packed codes of shape (n, {self.code_bytes}), got {out.shape}"
            )
        return out

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        self._blocks.append(vectors.copy())
        self._id_blocks.append(ids.copy())
        self._count += len(vectors)

    def _compacted(self):
        if len(self._blocks) > 1:
            self._blocks = [np.concatenate(self._blocks)]
            self._id_blocks = [np.concatenate(self._id_blocks)]
        return self._blocks[0], self._id_blocks[0]

    def _search(self, queries: np.ndarray, k: int, **params) -> SearchResult:
        if "row_filter" in params:
            # Explicit rejection, never a silent drop: callers must fall
            # back to a predicate-aware scan (the segment layer does).
            raise UnsupportedSearchParamError(self.index_type, "row_filter")
        if params:
            raise TypeError(f"BIN_FLAT takes no search params, got {sorted(params)}")
        data, ids = self._compacted()
        result = SearchResult.empty(len(queries), k, self.metric)
        partials = [[] for __ in range(len(queries))]
        for start in range(0, len(data), _SCAN_CHUNK):
            stop = min(start + _SCAN_CHUNK, len(data))
            scores = self.metric.pairwise(queries, data[start:stop])
            for qi in range(len(queries)):
                partials[qi].append(
                    topk_from_scores(
                        scores[qi], k, self.metric.higher_is_better, ids=ids[start:stop]
                    )
                )
        for qi, parts in enumerate(partials):
            top_ids, top_scores = merge_topk(parts, k, self.metric.higher_is_better)
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        return result

    def _range_search(self, queries: np.ndarray, radius: float, **params):
        """Similarity screening: all codes within ``radius`` — the
        cheminformatics 'same series' threshold query (Sec. 6.2)."""
        if params:
            raise TypeError(f"BIN_FLAT takes no range params, got {sorted(params)}")
        data, ids = self._compacted()
        out = [[] for __ in range(len(queries))]
        for start in range(0, len(data), _SCAN_CHUNK):
            stop = min(start + _SCAN_CHUNK, len(data))
            scores = self.metric.pairwise(queries, data[start:stop])
            for qi in range(len(queries)):
                hits = np.flatnonzero(scores[qi] <= radius)
                out[qi].extend(
                    (int(ids[start + h]), float(scores[qi][h])) for h in hits
                )
        for qi in range(len(queries)):
            out[qi].sort(key=lambda p: p[1])
        return out

    @property
    def ntotal(self) -> int:
        return self._count

    def row_code_bytes(self) -> int:
        return self.code_bytes

    def memory_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks) + sum(
            b.nbytes for b in self._id_blocks
        )
