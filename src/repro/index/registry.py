"""Index registry: index-type name -> constructor.

This is the "high-level abstraction" of Sec. 2.2 that lets Milvus
"easily incorporate new indexes": registering a class makes it
constructible by name everywhere (collections, benchmarks, config).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from repro.index.annoy import AnnoyIndex
from repro.index.base import VectorIndex
from repro.index.binary_flat import BinaryFlatIndex
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.ivf_flat import IVFFlatIndex
from repro.index.ivf_pq import IVFOPQIndex, IVFPQIndex
from repro.index.ivf_sq8 import IVFSQ8Index
from repro.index.nsg import NSGIndex

_REGISTRY: Dict[str, Type[VectorIndex]] = {}


def register_index(cls: Type[VectorIndex], overwrite: bool = False) -> Type[VectorIndex]:
    """Register an index class under ``cls.index_type``.

    Usable as a decorator for third-party indexes::

        @register_index
        class MyIndex(VectorIndex):
            index_type = "MY_INDEX"
            ...
    """
    name = cls.index_type
    if not name:
        raise ValueError("index class must define index_type")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"index type {name!r} already registered")
    _REGISTRY[name] = cls
    return cls


def create_index(index_type: str, dim: int, metric="l2", **params) -> VectorIndex:
    """Instantiate an index by registry name."""
    key = index_type.upper()
    try:
        cls = _REGISTRY[key]
    except KeyError:
        raise KeyError(
            f"unknown index type {index_type!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(dim, metric=metric, **params)


def available_index_types() -> List[str]:
    """Names of every registered index type."""
    return sorted(_REGISTRY)


for _cls in (
    FlatIndex,
    BinaryFlatIndex,
    IVFFlatIndex,
    IVFSQ8Index,
    IVFPQIndex,
    IVFOPQIndex,
    HNSWIndex,
    NSGIndex,
    AnnoyIndex,
):
    register_index(_cls)
