"""Annoy-style tree index: a forest of random-projection trees.

The paper's footnote 3: "Milvus also supports tree-based indexes,
e.g., ANNOY."  Each tree recursively splits by the hyperplane that
perpendicular-bisects two randomly sampled points (Annoy's split rule).
Search descends all trees with a shared priority queue ordered by
hyperplane margin, gathers ``search_k`` candidates, then reranks them
exactly.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.index.base import SearchResult, VectorIndex
from repro.metrics.base import MetricKind
from repro.obs.profile import current_node
from repro.utils import ensure_positive, sorted_membership, topk_from_scores


@dataclass
class _Node:
    """Internal split node or leaf of one RP tree."""

    normal: Optional[np.ndarray] = None
    offset: float = 0.0
    left: int = -1
    right: int = -1
    items: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))

    @property
    def is_leaf(self) -> bool:
        return self.normal is None


class AnnoyIndex(VectorIndex):
    """Random-projection tree forest with exact reranking.

    Args:
        n_trees: number of trees (more trees -> better recall).
        leaf_size: max items per leaf.
    """

    index_type = "ANNOY"
    requires_training = False
    SEARCH_PARAMS = frozenset({"search_k", "row_filter"})

    def __init__(
        self,
        dim: int,
        metric="l2",
        n_trees: int = 8,
        leaf_size: int = 32,
        seed: Optional[int] = 0,
    ):
        super().__init__(dim, metric)
        if self.metric.kind is not MetricKind.DENSE:
            raise ValueError("ANNOY supports dense metrics only")
        self.n_trees = ensure_positive(n_trees, "n_trees")
        self.leaf_size = ensure_positive(leaf_size, "leaf_size")
        self.seed = seed
        self._vectors: Optional[np.ndarray] = None
        self._ids: Optional[np.ndarray] = None
        self._trees: List[List[_Node]] = []
        self._built = False

    def _add(self, vectors: np.ndarray, ids: np.ndarray) -> None:
        if self._vectors is None:
            self._vectors = vectors.copy()
            self._ids = ids.copy()
        else:
            self._vectors = np.concatenate([self._vectors, vectors])
            self._ids = np.concatenate([self._ids, ids])
        self._built = False

    # -- construction ------------------------------------------------------

    def build(self) -> None:
        """(Re)build the forest over all currently added vectors."""
        rng = np.random.default_rng(self.seed)
        items = np.arange(self.ntotal, dtype=np.int64)
        self._trees = [self._build_tree(items, rng) for __ in range(self.n_trees)]
        self._built = True

    def _build_tree(self, items: np.ndarray, rng: np.random.Generator) -> List[_Node]:
        nodes: List[_Node] = []

        def recurse(subset: np.ndarray) -> int:
            idx = len(nodes)
            nodes.append(_Node())
            if len(subset) <= self.leaf_size:
                nodes[idx].items = subset.copy()
                return idx
            normal, offset = self._pick_split(subset, rng)
            if normal is None:
                nodes[idx].items = subset.copy()
                return idx
            side = self._vectors[subset] @ normal - offset
            left_mask = side <= 0
            # Degenerate splits fall back to a random balanced cut.
            if left_mask.all() or not left_mask.any():
                left_mask = rng.random(len(subset)) < 0.5
                if left_mask.all() or not left_mask.any():
                    nodes[idx].items = subset.copy()
                    return idx
            nodes[idx].normal = normal
            nodes[idx].offset = float(offset)
            nodes[idx].left = recurse(subset[left_mask])
            nodes[idx].right = recurse(subset[~left_mask])
            return idx

        recurse(items)
        return nodes

    def _pick_split(self, subset: np.ndarray, rng: np.random.Generator):
        """Annoy split: hyperplane bisecting two sampled points."""
        for __ in range(5):
            a, b = rng.choice(subset, size=2, replace=False)
            va, vb = self._vectors[a], self._vectors[b]
            normal = va - vb
            norm = np.linalg.norm(normal)
            if norm > 1e-12:
                normal = normal / norm
                midpoint = (va + vb) / 2.0
                return normal.astype(np.float32), float(normal @ midpoint)
        return None, 0.0

    # -- query -----------------------------------------------------------------

    def _search(
        self,
        queries: np.ndarray,
        k: int,
        search_k: Optional[int] = None,
        row_filter: Optional[np.ndarray] = None,
        **params,
    ) -> SearchResult:
        if params:
            raise TypeError(f"unknown search params: {sorted(params)}")
        if not self._built:
            self.build()
        budget = search_k if search_k is not None else self.n_trees * self.leaf_size * 2
        budget = max(budget, k)
        allowed = None
        if row_filter is not None and self.ntotal:
            # Tree descent ignores the filter (candidate generation), the
            # exact rerank admits admissible candidates only.
            allowed = sorted_membership(
                self._ids.astype(np.int64), np.asarray(row_filter, dtype=np.int64)
            )
        result = SearchResult.empty(len(queries), k, self.metric)
        rows_scanned = distance_evals = pruned = 0
        for qi, vec in enumerate(queries):
            candidates = self._collect_candidates(vec, budget)
            if allowed is not None and len(candidates):
                kept = candidates[allowed[candidates]]
                pruned += len(candidates) - len(kept)
                candidates = kept
            if len(candidates) == 0:
                continue
            rows_scanned += len(candidates)
            distance_evals += len(candidates)
            scores = self.metric.pairwise(
                vec[np.newaxis, :], self._vectors[candidates]
            )[0]
            top_ids, top_scores = topk_from_scores(
                scores, k, self.metric.higher_is_better, ids=self._ids[candidates]
            )
            result.ids[qi, : len(top_ids)] = top_ids
            result.scores[qi, : len(top_scores)] = top_scores
        node = current_node()
        if node is not None:
            node.count("rows_scanned", rows_scanned)
            node.count("distance_evals", distance_evals)
            if pruned:
                node.count("candidates_pruned", pruned)
        return result

    def _collect_candidates(self, vec: np.ndarray, budget: int) -> np.ndarray:
        # Priority queue over (negative margin, tree, node): explore the
        # branch whose splitting plane the query is farthest inside
        # first, spilling to the other side as budget allows.
        heap = []
        for tree_no, tree in enumerate(self._trees):
            if tree:
                heap.append((-np.inf, tree_no, 0))
        heapq.heapify(heap)
        seen = set()
        collected: List[np.ndarray] = []
        count = 0
        pushes = 0
        while heap and count < budget:
            neg_margin, tree_no, node_idx = heapq.heappop(heap)
            node = self._trees[tree_no][node_idx]
            if node.is_leaf:
                fresh = [i for i in node.items if i not in seen]
                if fresh:
                    seen.update(fresh)
                    collected.append(np.array(fresh, dtype=np.int64))
                    count += len(fresh)
                continue
            side = float(vec @ node.normal - node.offset)
            near, far = (node.left, node.right) if side <= 0 else (node.right, node.left)
            heapq.heappush(heap, (neg_margin, tree_no, near))
            heapq.heappush(heap, (max(neg_margin, -abs(side)), tree_no, far))
            pushes += 2
        pnode = current_node()
        if pnode is not None:
            pnode.count("heap_pushes", pushes)
        if not collected:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(collected)

    # -- introspection -----------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return 0 if self._vectors is None else len(self._vectors)

    def memory_bytes(self) -> int:
        total = 0
        if self._vectors is not None:
            total += self._vectors.nbytes + self._ids.nbytes
        for tree in self._trees:
            for node in tree:
                total += node.items.nbytes
                if node.normal is not None:
                    total += node.normal.nbytes
        return total
